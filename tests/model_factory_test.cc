#include "models/model_factory.h"

#include <gtest/gtest.h>

#include "models/trilinear_models.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 20;
constexpr int32_t kRelations = 4;
constexpr int32_t kBudget = 48;
constexpr uint64_t kSeed = 9;

TEST(ModelFactoryTest, EveryKnownNameConstructs) {
  for (const std::string& name : KnownModelNames()) {
    Result<std::unique_ptr<KgeModel>> model =
        MakeModelByName(name, kEntities, kRelations, kBudget, kSeed);
    ASSERT_TRUE(model.ok()) << name << ": " << model.status().ToString();
    EXPECT_EQ((*model)->num_entities(), kEntities) << name;
    EXPECT_EQ((*model)->num_relations(), kRelations) << name;
    EXPECT_GT((*model)->NumParameters(), 0) << name;
    // Exercise the interface minimally.
    std::vector<float> scores(kEntities);
    (*model)->ScoreAllTails(0, 0, scores);
    EXPECT_NEAR(scores[1], (*model)->Score({0, 1, 0}), 1e-3) << name;
  }
}

TEST(ModelFactoryTest, UnknownNameIsNotFound) {
  const auto result =
      MakeModelByName("conv-e", kEntities, kRelations, kBudget, kSeed);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The error names the known models.
  EXPECT_NE(result.status().message().find("complex"), std::string::npos);
}

TEST(ModelFactoryTest, BadShapeIsInvalidArgument) {
  EXPECT_FALSE(MakeModelByName("complex", 0, kRelations, kBudget, kSeed).ok());
  EXPECT_FALSE(MakeModelByName("complex", kEntities, 0, kBudget, kSeed).ok());
  EXPECT_FALSE(
      MakeModelByName("complex", kEntities, kRelations, 0, kSeed).ok());
}

TEST(ModelFactoryTest, BudgetIsSplitAcrossVectors) {
  // 48 params per entity: DistMult 1x48, ComplEx 2x24, quaternion 4x12 —
  // equal entity-parameter totals.
  const auto distmult =
      MakeModelByName("distmult", kEntities, kRelations, kBudget, kSeed);
  const auto complex =
      MakeModelByName("complex", kEntities, kRelations, kBudget, kSeed);
  const auto quaternion =
      MakeModelByName("quaternion", kEntities, kRelations, kBudget, kSeed);
  auto entity_params = [](KgeModel* model) {
    return model->Blocks()[0]->size();
  };
  EXPECT_EQ(entity_params(distmult->get()), entity_params(complex->get()));
  EXPECT_EQ(entity_params(complex->get()), entity_params(quaternion->get()));
}

TEST(ModelFactoryTest, AutoweightVariantsGetDistinctConfigurations) {
  const auto plain = MakeModelByName("autoweight", kEntities, kRelations,
                                     kBudget, kSeed);
  const auto softmax = MakeModelByName("autoweight-softmax", kEntities,
                                       kRelations, kBudget, kSeed);
  const auto sparse = MakeModelByName("autoweight-sparse", kEntities,
                                      kRelations, kBudget, kSeed);
  ASSERT_TRUE(plain.ok() && softmax.ok() && sparse.ok());
  EXPECT_EQ((*plain)->name(), "AutoWeight[none]");
  EXPECT_EQ((*softmax)->name(), "AutoWeight[softmax]");
  EXPECT_EQ((*sparse)->name(), "AutoWeight[none,sparse]");
  EXPECT_FALSE(
      MakeModelByName("autoweight-relu", kEntities, kRelations, kBudget, kSeed)
          .ok());
}

TEST(ModelFactoryTest, SimplEIsHalfCph) {
  // SimplE's score must be exactly half of CPh's for identical embeddings
  // and seed (the tables differ only by the 1/2 factor).
  const auto simple =
      MakeModelByName("simple", kEntities, kRelations, kBudget, kSeed);
  const auto cph =
      MakeModelByName("cph", kEntities, kRelations, kBudget, kSeed);
  ASSERT_TRUE(simple.ok() && cph.ok());
  // Same seed and same shapes => identical embeddings.
  for (EntityId h = 0; h < 5; ++h) {
    const Triple triple{h, EntityId(h + 1), 0};
    EXPECT_NEAR((*simple)->Score(triple), 0.5 * (*cph)->Score(triple), 1e-5);
  }
}

TEST(ModelFactoryTest, KnownModelNamesIsNonEmptyAndUnique) {
  const auto names = KnownModelNames();
  EXPECT_GE(names.size(), 12u);
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

}  // namespace
}  // namespace kge
