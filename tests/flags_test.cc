#include "util/flags.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

// Builds a mutable argv from string literals.
class ArgvFixture {
 public:
  explicit ArgvFixture(std::vector<std::string> args)
      : storage_(std::move(args)) {
    for (std::string& arg : storage_) pointers_.push_back(arg.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, ParsesEqualsForm) {
  int64_t count = 1;
  double rate = 0.5;
  std::string name = "default";
  bool verbose = false;
  FlagParser parser("test");
  parser.AddInt("count", &count, "a count");
  parser.AddDouble("rate", &rate, "a rate");
  parser.AddString("name", &name, "a name");
  parser.AddBool("verbose", &verbose, "a bool");
  ArgvFixture args({"prog", "--count=42", "--rate=0.25", "--name=xyz",
                    "--verbose=true"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(rate, 0.25);
  EXPECT_EQ(name, "xyz");
  EXPECT_TRUE(verbose);
}

TEST(FlagsTest, ParsesSpaceForm) {
  int64_t count = 0;
  FlagParser parser("test");
  parser.AddInt("count", &count, "a count");
  ArgvFixture args({"prog", "--count", "7"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(count, 7);
}

TEST(FlagsTest, BareBoolSetsTrue) {
  bool flag = false;
  FlagParser parser("test");
  parser.AddBool("flag", &flag, "a bool");
  ArgvFixture args({"prog", "--flag"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flag);
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagParser parser("test");
  ArgvFixture args({"prog", "--mystery=1"});
  EXPECT_EQ(parser.Parse(args.argc(), args.argv()).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, MissingValueIsError) {
  int64_t count = 0;
  FlagParser parser("test");
  parser.AddInt("count", &count, "a count");
  ArgvFixture args({"prog", "--count"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, BadIntValueIsError) {
  int64_t count = 0;
  FlagParser parser("test");
  parser.AddInt("count", &count, "a count");
  ArgvFixture args({"prog", "--count=banana"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, BadBoolValueIsError) {
  bool flag = false;
  FlagParser parser("test");
  parser.AddBool("flag", &flag, "a bool");
  ArgvFixture args({"prog", "--flag=maybe"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagParser parser("test");
  ArgvFixture args({"prog", "input.txt", "output.txt"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.txt");
}

TEST(FlagsTest, HelpReturnsNotFound) {
  FlagParser parser("test");
  ArgvFixture args({"prog", "--help"});
  EXPECT_EQ(parser.Parse(args.argc(), args.argv()).code(),
            StatusCode::kNotFound);
}

TEST(FlagsTest, UsageStringListsFlagsAndDefaults) {
  int64_t count = 5;
  FlagParser parser("my program");
  parser.AddInt("count", &count, "how many");
  const std::string usage = parser.UsageString();
  EXPECT_NE(usage.find("my program"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("5"), std::string::npos);
}

TEST(FlagsTest, DefaultsPreservedWhenNotPassed) {
  int64_t count = 11;
  FlagParser parser("test");
  parser.AddInt("count", &count, "a count");
  ArgvFixture args({"prog"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(count, 11);
}

}  // namespace
}  // namespace kge
