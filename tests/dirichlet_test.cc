#include "core/dirichlet_regularizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace kge {
namespace {

TEST(DirichletTest, SparseVectorsHaveLowerLoss) {
  DirichletOptions options;
  options.alpha = 1.0 / 16.0;
  options.lambda = 1.0;
  // Same L1 mass, different concentration.
  const std::vector<float> uniform = {0.25f, 0.25f, 0.25f, 0.25f};
  const std::vector<float> sparse = {0.97f, 0.01f, 0.01f, 0.01f};
  EXPECT_LT(DirichletNll(sparse, options), DirichletNll(uniform, options));
}

TEST(DirichletTest, AlphaAboveOneFavorsUniform) {
  DirichletOptions options;
  options.alpha = 4.0;
  options.lambda = 1.0;
  const std::vector<float> uniform = {0.25f, 0.25f, 0.25f, 0.25f};
  const std::vector<float> sparse = {0.97f, 0.01f, 0.01f, 0.01f};
  EXPECT_GT(DirichletNll(sparse, options), DirichletNll(uniform, options));
}

TEST(DirichletTest, AlphaOneIsNeutral) {
  DirichletOptions options;
  options.alpha = 1.0;
  options.lambda = 1.0;
  const std::vector<float> any = {0.5f, 0.3f, 0.2f};
  EXPECT_DOUBLE_EQ(DirichletNll(any, options), 0.0);
}

TEST(DirichletTest, LambdaScalesLoss) {
  DirichletOptions small;
  small.lambda = 0.01;
  DirichletOptions large = small;
  large.lambda = 0.02;
  const std::vector<float> omega = {0.9f, 0.05f, 0.05f};
  EXPECT_NEAR(DirichletNll(omega, large), 2.0 * DirichletNll(omega, small),
              1e-12);
}

TEST(DirichletTest, EmptyOmegaIsZero) {
  DirichletOptions options;
  EXPECT_EQ(DirichletNll({}, options), 0.0);
  std::vector<float> grad;
  AddDirichletGradient({}, options, grad);  // must not crash
}

TEST(DirichletTest, ScaleInvariance) {
  // log(|w|/||w||_1) is scale invariant, so the loss must be too.
  DirichletOptions options;
  options.alpha = 0.1;
  options.lambda = 1.0;
  // Tolerance reflects float storage of ω (the ratios differ in the last
  // float bits between the two representations).
  const std::vector<float> omega = {0.6f, -0.3f, 0.1f};
  const std::vector<float> scaled = {6.0f, -3.0f, 1.0f};
  EXPECT_NEAR(DirichletNll(omega, options), DirichletNll(scaled, options),
              1e-6);
}

TEST(DirichletTest, GradientMatchesFiniteDifference) {
  DirichletOptions options;
  options.alpha = 1.0 / 16.0;
  options.lambda = 1e-2;
  const std::vector<float> omega = {0.7f, -0.4f, 0.2f, 0.5f, -0.9f};
  std::vector<float> analytic(omega.size(), 0.0f);
  AddDirichletGradient(omega, options, analytic);

  const double eps = 1e-4;
  for (size_t m = 0; m < omega.size(); ++m) {
    std::vector<float> plus = omega, minus = omega;
    plus[m] += float(eps);
    minus[m] -= float(eps);
    const double numeric =
        (DirichletNll(plus, options) - DirichletNll(minus, options)) /
        (2 * eps);
    EXPECT_NEAR(analytic[m], numeric, 1e-4) << "component " << m;
  }
}

TEST(DirichletTest, GradientAccumulates) {
  DirichletOptions options;
  const std::vector<float> omega = {0.5f, 0.5f};
  std::vector<float> grad = {100.0f, 200.0f};
  std::vector<float> delta(2, 0.0f);
  AddDirichletGradient(omega, options, delta);
  AddDirichletGradient(omega, options, grad);
  EXPECT_NEAR(grad[0], 100.0f + delta[0], 1e-5);
  EXPECT_NEAR(grad[1], 200.0f + delta[1], 1e-5);
}

TEST(DirichletTest, GradientPushesTowardSparsity) {
  // With alpha < 1, gradient descent should *increase* the dominant
  // component's share: its gradient must be more negative (for a positive
  // weight) than the small components'.
  DirichletOptions options;
  options.alpha = 0.1;
  options.lambda = 1.0;
  const std::vector<float> omega = {0.7f, 0.1f, 0.1f, 0.1f};
  std::vector<float> grad(4, 0.0f);
  AddDirichletGradient(omega, options, grad);
  EXPECT_LT(grad[0], grad[1]);
  EXPECT_GT(grad[1], 0.0f);  // small components get pushed down
}

TEST(DirichletTest, ZeroComponentsDoNotProduceNan) {
  DirichletOptions options;
  const std::vector<float> omega = {1.0f, 0.0f, 0.0f};
  const double loss = DirichletNll(omega, options);
  EXPECT_TRUE(std::isfinite(loss));
  std::vector<float> grad(3, 0.0f);
  AddDirichletGradient(omega, options, grad);
  for (float g : grad) EXPECT_TRUE(std::isfinite(g));
}

}  // namespace
}  // namespace kge
