#include "datagen/wordnet_like_generator.h"

#include <gtest/gtest.h>

#include "kg/relation_analysis.h"
#include "kg/triple_store.h"

namespace kge {
namespace {

class WordNetLikeTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    WordNetLikeOptions options;
    options.num_entities = 800;
    options.seed = 5;
    dataset_ = new Dataset(GenerateWordNetLike(options));
    std::vector<Triple> all = dataset_->train;
    all.insert(all.end(), dataset_->valid.begin(), dataset_->valid.end());
    all.insert(all.end(), dataset_->test.begin(), dataset_->test.end());
    stats_ = new std::vector<RelationStats>(AnalyzeRelations(
        all, dataset_->num_entities(), dataset_->num_relations()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete stats_;
    dataset_ = nullptr;
    stats_ = nullptr;
  }

  static Dataset* dataset_;
  static std::vector<RelationStats>* stats_;
};

Dataset* WordNetLikeTest::dataset_ = nullptr;
std::vector<RelationStats>* WordNetLikeTest::stats_ = nullptr;

TEST_F(WordNetLikeTest, HasEighteenRelationsLikeWn18) {
  EXPECT_EQ(dataset_->num_relations(), 18);
  EXPECT_NE(dataset_->relations.Find("_hypernym"), -1);
  EXPECT_NE(dataset_->relations.Find("_derivationally_related_form"), -1);
}

TEST_F(WordNetLikeTest, EntityCountMatchesOption) {
  EXPECT_EQ(dataset_->num_entities(), 800);
}

TEST_F(WordNetLikeTest, ValidatesAsBenchmark) {
  EXPECT_TRUE(dataset_->Validate().ok());
}

TEST_F(WordNetLikeTest, SplitSizesRoughlyMatchWn18Proportions) {
  const size_t total = dataset_->train.size() + dataset_->valid.size() +
                       dataset_->test.size();
  EXPECT_GT(total, 1500u);
  EXPECT_NEAR(double(dataset_->valid.size()) / double(total), 0.035, 0.01);
  EXPECT_NEAR(double(dataset_->test.size()) / double(total), 0.035, 0.01);
}

TEST_F(WordNetLikeTest, HypernymHyponymAreExactInverses) {
  const RelationStats& hypernym = (*stats_)[kHypernym];
  EXPECT_EQ(hypernym.best_inverse, kHyponym);
  EXPECT_NEAR(hypernym.best_inverse_score, 1.0, 1e-9);
  const RelationStats& hyponym = (*stats_)[kHyponym];
  EXPECT_EQ(hyponym.best_inverse, kHypernym);
}

TEST_F(WordNetLikeTest, HypernymIsAntisymmetricAndManyToOne) {
  const RelationStats& hypernym = (*stats_)[kHypernym];
  EXPECT_NEAR(hypernym.symmetry, 0.0, 1e-9);
  // Every child has exactly one parent; parents have many children.
  EXPECT_EQ(hypernym.category, MappingCategory::kManyToOne);
}

TEST_F(WordNetLikeTest, SymmetricRelationsAreSymmetric) {
  for (RelationId r : {RelationId(kSimilarTo), RelationId(kVerbGroup),
                       RelationId(kDerivationallyRelatedForm)}) {
    EXPECT_NEAR((*stats_)[size_t(r)].symmetry, 1.0, 1e-9)
        << "relation " << r;
  }
}

TEST_F(WordNetLikeTest, AlsoSeeIsMostlyButNotFullySymmetric) {
  const double symmetry = (*stats_)[kAlsoSee].symmetry;
  EXPECT_GT(symmetry, 0.5);
  EXPECT_LT(symmetry, 0.95);
}

TEST_F(WordNetLikeTest, DomainRelationsAreHubStructured) {
  const RelationStats& member_of = (*stats_)[kMemberOfDomainTopic];
  // Many members per domain hub: the inverse direction (domain -> member)
  // is 1-N, so member_of is N-1.
  EXPECT_EQ(member_of.category, MappingCategory::kManyToOne);
  EXPECT_EQ(member_of.best_inverse, kSynsetDomainTopicOf);
  EXPECT_NEAR(member_of.best_inverse_score, 1.0, 1e-9);
}

TEST_F(WordNetLikeTest, MeronymyPairsAreInverses) {
  EXPECT_EQ((*stats_)[kMemberMeronym].best_inverse, kMemberHolonym);
  EXPECT_EQ((*stats_)[kPartOf].best_inverse, kHasPart);
  EXPECT_NEAR((*stats_)[kPartOf].best_inverse_score, 1.0, 1e-9);
}

TEST_F(WordNetLikeTest, EveryRelationHasTriples) {
  for (const RelationStats& s : *stats_) {
    EXPECT_GT(s.num_triples, 0u) << "relation " << s.relation;
  }
}

TEST_F(WordNetLikeTest, HypernymIsTheLargestTaxonomicRelation) {
  EXPECT_GT((*stats_)[kHypernym].num_triples,
            (*stats_)[kInstanceHypernym].num_triples);
}

TEST(WordNetLikeDeterminismTest, SameSeedSameDataset) {
  WordNetLikeOptions options;
  options.num_entities = 300;
  options.seed = 9;
  const Dataset a = GenerateWordNetLike(options);
  const Dataset b = GenerateWordNetLike(options);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.test, b.test);
}

TEST(WordNetLikeDeterminismTest, DifferentSeedsDifferentGraphs) {
  WordNetLikeOptions options;
  options.num_entities = 300;
  options.seed = 1;
  const Dataset a = GenerateWordNetLike(options);
  options.seed = 2;
  const Dataset b = GenerateWordNetLike(options);
  EXPECT_NE(a.train, b.train);
}

TEST(WordNetLikeRrModeTest, LeakageRemovalDropsInverseRelations) {
  WordNetLikeOptions options;
  options.num_entities = 500;
  options.seed = 4;
  options.remove_inverse_leakage = true;
  const Dataset data = GenerateWordNetLike(options);
  ASSERT_TRUE(data.Validate().ok());
  std::vector<Triple> all = data.train;
  all.insert(all.end(), data.valid.begin(), data.valid.end());
  all.insert(all.end(), data.test.begin(), data.test.end());
  for (const Triple& t : all) {
    EXPECT_NE(t.relation, kHyponym);
    EXPECT_NE(t.relation, kMemberHolonym);
    EXPECT_NE(t.relation, kHasPart);
    EXPECT_NE(t.relation, kInstanceHyponym);
    EXPECT_NE(t.relation, kSynsetDomainTopicOf);
  }
  // Forward relations survive.
  const auto stats = AnalyzeRelations(all, data.num_entities(),
                                      data.num_relations());
  EXPECT_GT(stats[kHypernym].num_triples, 0u);
  EXPECT_GT(stats[kSimilarTo].num_triples, 0u);  // symmetric kept
  // No relation has a (different) exact inverse partner any more.
  for (const RelationStats& s : stats) {
    if (s.num_triples == 0 || s.symmetry > 0.5) continue;
    EXPECT_LT(s.best_inverse_score, 0.5) << "relation " << s.relation;
  }
}

TEST(WordNetLikeRrModeTest, RrModeIsSmallerThanFullGraph) {
  WordNetLikeOptions options;
  options.num_entities = 500;
  options.seed = 4;
  const Dataset full = GenerateWordNetLike(options);
  options.remove_inverse_leakage = true;
  const Dataset rr = GenerateWordNetLike(options);
  EXPECT_LT(rr.train.size(), full.train.size());
  EXPECT_GT(rr.train.size(), full.train.size() / 3);
}

TEST(WordNetLikeDeterminismTest, InverseLeakageAcrossSplitExists) {
  // The WN18 property the paper's results depend on: most test triples of
  // inverse-paired relations have their inverse triple in train.
  WordNetLikeOptions options;
  options.num_entities = 600;
  options.seed = 3;
  const Dataset dataset = GenerateWordNetLike(options);
  TripleStore train_store(dataset.train);
  size_t inverse_pairs = 0, leaked = 0;
  auto inverse_of = [](RelationId r) -> RelationId {
    switch (r) {
      case kHypernym: return kHyponym;
      case kHyponym: return kHypernym;
      case kMemberMeronym: return kMemberHolonym;
      case kMemberHolonym: return kMemberMeronym;
      case kPartOf: return kHasPart;
      case kHasPart: return kPartOf;
      default: return -1;
    }
  };
  for (const Triple& t : dataset.test) {
    const RelationId inv = inverse_of(t.relation);
    if (inv < 0) continue;
    ++inverse_pairs;
    leaked += train_store.Contains({t.tail, t.head, inv});
  }
  ASSERT_GT(inverse_pairs, 10u);
  EXPECT_GT(double(leaked) / double(inverse_pairs), 0.8);
}

}  // namespace
}  // namespace kge
