#include "models/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "models/er_mlp.h"
#include "models/learned_weight_model.h"
#include "models/model_factory.h"
#include "util/io.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 12;
constexpr int32_t kRelations = 3;
constexpr int32_t kBudget = 24;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CheckpointTest, RoundTripEveryRegisteredModel) {
  for (const std::string& name : KnownModelNames()) {
    const std::string path = TempPath("ckpt_" + name + ".bin");
    Result<std::unique_ptr<KgeModel>> trained =
        MakeModelByName(name, kEntities, kRelations, kBudget, /*seed=*/1);
    ASSERT_TRUE(trained.ok()) << name;
    ASSERT_TRUE(SaveModelCheckpoint(trained->get(), path).ok()) << name;

    Result<std::unique_ptr<KgeModel>> fresh =
        MakeModelByName(name, kEntities, kRelations, kBudget, /*seed=*/999);
    ASSERT_TRUE(fresh.ok()) << name;
    ASSERT_TRUE(LoadModelCheckpoint(fresh->get(), path).ok()) << name;

    for (EntityId h = 0; h < 4; ++h) {
      const Triple triple{h, EntityId(h + 2), RelationId(h % kRelations)};
      EXPECT_EQ((*fresh)->Score(triple), (*trained)->Score(triple)) << name;
    }
    std::remove(path.c_str());
  }
}

TEST(CheckpointTest, PreservesLearnedOmega) {
  const std::string path = TempPath("ckpt_omega.bin");
  LearnedWeightOptions options;
  LearnedWeightModel trained("m", kEntities, kRelations, 8, options, 1);
  // Perturb omega away from the uniform start.
  trained.Blocks()[LearnedWeightModel::kOmegaBlock]->Row(0)[3] = -2.5f;
  trained.RefreshWeights();
  ASSERT_TRUE(SaveModelCheckpoint(&trained, path).ok());

  LearnedWeightModel loaded("m", kEntities, kRelations, 8, options, 7);
  ASSERT_TRUE(LoadModelCheckpoint(&loaded, path).ok());
  loaded.RefreshWeights();
  EXPECT_EQ(loaded.CurrentOmega()[3], -2.5f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsWrongModelName) {
  const std::string path = TempPath("ckpt_name.bin");
  auto complex = MakeModelByName("complex", kEntities, kRelations, kBudget, 1);
  ASSERT_TRUE(SaveModelCheckpoint(complex->get(), path).ok());
  auto distmult =
      MakeModelByName("distmult", kEntities, kRelations, kBudget, 1);
  EXPECT_FALSE(LoadModelCheckpoint(distmult->get(), path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  const std::string path = TempPath("ckpt_shape.bin");
  auto small = MakeModelByName("complex", kEntities, kRelations, kBudget, 1);
  ASSERT_TRUE(SaveModelCheckpoint(small->get(), path).ok());
  auto large =
      MakeModelByName("complex", kEntities, kRelations, 2 * kBudget, 1);
  const Status status = LoadModelCheckpoint(large->get(), path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsGarbageFile) {
  const std::string path = TempPath("ckpt_garbage.bin");
  ASSERT_TRUE(WriteStringToFile(path, "this is not a checkpoint").ok());
  auto model = MakeModelByName("complex", kEntities, kRelations, kBudget, 1);
  EXPECT_FALSE(LoadModelCheckpoint(model->get(), path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  auto model = MakeModelByName("complex", kEntities, kRelations, kBudget, 1);
  EXPECT_FALSE(
      LoadModelCheckpoint(model->get(), "/nonexistent/ckpt.bin").ok());
}

}  // namespace
}  // namespace kge
