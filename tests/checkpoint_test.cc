#include "models/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "models/er_mlp.h"
#include "models/learned_weight_model.h"
#include "models/model_factory.h"
#include "util/failpoint.h"
#include "util/io.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 12;
constexpr int32_t kRelations = 3;
constexpr int32_t kBudget = 24;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CheckpointTest, RoundTripEveryRegisteredModel) {
  for (const std::string& name : KnownModelNames()) {
    const std::string path = TempPath("ckpt_" + name + ".bin");
    Result<std::unique_ptr<KgeModel>> trained =
        MakeModelByName(name, kEntities, kRelations, kBudget, /*seed=*/1);
    ASSERT_TRUE(trained.ok()) << name;
    ASSERT_TRUE(SaveModelCheckpoint(**trained, path).ok()) << name;

    Result<std::unique_ptr<KgeModel>> fresh =
        MakeModelByName(name, kEntities, kRelations, kBudget, /*seed=*/999);
    ASSERT_TRUE(fresh.ok()) << name;
    ASSERT_TRUE(LoadModelCheckpoint(fresh->get(), path).ok()) << name;

    for (EntityId h = 0; h < 4; ++h) {
      const Triple triple{h, EntityId(h + 2), RelationId(h % kRelations)};
      EXPECT_EQ((*fresh)->Score(triple), (*trained)->Score(triple)) << name;
    }
    std::remove(path.c_str());
  }
}

TEST(CheckpointTest, PreservesLearnedOmega) {
  const std::string path = TempPath("ckpt_omega.bin");
  LearnedWeightOptions options;
  LearnedWeightModel trained("m", kEntities, kRelations, 8, options, 1);
  // Perturb omega away from the uniform start.
  trained.Blocks()[LearnedWeightModel::kOmegaBlock]->Row(0)[3] = -2.5f;
  trained.RefreshWeights();
  ASSERT_TRUE(SaveModelCheckpoint(trained, path).ok());

  LearnedWeightModel loaded("m", kEntities, kRelations, 8, options, 7);
  ASSERT_TRUE(LoadModelCheckpoint(&loaded, path).ok());
  loaded.RefreshWeights();
  EXPECT_EQ(loaded.CurrentOmega()[3], -2.5f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsWrongModelName) {
  const std::string path = TempPath("ckpt_name.bin");
  auto complex = MakeModelByName("complex", kEntities, kRelations, kBudget, 1);
  ASSERT_TRUE(SaveModelCheckpoint(**complex, path).ok());
  auto distmult =
      MakeModelByName("distmult", kEntities, kRelations, kBudget, 1);
  EXPECT_FALSE(LoadModelCheckpoint(distmult->get(), path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  const std::string path = TempPath("ckpt_shape.bin");
  auto small = MakeModelByName("complex", kEntities, kRelations, kBudget, 1);
  ASSERT_TRUE(SaveModelCheckpoint(**small, path).ok());
  auto large =
      MakeModelByName("complex", kEntities, kRelations, 2 * kBudget, 1);
  const Status status = LoadModelCheckpoint(large->get(), path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsGarbageFile) {
  const std::string path = TempPath("ckpt_garbage.bin");
  ASSERT_TRUE(WriteStringToFile(path, "this is not a checkpoint").ok());
  auto model = MakeModelByName("complex", kEntities, kRelations, kBudget, 1);
  EXPECT_FALSE(LoadModelCheckpoint(model->get(), path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  auto model = MakeModelByName("complex", kEntities, kRelations, kBudget, 1);
  EXPECT_FALSE(
      LoadModelCheckpoint(model->get(), "/nonexistent/ckpt.bin").ok());
}

TEST(CheckpointTest, LoadsLegacyV1Format) {
  const std::string path = TempPath("ckpt_v1.bin");
  auto trained = MakeModelByName("complex", kEntities, kRelations, kBudget, 1);
  {
    // Hand-write the pre-CRC v1 layout: magic, name, blocks. This is
    // byte-for-byte what SaveModelCheckpoint produced before format v2.
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteUint32(kCheckpointMagicV1).ok());
    ASSERT_TRUE(writer.WriteString((*trained)->name()).ok());
    const auto blocks = (*trained)->Blocks();
    ASSERT_TRUE(writer.WriteUint32(uint32_t(blocks.size())).ok());
    for (ParameterBlock* block : blocks) {
      ASSERT_TRUE(writer.WriteString(block->name()).ok());
      ASSERT_TRUE(writer.WriteUint64(uint64_t(block->num_rows())).ok());
      ASSERT_TRUE(writer.WriteUint64(uint64_t(block->row_dim())).ok());
      ASSERT_TRUE(
          writer.WriteFloatArray(block->Flat().data(), block->Flat().size())
              .ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  auto fresh = MakeModelByName("complex", kEntities, kRelations, kBudget, 9);
  ASSERT_TRUE(LoadModelCheckpoint(fresh->get(), path).ok());
  const Triple triple{0, 2, 1};
  EXPECT_EQ((*fresh)->Score(triple), (*trained)->Score(triple));
  std::remove(path.c_str());
}

TEST(CheckpointTest, VerifyCheckpointAcceptsFreshSave) {
  const std::string path = TempPath("ckpt_verify.bin");
  auto model = MakeModelByName("distmult", kEntities, kRelations, kBudget, 1);
  ASSERT_TRUE(SaveModelCheckpoint(**model, path).ok());
  EXPECT_TRUE(VerifyCheckpoint(path).ok());
  // No leftover temp file from the atomic write.
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(CheckpointTest, DetectsSingleBitCorruption) {
  const std::string path = TempPath("ckpt_bitflip.bin");
  auto model = MakeModelByName("distmult", kEntities, kRelations, kBudget, 1);
  ASSERT_TRUE(SaveModelCheckpoint(**model, path).ok());
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] =
      static_cast<char>(corrupted[corrupted.size() / 2] ^ 0x10);
  ASSERT_TRUE(WriteStringToFile(path, corrupted).ok());
  EXPECT_FALSE(VerifyCheckpoint(path).ok());
  auto fresh = MakeModelByName("distmult", kEntities, kRelations, kBudget, 9);
  EXPECT_FALSE(LoadModelCheckpoint(fresh->get(), path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, SaveFailureLeavesExistingCheckpointIntact) {
  const std::string path = TempPath("ckpt_keep_old.bin");
  auto old_model =
      MakeModelByName("distmult", kEntities, kRelations, kBudget, 1);
  ASSERT_TRUE(SaveModelCheckpoint(**old_model, path).ok());
  Result<std::string> before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());

  // Injected error in BinaryWriter::Close must abort the save without
  // touching the committed file.
  ASSERT_TRUE(failpoint::Set("io.writer.close", "error").ok());
  auto new_model =
      MakeModelByName("distmult", kEntities, kRelations, kBudget, 2);
  const Status save_status = SaveModelCheckpoint(**new_model, path);
  failpoint::ClearAll();
  if (failpoint::Enabled()) {
    EXPECT_FALSE(save_status.ok());
    EXPECT_FALSE(FileExists(path + ".tmp"));
  } else {
    EXPECT_TRUE(save_status.ok());
  }
  Result<std::string> after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  if (failpoint::Enabled()) {
    EXPECT_EQ(*before, *after);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kge
