#include "eval/report.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

// Builds a 3-relation EvalResult with hand-set ranks and matching stats:
// relation 0 symmetric 1-1, relation 1 antisymmetric N-1, relation 2
// antisymmetric 1-N.
struct Fixture {
  EvalResult result;
  std::vector<RelationStats> stats;
  Vocabulary relations;

  Fixture() {
    result.per_relation.resize(3);
    for (int r = 0; r < 3; ++r) {
      result.per_relation[size_t(r)].relation = r;
    }
    // Relation 0: perfect ranks.
    result.per_relation[0].tail_queries.AddRank(1);
    result.per_relation[0].head_queries.AddRank(1);
    // Relation 1: poor ranks.
    result.per_relation[1].tail_queries.AddRank(50);
    result.per_relation[1].head_queries.AddRank(100);
    // Relation 2: mid ranks.
    result.per_relation[2].tail_queries.AddRank(2);
    result.per_relation[2].head_queries.AddRank(4);

    stats.resize(3);
    stats[0].relation = 0;
    stats[0].category = MappingCategory::kOneToOne;
    stats[0].symmetry = 1.0;
    stats[1].relation = 1;
    stats[1].category = MappingCategory::kManyToOne;
    stats[1].symmetry = 0.0;
    stats[2].relation = 2;
    stats[2].category = MappingCategory::kOneToMany;
    stats[2].symmetry = 0.0;

    relations.GetOrAdd("_symmetric_rel");
    relations.GetOrAdd("_n_to_one_rel");
    relations.GetOrAdd("_one_to_n_rel");
  }
};

TEST(ReportTest, GroupByMappingCategoryMergesDirections) {
  const Fixture f;
  const auto grouped = GroupByMappingCategory(f.result, f.stats);
  ASSERT_EQ(grouped.size(), 3u);  // 1-1, N-1, 1-N present
  for (const CategoryMetrics& c : grouped) {
    EXPECT_EQ(c.metrics.count(), 2u);
  }
}

TEST(ReportTest, GroupBySymmetryBuckets) {
  const Fixture f;
  const auto grouped = GroupBySymmetry(f.result, f.stats);
  ASSERT_EQ(grouped.size(), 2u);
  // Alphabetical map order: antisymmetric first.
  EXPECT_EQ(grouped[0].category, "antisymmetric");
  EXPECT_EQ(grouped[0].metrics.count(), 4u);
  EXPECT_EQ(grouped[1].category, "symmetric");
  EXPECT_EQ(grouped[1].metrics.count(), 2u);
  EXPECT_DOUBLE_EQ(grouped[1].metrics.Mrr(), 1.0);
}

TEST(ReportTest, MixedBucketAppearsForIntermediateSymmetry) {
  Fixture f;
  f.stats[1].symmetry = 0.5;
  const auto grouped = GroupBySymmetry(f.result, f.stats);
  bool has_mixed = false;
  for (const CategoryMetrics& c : grouped) has_mixed |= c.category == "mixed";
  EXPECT_TRUE(has_mixed);
}

TEST(ReportTest, EmptyRelationsAreSkipped) {
  Fixture f;
  f.result.per_relation.push_back({});
  f.result.per_relation.back().relation = 3;
  f.stats.push_back({});
  f.stats.back().relation = 3;
  const auto grouped = GroupByMappingCategory(f.result, f.stats);
  size_t total = 0;
  for (const CategoryMetrics& c : grouped) total += c.metrics.count();
  EXPECT_EQ(total, 6u);  // the empty relation adds nothing
}

TEST(ReportTest, RenderedReportContainsAllSections) {
  const Fixture f;
  const std::string report =
      RenderEvaluationReport(f.result, f.stats, f.relations);
  EXPECT_NE(report.find("per-relation breakdown"), std::string::npos);
  EXPECT_NE(report.find("by mapping category"), std::string::npos);
  EXPECT_NE(report.find("by symmetry class"), std::string::npos);
  EXPECT_NE(report.find("_symmetric_rel"), std::string::npos);
  EXPECT_NE(report.find("N-1"), std::string::npos);
  EXPECT_NE(report.find("antisymmetric"), std::string::npos);
}

TEST(ReportTest, FallsBackToNumericNamesWithoutVocabulary) {
  const Fixture f;
  Vocabulary empty;
  const std::string report = RenderEvaluationReport(f.result, f.stats, empty);
  EXPECT_NE(report.find("rel0"), std::string::npos);
}

}  // namespace
}  // namespace kge
