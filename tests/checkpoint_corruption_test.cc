// Adversarial robustness of the checkpoint loader: truncation at every
// byte offset and bit flips through the header must produce a clean
// Status — never a crash, a hang, or an attempt to allocate from a
// corrupt length field.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "models/checkpoint.h"
#include "models/model_factory.h"
#include "optim/optimizer.h"
#include "train/train_checkpoint.h"
#include "util/io.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 8;
constexpr int32_t kRelations = 2;
constexpr int32_t kBudget = 8;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string SaveModelBytes() {
  const std::string path = TempPath("corrupt_src_model.bin");
  auto model = MakeModelByName("distmult", kEntities, kRelations, kBudget, 1);
  EXPECT_TRUE(SaveModelCheckpoint(**model, path).ok());
  Result<std::string> bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  std::remove(path.c_str());
  return *bytes;
}

std::string SaveTrainingBytes() {
  const std::string path = TempPath("corrupt_src_train.bin");
  auto model = MakeModelByName("distmult", kEntities, kRelations, kBudget, 1);
  auto optimizer = MakeOptimizer("adam", (*model)->Blocks(), 1e-3);
  EXPECT_TRUE(optimizer.ok());
  TrainingState state;
  state.trainer_kind = "negative_sampling";
  state.seed = 1234;
  state.epoch = 3;
  state.batch_counter = 99;
  state.loss_history = {0.9, 0.7, 0.5};
  state.epoch_seconds = {0.1, 0.1, 0.1};
  state.validation_history = {{2, 0.4}};
  state.best_epoch = 2;
  state.best_metric = 0.4;
  EXPECT_TRUE(
      SaveTrainingCheckpoint(**model, **optimizer, state, path).ok());
  Result<std::string> bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  std::remove(path.c_str());
  return *bytes;
}

// Writes `bytes` to a scratch file and runs every loader against it;
// all must return (cleanly) with a non-ok Status.
void ExpectAllLoadersReject(const std::string& bytes,
                            const std::string& label) {
  const std::string path = TempPath("corrupt_probe.bin");
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  EXPECT_FALSE(VerifyCheckpoint(path).ok()) << label;

  auto model = MakeModelByName("distmult", kEntities, kRelations, kBudget, 9);
  EXPECT_FALSE(LoadModelCheckpoint(model->get(), path).ok()) << label;

  auto optimizer = MakeOptimizer("adam", (*model)->Blocks(), 1e-3);
  ASSERT_TRUE(optimizer.ok());
  TrainingState state;
  EXPECT_FALSE(
      LoadTrainingCheckpoint(model->get(), optimizer->get(), &state, path)
          .ok())
      << label;
  std::remove(path.c_str());
}

TEST(CheckpointCorruptionTest, TruncationAtEveryByteFailsCleanly) {
  const std::string bytes = SaveModelBytes();
  ASSERT_GT(bytes.size(), 8u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    ExpectAllLoadersReject(bytes.substr(0, len),
                           "model ckpt truncated to " + std::to_string(len));
  }
}

TEST(CheckpointCorruptionTest, TrainingCheckpointTruncationFailsCleanly) {
  const std::string bytes = SaveTrainingBytes();
  ASSERT_GT(bytes.size(), 8u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    ExpectAllLoadersReject(bytes.substr(0, len),
                           "train ckpt truncated to " + std::to_string(len));
  }
}

TEST(CheckpointCorruptionTest, BitFlipsThroughHeaderFailCleanly) {
  // Every bit of the header region (magic, version, kind, model name and
  // block-count/shape prefixes) individually flipped. Whatever the parse
  // path — wrong magic, absurd length, shape mismatch, or the final CRC
  // check — the result must be a clean error.
  const std::string bytes = SaveTrainingBytes();
  const size_t header_span = std::min<size_t>(bytes.size(), 64);
  for (size_t byte = 0; byte < header_span; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = bytes;
      corrupted[byte] = char(corrupted[byte] ^ char(1 << bit));
      ExpectAllLoadersReject(corrupted, "flip byte " + std::to_string(byte) +
                                            " bit " + std::to_string(bit));
    }
  }
}

TEST(CheckpointCorruptionTest, BitFlipsSampledThroughBodyFailCleanly) {
  const std::string bytes = SaveModelBytes();
  // Stride through the body so the sweep covers payload and the trailing
  // CRC itself without taking quadratic time on bigger models.
  for (size_t byte = 0; byte < bytes.size(); byte += 7) {
    std::string corrupted = bytes;
    corrupted[byte] = char(corrupted[byte] ^ 0x40);
    ExpectAllLoadersReject(corrupted, "flip byte " + std::to_string(byte));
  }
  // The last four bytes are the stored CRC; corrupt each explicitly.
  for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    std::string corrupted = bytes;
    corrupted[i] = char(corrupted[i] ^ 0x01);
    ExpectAllLoadersReject(corrupted, "flip crc byte " + std::to_string(i));
  }
}

TEST(CheckpointCorruptionTest, TrailingGarbageIsRejected) {
  const std::string bytes = SaveModelBytes();
  ExpectAllLoadersReject(bytes + std::string(16, '\0'), "trailing zeros");
  ExpectAllLoadersReject(bytes + bytes, "doubled file");
}

}  // namespace
}  // namespace kge
