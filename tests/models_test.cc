#include "models/trilinear_models.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "models/quaternion_model.h"
#include "math/vec_ops.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 20;
constexpr int32_t kRelations = 4;
constexpr int32_t kDim = 8;
constexpr uint64_t kSeed = 11;

using ModelFactory = std::unique_ptr<MultiEmbeddingModel> (*)();

std::vector<std::unique_ptr<MultiEmbeddingModel>> AllModels() {
  std::vector<std::unique_ptr<MultiEmbeddingModel>> models;
  models.push_back(MakeDistMult(kEntities, kRelations, kDim, kSeed));
  models.push_back(MakeComplEx(kEntities, kRelations, kDim, kSeed));
  models.push_back(MakeCp(kEntities, kRelations, kDim, kSeed));
  models.push_back(MakeCph(kEntities, kRelations, kDim, kSeed));
  models.push_back(MakeQuaternionModel(kEntities, kRelations, kDim, kSeed));
  return models;
}

TEST(ModelsTest, NamesAndShapes) {
  const auto models = AllModels();
  EXPECT_EQ(models[0]->name(), "DistMult");
  EXPECT_EQ(models[1]->name(), "ComplEx");
  EXPECT_EQ(models[2]->name(), "CP");
  EXPECT_EQ(models[3]->name(), "CPh");
  EXPECT_EQ(models[4]->name(), "Quaternion");
  for (const auto& model : models) {
    EXPECT_EQ(model->num_entities(), kEntities);
    EXPECT_EQ(model->num_relations(), kRelations);
  }
}

TEST(ModelsTest, ParameterCountsMatchShapes) {
  const auto models = AllModels();
  // DistMult: (20 + 4) * 8.
  EXPECT_EQ(models[0]->NumParameters(), (kEntities + kRelations) * kDim);
  // ComplEx: 2 vectors everywhere.
  EXPECT_EQ(models[1]->NumParameters(), 2 * (kEntities + kRelations) * kDim);
  // CP: 2 entity vectors, 1 relation vector.
  EXPECT_EQ(models[2]->NumParameters(),
            (2 * kEntities + kRelations) * kDim);
  // Quaternion: 4 vectors everywhere.
  EXPECT_EQ(models[4]->NumParameters(), 4 * (kEntities + kRelations) * kDim);
}

TEST(ModelsTest, MatchedBudgetComparison) {
  // The paper's parameter matching: DistMult dim 400 vs ComplEx dim 200 vs
  // quaternion dim 100 have equal entity parameter counts.
  const auto distmult = MakeDistMult(kEntities, kRelations, 400, kSeed);
  const auto complex = MakeComplEx(kEntities, kRelations, 200, kSeed);
  const auto quaternion =
      MakeQuaternionModel(kEntities, kRelations, 100, kSeed);
  EXPECT_EQ(distmult->entity_store().block()->size(),
            complex->entity_store().block()->size());
  EXPECT_EQ(complex->entity_store().block()->size(),
            quaternion->entity_store().block()->size());
}

TEST(ModelsTest, ScoreAllTailsAgreesWithScore) {
  for (const auto& model : AllModels()) {
    std::vector<float> scores(kEntities);
    model->ScoreAllTails(3, 1, scores);
    for (EntityId t = 0; t < kEntities; ++t) {
      EXPECT_NEAR(scores[size_t(t)], model->Score({3, t, 1}), 1e-4)
          << model->name() << " tail " << t;
    }
  }
}

TEST(ModelsTest, ScoreAllHeadsAgreesWithScore) {
  for (const auto& model : AllModels()) {
    std::vector<float> scores(kEntities);
    model->ScoreAllHeads(5, 2, scores);
    for (EntityId h = 0; h < kEntities; ++h) {
      EXPECT_NEAR(scores[size_t(h)], model->Score({h, 5, 2}), 1e-4)
          << model->name() << " head " << h;
    }
  }
}

TEST(ModelsTest, InitIsDeterministicInSeed) {
  const auto a = MakeComplEx(kEntities, kRelations, kDim, 123);
  const auto b = MakeComplEx(kEntities, kRelations, kDim, 123);
  const auto c = MakeComplEx(kEntities, kRelations, kDim, 456);
  EXPECT_EQ(a->Score({0, 1, 0}), b->Score({0, 1, 0}));
  EXPECT_NE(a->Score({0, 1, 0}), c->Score({0, 1, 0}));
}

TEST(ModelsTest, BlocksExposeEntityAndRelationStores) {
  auto model = MakeComplEx(kEntities, kRelations, kDim, kSeed);
  const auto blocks = model->Blocks();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[MultiEmbeddingModel::kEntityBlock],
            model->entity_store().block());
  EXPECT_EQ(blocks[MultiEmbeddingModel::kRelationBlock],
            model->relation_store().block());
}

TEST(ModelsTest, AccumulateGradientsMatchesFiniteDifference) {
  auto model = MakeCph(kEntities, kRelations, kDim, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{2, 7, 1};
  const float dscore = 0.8f;
  model->AccumulateGradients(triple, dscore, &grads);

  // Check a handful of head-entity coordinates by finite differences.
  const auto grad = grads.GradFor(MultiEmbeddingModel::kEntityBlock, 2);
  auto h = model->entity_store().Of(2);
  const double eps = 1e-3;
  for (size_t d = 0; d < h.size(); d += 3) {
    const float saved = h[d];
    h[d] = saved + float(eps);
    const double plus = model->Score(triple);
    h[d] = saved - float(eps);
    const double minus = model->Score(triple);
    h[d] = saved;
    EXPECT_NEAR(grad[d], dscore * (plus - minus) / (2 * eps), 1e-2);
  }
}

TEST(ModelsTest, SelfLoopTripleGradientsAccumulateOnOneRow) {
  // head == tail: both gradient contributions must land on the same row.
  auto model = MakeComplEx(kEntities, kRelations, kDim, kSeed);
  GradientBuffer grads(model->Blocks());
  model->AccumulateGradients({4, 4, 0}, 1.0f, &grads);
  size_t entity_rows = 0;
  grads.ForEach([&](size_t block, int64_t row, std::span<const float>) {
    if (block == MultiEmbeddingModel::kEntityBlock) {
      ++entity_rows;
      EXPECT_EQ(row, 4);
    }
  });
  EXPECT_EQ(entity_rows, 1u);
}

TEST(ModelsTest, NormalizeEntitiesMakesUnitVectors) {
  auto model = MakeComplEx(kEntities, kRelations, kDim, kSeed);
  const std::vector<EntityId> ids = {1, 3};
  model->NormalizeEntities(ids);
  for (EntityId e : ids) {
    for (int32_t v = 0; v < 2; ++v) {
      EXPECT_NEAR(Norm(model->entity_store().Vec(e, v)), 1.0, 1e-5);
    }
  }
  // Entity 0 untouched (Xavier init vectors are not unit norm).
  EXPECT_GT(std::abs(Norm(model->entity_store().Vec(0, 0)) - 1.0), 1e-3);
}

TEST(ModelsTest, DistMultScoreIsSymmetricCpIsNot) {
  const auto models = AllModels();
  const Triple forward{1, 2, 0};
  const Triple backward{2, 1, 0};
  EXPECT_NEAR(models[0]->Score(forward), models[0]->Score(backward), 1e-6);
  EXPECT_GT(std::abs(models[2]->Score(forward) - models[2]->Score(backward)),
            1e-6);
}

TEST(ModelsTest, CustomWeightTableModel) {
  auto model = MakeMultiEmbedding("Custom", kEntities, kRelations, kDim,
                                  WeightTable::GoodExample2(), kSeed);
  EXPECT_EQ(model->name(), "Custom");
  EXPECT_EQ(model->weights().terms().size(), 8u);
}

TEST(ModelsTest, InitParametersResetsState) {
  auto model = MakeComplEx(kEntities, kRelations, kDim, 1);
  const double before = model->Score({0, 1, 0});
  model->entity_store().Of(0)[0] += 10.0f;
  EXPECT_NE(model->Score({0, 1, 0}), before);
  model->InitParameters(1);
  EXPECT_NEAR(model->Score({0, 1, 0}), before, 1e-6);
}

}  // namespace
}  // namespace kge
