#include "util/status.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad value").message(), "bad value");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status status = Status::NotFound("missing file");
  EXPECT_EQ(status.ToString(), "NotFound: missing file");
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result->size(), 5u);
}

TEST(ResultTest, AccessingErrorValueAborts) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH({ (void)result.value(); }, "FATAL");
}

Status FailsMidway() {
  KGE_RETURN_IF_ERROR(Status::IoError("disk on fire"));
  return Status::Ok();
}

Status Succeeds() {
  KGE_RETURN_IF_ERROR(Status::Ok());
  return Status::InvalidArgument("reached the end");
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsMidway().code(), StatusCode::kIoError);
  EXPECT_EQ(Succeeds().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kge
