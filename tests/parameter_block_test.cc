#include "core/parameter_block.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "math/vec_ops.h"

namespace kge {
namespace {

TEST(ParameterBlockTest, ShapeAndZeroInit) {
  ParameterBlock block("test", 10, 4);
  EXPECT_EQ(block.num_rows(), 10);
  EXPECT_EQ(block.row_dim(), 4);
  EXPECT_EQ(block.size(), 40);
  EXPECT_EQ(block.name(), "test");
  for (float x : block.Flat()) EXPECT_EQ(x, 0.0f);
}

TEST(ParameterBlockTest, RowsAreDisjointViews) {
  ParameterBlock block("test", 3, 2);
  block.Row(1)[0] = 7.0f;
  block.Row(1)[1] = 8.0f;
  EXPECT_EQ(block.Row(0)[0], 0.0f);
  EXPECT_EQ(block.Row(1)[0], 7.0f);
  EXPECT_EQ(block.Row(2)[0], 0.0f);
  EXPECT_EQ(block.Flat()[2], 7.0f);
}

TEST(ParameterBlockTest, InitUniformWithinBounds) {
  ParameterBlock block("test", 100, 10);
  Rng rng(1);
  block.InitUniform(&rng, -0.5f, 0.5f);
  for (float x : block.Flat()) {
    EXPECT_GE(x, -0.5f);
    EXPECT_LT(x, 0.5f);
  }
}

TEST(ParameterBlockTest, InitGaussianHasRoughlyRightSpread) {
  ParameterBlock block("test", 100, 100);
  Rng rng(2);
  block.InitGaussian(&rng, 0.1f);
  double sum_sq = 0.0;
  for (float x : block.Flat()) sum_sq += double(x) * double(x);
  const double stddev = std::sqrt(sum_sq / double(block.size()));
  EXPECT_NEAR(stddev, 0.1, 0.01);
}

TEST(ParameterBlockTest, InitXavierUniformBound) {
  ParameterBlock block("test", 10, 100);
  Rng rng(3);
  block.InitXavierUniform(&rng, 100);
  const float bound = std::sqrt(6.0f / 100.0f);
  for (float x : block.Flat()) {
    EXPECT_GE(x, -bound);
    EXPECT_LT(x, bound);
  }
}

TEST(ParameterBlockTest, ZeroResets) {
  ParameterBlock block("test", 2, 2);
  Rng rng(4);
  block.InitUniform(&rng, 1.0f, 2.0f);
  block.Zero();
  for (float x : block.Flat()) EXPECT_EQ(x, 0.0f);
}

TEST(GradientBufferTest, GradForZeroedOnFirstTouch) {
  ParameterBlock block("test", 5, 3);
  GradientBuffer grads({&block});
  auto g = grads.GradFor(0, 2);
  EXPECT_EQ(g.size(), 3u);
  for (float x : g) EXPECT_EQ(x, 0.0f);
}

TEST(GradientBufferTest, AccumulatesAcrossCalls) {
  ParameterBlock block("test", 5, 2);
  GradientBuffer grads({&block});
  grads.GradFor(0, 1)[0] += 1.0f;
  grads.GradFor(0, 1)[0] += 2.0f;
  EXPECT_EQ(grads.GradFor(0, 1)[0], 3.0f);
}

TEST(GradientBufferTest, SpansStayValidAsMoreRowsAreTouched) {
  // Regression test: earlier spans must not dangle when later GradFor
  // calls grow the pool.
  ParameterBlock block("test", 1000, 4);
  GradientBuffer grads({&block});
  auto first = grads.GradFor(0, 0);
  first[0] = 42.0f;
  for (int64_t row = 1; row < 500; ++row) grads.GradFor(0, row)[0] = float(row);
  EXPECT_EQ(first[0], 42.0f);
  first[1] = 7.0f;
  EXPECT_EQ(grads.GradFor(0, 0)[1], 7.0f);
}

TEST(GradientBufferTest, ClearRecyclesAndZeroes) {
  ParameterBlock block("test", 5, 2);
  GradientBuffer grads({&block});
  grads.GradFor(0, 3)[0] = 9.0f;
  grads.Clear();
  EXPECT_EQ(grads.NumTouchedRows(), 0u);
  auto g = grads.GradFor(0, 4);  // recycles slot 0
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(grads.NumTouchedRows(), 1u);
}

TEST(GradientBufferTest, MultipleBlocks) {
  ParameterBlock entities("entities", 10, 4);
  ParameterBlock relations("relations", 5, 2);
  GradientBuffer grads({&entities, &relations});
  EXPECT_EQ(grads.num_blocks(), 2u);
  EXPECT_EQ(grads.GradFor(0, 0).size(), 4u);
  EXPECT_EQ(grads.GradFor(1, 0).size(), 2u);
  EXPECT_EQ(grads.block(1)->name(), "relations");
}

TEST(GradientBufferTest, ForEachVisitsEveryTouchedRowOnce) {
  ParameterBlock a("a", 10, 2);
  ParameterBlock b("b", 10, 3);
  GradientBuffer grads({&a, &b});
  grads.GradFor(0, 1)[0] = 1.0f;
  grads.GradFor(0, 7)[0] = 2.0f;
  grads.GradFor(1, 3)[0] = 3.0f;
  grads.GradFor(0, 1)[1] = 4.0f;  // same row again

  std::map<std::pair<size_t, int64_t>, int> visits;
  grads.ForEach([&](size_t block, int64_t row, std::span<const float> grad) {
    ++visits[{block, row}];
    if (block == 0 && row == 1) {
      EXPECT_EQ(grad[0], 1.0f);
      EXPECT_EQ(grad[1], 4.0f);
    }
  });
  EXPECT_EQ(visits.size(), 3u);
  for (const auto& [key, count] : visits) EXPECT_EQ(count, 1);
}

TEST(GradientBufferTest, NumTouchedRows) {
  ParameterBlock block("test", 10, 2);
  GradientBuffer grads({&block});
  EXPECT_EQ(grads.NumTouchedRows(), 0u);
  grads.GradFor(0, 1);
  grads.GradFor(0, 2);
  grads.GradFor(0, 1);
  EXPECT_EQ(grads.NumTouchedRows(), 2u);
}

TEST(GradientBufferTest, FindReturnsAccumulatorOnlyForTouchedRows) {
  ParameterBlock block("e", 8, 4);
  GradientBuffer grads({&block});
  grads.GradFor(0, 3)[1] = 2.5f;
  const std::span<const float> hit = grads.Find(0, 3);
  ASSERT_EQ(hit.size(), 4u);
  EXPECT_EQ(hit[1], 2.5f);
  // Absent rows come back empty and must NOT be inserted by the lookup.
  EXPECT_TRUE(grads.Find(0, 5).empty());
  EXPECT_EQ(grads.NumTouchedRows(), 1u);
  // After Clear the row is untouched again.
  grads.Clear();
  EXPECT_TRUE(grads.Find(0, 3).empty());
}

TEST(GradientBufferTest, ShardOfRowIsAPartition) {
  // Every (block, row) maps to exactly one shard in [0, num_shards), and
  // the assignment is a pure function (stable across calls).
  for (size_t num_shards : {1u, 2u, 3u, 7u}) {
    for (size_t b = 0; b < 3; ++b) {
      for (int64_t row = 0; row < 500; ++row) {
        const size_t shard = GradientBuffer::ShardOfRow(b, row, num_shards);
        EXPECT_LT(shard, num_shards);
        EXPECT_EQ(shard, GradientBuffer::ShardOfRow(b, row, num_shards));
      }
    }
  }
  // The hash should actually spread rows: with 4 shards over 512 rows no
  // shard may be empty or hold almost everything.
  int counts[4] = {0, 0, 0, 0};
  for (int64_t row = 0; row < 512; ++row) {
    ++counts[GradientBuffer::ShardOfRow(0, row, 4)];
  }
  for (int count : counts) {
    EXPECT_GT(count, 512 / 16);
    EXPECT_LT(count, 512 * 7 / 8);
  }
}

TEST(GradientBufferTest, ForEachShardPartitionsTouchedRows) {
  ParameterBlock a("a", 64, 2);
  ParameterBlock b("b", 64, 2);
  GradientBuffer grads({&a, &b});
  for (int64_t row = 0; row < 40; ++row) {
    grads.GradFor(0, row)[0] = float(row);
    grads.GradFor(1, row)[1] = float(-row);
  }
  constexpr size_t kShards = 4;
  std::map<std::pair<size_t, int64_t>, int> visits;
  for (size_t shard = 0; shard < kShards; ++shard) {
    grads.ForEachShard(shard, kShards,
                       [&](size_t block, int64_t row, std::span<const float>) {
                         ++visits[{block, row}];
                       });
  }
  // Union over shards == ForEach, each row exactly once.
  size_t total = 0;
  grads.ForEach([&](size_t block, int64_t row, std::span<const float>) {
    ++total;
    EXPECT_EQ(visits[std::make_pair(block, row)], 1)
        << "block " << block << " row " << row;
  });
  EXPECT_EQ(total, visits.size());
  EXPECT_EQ(total, grads.NumTouchedRows());
}

TEST(GradientBufferTest, TableGrowthPreservesAccumulators) {
  // Touch far more rows than the initial probe-table capacity so the
  // table rehashes several times mid-batch; earlier accumulators and the
  // spans handed out for them must survive.
  ParameterBlock block("e", 4096, 2);
  GradientBuffer grads({&block});
  const std::span<float> first = grads.GradFor(0, 0);
  first[0] = 1.0f;
  for (int64_t row = 0; row < 1000; ++row) grads.GradFor(0, row)[1] += 1.0f;
  for (int64_t row = 0; row < 1000; ++row) {
    const std::span<const float> g = grads.Find(0, row);
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ(g[0], row == 0 ? 1.0f : 0.0f) << "row " << row;
    EXPECT_EQ(g[1], 1.0f) << "row " << row;
  }
  EXPECT_EQ(first.data(), grads.Find(0, 0).data());  // span stayed valid
}

}  // namespace
}  // namespace kge
