#include "core/parameter_block.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "math/vec_ops.h"

namespace kge {
namespace {

TEST(ParameterBlockTest, ShapeAndZeroInit) {
  ParameterBlock block("test", 10, 4);
  EXPECT_EQ(block.num_rows(), 10);
  EXPECT_EQ(block.row_dim(), 4);
  EXPECT_EQ(block.size(), 40);
  EXPECT_EQ(block.name(), "test");
  for (float x : block.Flat()) EXPECT_EQ(x, 0.0f);
}

TEST(ParameterBlockTest, RowsAreDisjointViews) {
  ParameterBlock block("test", 3, 2);
  block.Row(1)[0] = 7.0f;
  block.Row(1)[1] = 8.0f;
  EXPECT_EQ(block.Row(0)[0], 0.0f);
  EXPECT_EQ(block.Row(1)[0], 7.0f);
  EXPECT_EQ(block.Row(2)[0], 0.0f);
  EXPECT_EQ(block.Flat()[2], 7.0f);
}

TEST(ParameterBlockTest, InitUniformWithinBounds) {
  ParameterBlock block("test", 100, 10);
  Rng rng(1);
  block.InitUniform(&rng, -0.5f, 0.5f);
  for (float x : block.Flat()) {
    EXPECT_GE(x, -0.5f);
    EXPECT_LT(x, 0.5f);
  }
}

TEST(ParameterBlockTest, InitGaussianHasRoughlyRightSpread) {
  ParameterBlock block("test", 100, 100);
  Rng rng(2);
  block.InitGaussian(&rng, 0.1f);
  double sum_sq = 0.0;
  for (float x : block.Flat()) sum_sq += double(x) * double(x);
  const double stddev = std::sqrt(sum_sq / double(block.size()));
  EXPECT_NEAR(stddev, 0.1, 0.01);
}

TEST(ParameterBlockTest, InitXavierUniformBound) {
  ParameterBlock block("test", 10, 100);
  Rng rng(3);
  block.InitXavierUniform(&rng, 100);
  const float bound = std::sqrt(6.0f / 100.0f);
  for (float x : block.Flat()) {
    EXPECT_GE(x, -bound);
    EXPECT_LT(x, bound);
  }
}

TEST(ParameterBlockTest, ZeroResets) {
  ParameterBlock block("test", 2, 2);
  Rng rng(4);
  block.InitUniform(&rng, 1.0f, 2.0f);
  block.Zero();
  for (float x : block.Flat()) EXPECT_EQ(x, 0.0f);
}

TEST(GradientBufferTest, GradForZeroedOnFirstTouch) {
  ParameterBlock block("test", 5, 3);
  GradientBuffer grads({&block});
  auto g = grads.GradFor(0, 2);
  EXPECT_EQ(g.size(), 3u);
  for (float x : g) EXPECT_EQ(x, 0.0f);
}

TEST(GradientBufferTest, AccumulatesAcrossCalls) {
  ParameterBlock block("test", 5, 2);
  GradientBuffer grads({&block});
  grads.GradFor(0, 1)[0] += 1.0f;
  grads.GradFor(0, 1)[0] += 2.0f;
  EXPECT_EQ(grads.GradFor(0, 1)[0], 3.0f);
}

TEST(GradientBufferTest, SpansStayValidAsMoreRowsAreTouched) {
  // Regression test: earlier spans must not dangle when later GradFor
  // calls grow the pool.
  ParameterBlock block("test", 1000, 4);
  GradientBuffer grads({&block});
  auto first = grads.GradFor(0, 0);
  first[0] = 42.0f;
  for (int64_t row = 1; row < 500; ++row) grads.GradFor(0, row)[0] = float(row);
  EXPECT_EQ(first[0], 42.0f);
  first[1] = 7.0f;
  EXPECT_EQ(grads.GradFor(0, 0)[1], 7.0f);
}

TEST(GradientBufferTest, ClearRecyclesAndZeroes) {
  ParameterBlock block("test", 5, 2);
  GradientBuffer grads({&block});
  grads.GradFor(0, 3)[0] = 9.0f;
  grads.Clear();
  EXPECT_EQ(grads.NumTouchedRows(), 0u);
  auto g = grads.GradFor(0, 4);  // recycles slot 0
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(grads.NumTouchedRows(), 1u);
}

TEST(GradientBufferTest, MultipleBlocks) {
  ParameterBlock entities("entities", 10, 4);
  ParameterBlock relations("relations", 5, 2);
  GradientBuffer grads({&entities, &relations});
  EXPECT_EQ(grads.num_blocks(), 2u);
  EXPECT_EQ(grads.GradFor(0, 0).size(), 4u);
  EXPECT_EQ(grads.GradFor(1, 0).size(), 2u);
  EXPECT_EQ(grads.block(1)->name(), "relations");
}

TEST(GradientBufferTest, ForEachVisitsEveryTouchedRowOnce) {
  ParameterBlock a("a", 10, 2);
  ParameterBlock b("b", 10, 3);
  GradientBuffer grads({&a, &b});
  grads.GradFor(0, 1)[0] = 1.0f;
  grads.GradFor(0, 7)[0] = 2.0f;
  grads.GradFor(1, 3)[0] = 3.0f;
  grads.GradFor(0, 1)[1] = 4.0f;  // same row again

  std::map<std::pair<size_t, int64_t>, int> visits;
  grads.ForEach([&](size_t block, int64_t row, std::span<const float> grad) {
    ++visits[{block, row}];
    if (block == 0 && row == 1) {
      EXPECT_EQ(grad[0], 1.0f);
      EXPECT_EQ(grad[1], 4.0f);
    }
  });
  EXPECT_EQ(visits.size(), 3u);
  for (const auto& [key, count] : visits) EXPECT_EQ(count, 1);
}

TEST(GradientBufferTest, NumTouchedRows) {
  ParameterBlock block("test", 10, 2);
  GradientBuffer grads({&block});
  EXPECT_EQ(grads.NumTouchedRows(), 0u);
  grads.GradFor(0, 1);
  grads.GradFor(0, 2);
  grads.GradFor(0, 1);
  EXPECT_EQ(grads.NumTouchedRows(), 2u);
}

}  // namespace
}  // namespace kge
