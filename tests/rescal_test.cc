#include "models/rescal.h"

#include <gtest/gtest.h>

#include "math/vec_ops.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 15;
constexpr int32_t kRelations = 3;
constexpr int32_t kDim = 6;
constexpr uint64_t kSeed = 77;

TEST(RescalTest, ShapeAndParameterCount) {
  auto model = MakeRescal(kEntities, kRelations, kDim, kSeed);
  EXPECT_EQ(model->name(), "RESCAL");
  EXPECT_EQ(model->num_entities(), kEntities);
  EXPECT_EQ(model->num_relations(), kRelations);
  // D per entity, D² per relation.
  EXPECT_EQ(model->NumParameters(),
            kEntities * kDim + kRelations * kDim * kDim);
}

TEST(RescalTest, ScoreMatchesNaiveBilinearForm) {
  auto model = MakeRescal(kEntities, kRelations, kDim, kSeed);
  const Triple triple{2, 9, 1};
  const auto h = model->Blocks()[Rescal::kEntityBlock]->Row(triple.head);
  const auto t = model->Blocks()[Rescal::kEntityBlock]->Row(triple.tail);
  const auto w = model->Blocks()[Rescal::kRelationBlock]->Row(triple.relation);
  double expected = 0.0;
  for (int32_t a = 0; a < kDim; ++a) {
    for (int32_t b = 0; b < kDim; ++b) {
      expected += double(h[size_t(a)]) * double(w[size_t(a * kDim + b)]) *
                  double(t[size_t(b)]);
    }
  }
  EXPECT_NEAR(model->Score(triple), expected, 1e-6);
}

TEST(RescalTest, ScoreAllTailsAgreesWithScore) {
  auto model = MakeRescal(kEntities, kRelations, kDim, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllTails(3, 2, scores);
  for (EntityId t = 0; t < kEntities; ++t) {
    EXPECT_NEAR(scores[size_t(t)], model->Score({3, t, 2}), 1e-4);
  }
}

TEST(RescalTest, ScoreAllHeadsAgreesWithScore) {
  auto model = MakeRescal(kEntities, kRelations, kDim, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllHeads(7, 0, scores);
  for (EntityId h = 0; h < kEntities; ++h) {
    EXPECT_NEAR(scores[size_t(h)], model->Score({h, 7, 0}), 1e-4);
  }
}

TEST(RescalTest, GradientsMatchFiniteDifferences) {
  auto model = MakeRescal(kEntities, kRelations, kDim, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{1, 5, 2};
  const float dscore = 0.7f;
  model->AccumulateGradients(triple, dscore, &grads);

  struct Case {
    size_t block;
    int64_t row;
  };
  for (const Case& c : {Case{Rescal::kEntityBlock, 1},
                        Case{Rescal::kEntityBlock, 5},
                        Case{Rescal::kRelationBlock, 2}}) {
    const auto grad = grads.GradFor(c.block, c.row);
    auto params = model->Blocks()[c.block]->Row(c.row);
    const double eps = 1e-3;
    // Sample a subset of coordinates for the D² relation matrix.
    const size_t stride = c.block == Rescal::kRelationBlock ? 7 : 1;
    for (size_t d = 0; d < params.size(); d += stride) {
      const float saved = params[d];
      params[d] = saved + float(eps);
      const double plus = model->Score(triple);
      params[d] = saved - float(eps);
      const double minus = model->Score(triple);
      params[d] = saved;
      EXPECT_NEAR(grad[d], dscore * (plus - minus) / (2 * eps), 1e-2)
          << "block " << c.block << " coord " << d;
    }
  }
}

TEST(RescalTest, CanExpressAsymmetricRelations) {
  // With a generic (non-symmetric) W, swapping h and t changes the score.
  auto model = MakeRescal(kEntities, kRelations, kDim, kSeed);
  EXPECT_GT(std::abs(model->Score({1, 2, 0}) - model->Score({2, 1, 0})),
            1e-6);
}

TEST(RescalTest, DiagonalRelationMatrixReducesToDistMult) {
  // RESCAL with W = diag(r) IS DistMult — the containment the paper's
  // Eq. (3) expresses.
  auto model = MakeRescal(kEntities, 1, kDim, kSeed);
  auto w = model->Blocks()[Rescal::kRelationBlock]->Row(0);
  std::vector<float> diag(kDim);
  for (int32_t i = 0; i < kDim; ++i) diag[size_t(i)] = 0.1f * float(i + 1);
  std::fill(w.begin(), w.end(), 0.0f);
  for (int32_t i = 0; i < kDim; ++i) w[size_t(i * kDim + i)] = diag[size_t(i)];

  const auto h = model->Blocks()[Rescal::kEntityBlock]->Row(3);
  const auto t = model->Blocks()[Rescal::kEntityBlock]->Row(8);
  EXPECT_NEAR(model->Score({3, 8, 0}), TrilinearDot(h, t, diag), 1e-5);
}

TEST(RescalTest, NormalizeEntitiesOnlyTouchesEntities) {
  auto model = MakeRescal(kEntities, kRelations, kDim, kSeed);
  const auto w_before = model->Blocks()[Rescal::kRelationBlock]->Row(0)[0];
  const std::vector<EntityId> ids = {2};
  model->NormalizeEntities(ids);
  EXPECT_NEAR(Norm(model->Blocks()[Rescal::kEntityBlock]->Row(2)), 1.0, 1e-5);
  EXPECT_EQ(model->Blocks()[Rescal::kRelationBlock]->Row(0)[0], w_before);
}

}  // namespace
}  // namespace kge
