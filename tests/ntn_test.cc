#include "models/ntn.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kge {
namespace {

constexpr int32_t kEntities = 12;
constexpr int32_t kRelations = 3;
constexpr int32_t kDim = 5;
constexpr int32_t kSlices = 2;
constexpr uint64_t kSeed = 61;

TEST(NtnTest, ShapeAndParameterCount) {
  auto model = MakeNtn(kEntities, kRelations, kDim, kSlices, kSeed);
  EXPECT_EQ(model->name(), "NTN");
  EXPECT_EQ(model->num_slices(), kSlices);
  const int64_t per_relation =
      kSlices * kDim * kDim + kSlices * 2 * kDim + 2 * kSlices;
  EXPECT_EQ(model->NumParameters(),
            kEntities * kDim + kRelations * per_relation);
}

TEST(NtnTest, ScoreMatchesManualFormula) {
  auto model = MakeNtn(kEntities, kRelations, kDim, kSlices, kSeed);
  const Triple triple{1, 7, 2};
  const auto h = model->Blocks()[Ntn::kEntityBlock]->Row(triple.head);
  const auto t = model->Blocks()[Ntn::kEntityBlock]->Row(triple.tail);
  const auto row = model->Blocks()[Ntn::kRelationBlock]->Row(triple.relation);

  const size_t d = kDim, k = kSlices;
  double expected = 0.0;
  for (size_t slice = 0; slice < k; ++slice) {
    const float* w = row.data() + slice * d * d;
    const float* v = row.data() + k * d * d + slice * 2 * d;
    const float b = row[k * d * d + k * 2 * d + slice];
    const float u = row[k * d * d + k * 2 * d + k + slice];
    double z = double(b);
    for (size_t a = 0; a < d; ++a) {
      for (size_t c = 0; c < d; ++c) {
        z += double(h[a]) * double(w[a * d + c]) * double(t[c]);
      }
      z += double(v[a]) * h[a] + double(v[d + a]) * t[a];
    }
    expected += double(u) * std::tanh(z);
  }
  EXPECT_NEAR(model->Score(triple), expected, 1e-6);
}

TEST(NtnTest, ScoreAllTailsAgreesWithScore) {
  auto model = MakeNtn(kEntities, kRelations, kDim, kSlices, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllTails(2, 1, scores);
  for (EntityId t = 0; t < kEntities; ++t) {
    EXPECT_NEAR(scores[size_t(t)], model->Score({2, t, 1}), 1e-5);
  }
}

TEST(NtnTest, ScoreAllHeadsAgreesWithScore) {
  auto model = MakeNtn(kEntities, kRelations, kDim, kSlices, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllHeads(9, 0, scores);
  for (EntityId h = 0; h < kEntities; ++h) {
    EXPECT_NEAR(scores[size_t(h)], model->Score({h, 9, 0}), 1e-5);
  }
}

TEST(NtnTest, GradientsMatchFiniteDifferences) {
  auto model = MakeNtn(kEntities, kRelations, kDim, kSlices, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{3, 6, 1};
  const float dscore = 0.8f;
  model->AccumulateGradients(triple, dscore, &grads);

  struct Case {
    size_t block;
    int64_t row;
    size_t stride;
  };
  for (const Case& c : {Case{Ntn::kEntityBlock, 3, 1},
                        Case{Ntn::kEntityBlock, 6, 1},
                        Case{Ntn::kRelationBlock, 1, 3}}) {
    const auto grad = grads.GradFor(c.block, c.row);
    auto params = model->Blocks()[c.block]->Row(c.row);
    const double eps = 1e-3;
    for (size_t i = 0; i < params.size(); i += c.stride) {
      const float saved = params[i];
      params[i] = saved + float(eps);
      const double plus = model->Score(triple);
      params[i] = saved - float(eps);
      const double minus = model->Score(triple);
      params[i] = saved;
      EXPECT_NEAR(grad[i], dscore * (plus - minus) / (2 * eps), 1e-2)
          << "block " << c.block << " coord " << i;
    }
  }
}

TEST(NtnTest, SelfLoopGradientsAreConsistent) {
  // head == tail: gradients via both roles accumulate on one row and
  // must equal the total derivative.
  auto model = MakeNtn(kEntities, kRelations, kDim, kSlices, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{4, 4, 0};
  model->AccumulateGradients(triple, 1.0f, &grads);
  const auto grad = grads.GradFor(Ntn::kEntityBlock, 4);
  auto params = model->Blocks()[Ntn::kEntityBlock]->Row(4);
  const double eps = 1e-3;
  for (size_t i = 0; i < params.size(); ++i) {
    const float saved = params[i];
    params[i] = saved + float(eps);
    const double plus = model->Score(triple);
    params[i] = saved - float(eps);
    const double minus = model->Score(triple);
    params[i] = saved;
    EXPECT_NEAR(grad[i], (plus - minus) / (2 * eps), 1e-2);
  }
}

TEST(NtnTest, AsymmetricByConstruction) {
  auto model = MakeNtn(kEntities, kRelations, kDim, kSlices, kSeed);
  EXPECT_GT(std::fabs(model->Score({1, 2, 0}) - model->Score({2, 1, 0})),
            1e-8);
}

TEST(NtnTest, GeneralizesRescalWhenLinearPartsVanish) {
  // With V = 0, b = 0 and small pre-activations, tanh(z) ≈ z, so NTN's
  // slice reduces to u * hᵀWt — a scaled RESCAL.
  auto model = MakeNtn(kEntities, 1, kDim, 1, kSeed);
  auto row = model->Blocks()[Ntn::kRelationBlock]->Row(0);
  const size_t d = kDim;
  // Zero V and b; set u = 1; scale W down so z stays tiny.
  for (size_t i = d * d; i < d * d + 2 * d + 1; ++i) row[i] = 0.0f;
  row[d * d + 2 * d + 1] = 1.0f;  // u
  for (size_t i = 0; i < d * d; ++i) row[i] *= 0.01f;

  const Triple triple{0, 1, 0};
  const auto h = model->Blocks()[Ntn::kEntityBlock]->Row(0);
  const auto t = model->Blocks()[Ntn::kEntityBlock]->Row(1);
  double bilinear = 0.0;
  for (size_t a = 0; a < d; ++a) {
    for (size_t c = 0; c < d; ++c) {
      bilinear += double(h[a]) * double(row[a * d + c]) * double(t[c]);
    }
  }
  EXPECT_NEAR(model->Score(triple), bilinear, 1e-5);
}

}  // namespace
}  // namespace kge
