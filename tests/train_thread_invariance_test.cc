// The training determinism contract: epoch losses and final parameters
// are bit-identical for every num_threads AND every pipeline_depth, for
// both trainers. The batch is carved into fixed virtual shards with
// seed-derived sampling streams and merged in shard order, so the thread
// count only decides how many shards run concurrently, and the pipeline
// depth only decides how far ahead the (parameter-independent) sampling
// stage prefetches — never what either computes. The one documented
// exception is the opt-in deterministic=false completion-order merge,
// pinned here to loss-curve equivalence instead. CI runs this suite in
// scalar and AVX2 builds and under TSan (which additionally exercises
// the pool and pipeline paths for data races).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "datagen/pattern_kg_generator.h"
#include "models/quaternion_model.h"
#include "models/trilinear_models.h"
#include "train/one_vs_all.h"
#include "train/trainer.h"

namespace kge {
namespace {

struct TinyWorkload {
  std::vector<Triple> train;
  int32_t num_entities = 60;
  int32_t num_relations = 3;
};

TinyWorkload MakeTinyWorkload(uint64_t seed = 7) {
  PatternKgOptions options;
  options.num_entities = 60;
  options.seed = seed;
  options.relations = {{RelationPattern::kSymmetric, 60, ""},
                       {RelationPattern::kInversePair, 60, ""}};
  TinyWorkload workload;
  workload.train = GeneratePatternKg(options, nullptr);
  return workload;
}

std::unique_ptr<MultiEmbeddingModel> MakeModelByFamily(
    const std::string& family, const TinyWorkload& workload) {
  if (family == "DistMult") {
    return MakeDistMult(workload.num_entities, workload.num_relations, 8,
                        42);
  }
  if (family == "ComplEx") {
    return MakeComplEx(workload.num_entities, workload.num_relations, 8, 42);
  }
  return MakeQuaternionModel(workload.num_entities, workload.num_relations,
                             4, 42);
}

void ExpectBlocksBitIdentical(MultiEmbeddingModel* a,
                              MultiEmbeddingModel* b) {
  std::vector<ParameterBlock*> blocks_a = a->Blocks();
  std::vector<ParameterBlock*> blocks_b = b->Blocks();
  ASSERT_EQ(blocks_a.size(), blocks_b.size());
  for (size_t i = 0; i < blocks_a.size(); ++i) {
    const auto flat_a = blocks_a[i]->Flat();
    const auto flat_b = blocks_b[i]->Flat();
    ASSERT_EQ(flat_a.size(), flat_b.size());
    for (size_t d = 0; d < flat_a.size(); ++d) {
      ASSERT_EQ(flat_a[d], flat_b[d])
          << blocks_a[i]->name() << " element " << d;
    }
  }
}

class ThreadInvarianceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ThreadInvarianceTest, NegativeSamplingTrainerIsThreadAndDepthInvariant) {
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options;
  options.max_epochs = 3;
  options.batch_size = 32;
  options.num_negatives = 4;
  options.self_adversarial = true;  // exercise the batched softmax path
  options.learning_rate = 0.05;
  options.l2_lambda = 1e-4;
  options.eval_every_epochs = 1000;
  options.seed = 99;
  options.grad_shard_size = 8;  // several shards even at batch 32

  options.num_threads = 1;
  options.pipeline_depth = 1;
  auto reference_model = MakeModelByFamily(GetParam(), workload);
  Trainer reference(reference_model.get(), options);
  const Result<TrainResult> reference_result =
      reference.Train(workload.train, nullptr);
  ASSERT_TRUE(reference_result.ok());

  for (int depth : {1, 2, 3}) {
    for (int threads : {1, 4}) {
      if (depth == 1 && threads == 1) continue;  // the reference itself
      SCOPED_TRACE("pipeline_depth=" + std::to_string(depth) +
                   " num_threads=" + std::to_string(threads));
      options.pipeline_depth = depth;
      options.num_threads = threads;
      auto model = MakeModelByFamily(GetParam(), workload);
      Trainer trainer(model.get(), options);
      const Result<TrainResult> result = trainer.Train(workload.train, nullptr);
      ASSERT_TRUE(result.ok());

      ASSERT_EQ(reference_result->loss_history.size(),
                result->loss_history.size());
      for (size_t e = 0; e < reference_result->loss_history.size(); ++e) {
        ASSERT_EQ(reference_result->loss_history[e], result->loss_history[e])
            << "epoch " << e;
      }
      ExpectBlocksBitIdentical(reference_model.get(), model.get());
    }
  }
}

TEST_P(ThreadInvarianceTest, OneVsAllTrainerIsThreadAndDepthInvariant) {
  const TinyWorkload workload = MakeTinyWorkload();
  OneVsAllOptions options;
  options.max_epochs = 3;
  options.batch_queries = 16;
  options.label_smoothing = 0.1;
  options.learning_rate = 0.05;
  options.eval_every_epochs = 1000;
  options.seed = 99;

  options.num_threads = 1;
  options.pipeline_depth = 1;
  auto reference_model = MakeModelByFamily(GetParam(), workload);
  OneVsAllTrainer reference(reference_model.get(), options);
  const Result<TrainResult> reference_result =
      reference.Train(workload.train, nullptr);
  ASSERT_TRUE(reference_result.ok());

  for (int depth : {1, 2, 3}) {
    for (int threads : {1, 4}) {
      if (depth == 1 && threads == 1) continue;  // the reference itself
      SCOPED_TRACE("pipeline_depth=" + std::to_string(depth) +
                   " num_threads=" + std::to_string(threads));
      options.pipeline_depth = depth;
      options.num_threads = threads;
      auto model = MakeModelByFamily(GetParam(), workload);
      OneVsAllTrainer trainer(model.get(), options);
      const Result<TrainResult> result = trainer.Train(workload.train, nullptr);
      ASSERT_TRUE(result.ok());

      ASSERT_EQ(reference_result->loss_history.size(),
                result->loss_history.size());
      for (size_t e = 0; e < reference_result->loss_history.size(); ++e) {
        ASSERT_EQ(reference_result->loss_history[e], result->loss_history[e])
            << "epoch " << e;
      }
      ExpectBlocksBitIdentical(reference_model.get(), model.get());
    }
  }
}

// The batched-scoring pipeline (one DotBatchMulti per query chunk instead
// of one DotBatch GEMV per query) is a pure scheduling change: by the
// kernel contract every score is bit-identical, so losses and final
// parameters must match the per-query path exactly — at any thread count.
TEST_P(ThreadInvarianceTest, OneVsAllBatchedScoringIsBitIdentical) {
  const TinyWorkload workload = MakeTinyWorkload();
  OneVsAllOptions options;
  options.max_epochs = 3;
  options.batch_queries = 16;
  options.label_smoothing = 0.1;
  options.learning_rate = 0.05;
  options.eval_every_epochs = 1000;
  options.seed = 99;

  options.batched_scoring = false;
  options.num_threads = 1;
  auto per_query_model = MakeModelByFamily(GetParam(), workload);
  OneVsAllTrainer per_query(per_query_model.get(), options);
  const Result<TrainResult> per_query_result =
      per_query.Train(workload.train, nullptr);
  ASSERT_TRUE(per_query_result.ok());

  for (int threads : {1, 4}) {
    options.batched_scoring = true;
    options.num_threads = threads;
    auto batched_model = MakeModelByFamily(GetParam(), workload);
    OneVsAllTrainer batched(batched_model.get(), options);
    const Result<TrainResult> batched_result =
        batched.Train(workload.train, nullptr);
    ASSERT_TRUE(batched_result.ok());

    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ASSERT_EQ(per_query_result->loss_history.size(),
              batched_result->loss_history.size());
    for (size_t e = 0; e < per_query_result->loss_history.size(); ++e) {
      ASSERT_EQ(per_query_result->loss_history[e],
                batched_result->loss_history[e])
          << "epoch " << e;
    }
    ExpectBlocksBitIdentical(per_query_model.get(), batched_model.get());
  }
}

// The margin-ranking loss path must honor the same contract; cover it
// once with the cheapest family.
TEST(ThreadInvarianceMarginTest, MarginLossIsThreadCountInvariant) {
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options;
  options.max_epochs = 3;
  options.batch_size = 32;
  options.num_negatives = 2;
  options.loss = LossKind::kMarginRanking;
  options.optimizer = "sgd";
  options.learning_rate = 0.05;
  options.eval_every_epochs = 1000;
  options.seed = 17;
  options.grad_shard_size = 8;

  options.num_threads = 1;
  auto serial_model = MakeModelByFamily("DistMult", workload);
  Trainer serial(serial_model.get(), options);
  ASSERT_TRUE(serial.Train(workload.train, nullptr).ok());

  options.num_threads = 4;
  auto parallel_model = MakeModelByFamily("DistMult", workload);
  Trainer parallel(parallel_model.get(), options);
  ASSERT_TRUE(parallel.Train(workload.train, nullptr).ok());

  ExpectBlocksBitIdentical(serial_model.get(), parallel_model.get());
}

// The deterministic=false escape hatch merges shard gradients in
// completion order, overlapped with later shards' scoring. The merge is
// race-free (a mutex hands the accumulator from task to task), but the
// per-row float summation ORDER depends on thread timing, so bit
// identity is deliberately given up. Two contracts remain: with a single
// thread there is no overlap, so results stay bit-identical; and with
// contention the loss curve must stay numerically equivalent to the
// deterministic run (the differences are rounding-level, not
// semantic).
TEST(FastMergeTest, SingleThreadFastModeStaysBitIdentical) {
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options;
  options.max_epochs = 3;
  options.batch_size = 32;
  options.num_negatives = 4;
  options.learning_rate = 0.05;
  options.eval_every_epochs = 1000;
  options.seed = 99;
  options.grad_shard_size = 8;
  options.num_threads = 1;

  options.deterministic = true;
  auto deterministic_model = MakeModelByFamily("ComplEx", workload);
  Trainer deterministic(deterministic_model.get(), options);
  ASSERT_TRUE(deterministic.Train(workload.train, nullptr).ok());

  options.deterministic = false;
  auto fast_model = MakeModelByFamily("ComplEx", workload);
  Trainer fast(fast_model.get(), options);
  ASSERT_TRUE(fast.Train(workload.train, nullptr).ok());

  ExpectBlocksBitIdentical(deterministic_model.get(), fast_model.get());
}

TEST(FastMergeTest, NonDeterministicMergeTracksTheLossCurve) {
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options;
  options.max_epochs = 4;
  options.batch_size = 32;
  options.num_negatives = 4;
  options.learning_rate = 0.05;
  options.l2_lambda = 1e-4;
  options.eval_every_epochs = 1000;
  options.seed = 99;
  options.grad_shard_size = 8;
  options.num_threads = 4;
  options.pipeline_depth = 2;

  options.deterministic = true;
  auto deterministic_model = MakeModelByFamily("ComplEx", workload);
  Trainer deterministic(deterministic_model.get(), options);
  const Result<TrainResult> deterministic_result =
      deterministic.Train(workload.train, nullptr);
  ASSERT_TRUE(deterministic_result.ok());

  options.deterministic = false;
  auto fast_model = MakeModelByFamily("ComplEx", workload);
  Trainer fast(fast_model.get(), options);
  const Result<TrainResult> fast_result = fast.Train(workload.train, nullptr);
  ASSERT_TRUE(fast_result.ok());

  ASSERT_EQ(deterministic_result->loss_history.size(),
            fast_result->loss_history.size());
  for (size_t e = 0; e < deterministic_result->loss_history.size(); ++e) {
    const double expected = deterministic_result->loss_history[e];
    // Reordered float sums differ at rounding level; amplified through a
    // few optimizer steps that stays far below 1% on this workload.
    EXPECT_NEAR(fast_result->loss_history[e], expected,
                std::abs(expected) * 1e-2 + 1e-9)
        << "epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ThreadInvarianceTest,
                         ::testing::Values("DistMult", "ComplEx",
                                           "Quaternion"));

}  // namespace
}  // namespace kge
