// Fixture: only the base-class virtual is annotated; the override
// allocates. Expected: the override is rooted by name propagation and
// its [alloc] finding is reported.
#include <vector>

#include "util/hotpath.h"

namespace fixture {

class Scorer {
 public:
  virtual ~Scorer() = default;

  KGE_HOT_NOALLOC
  virtual void ScoreBatch(std::vector<float>* out) const = 0;
};

class AllocatingScorer : public Scorer {
 public:
  void ScoreBatch(std::vector<float>* out) const override {
    out->resize(128);
  }
};

}  // namespace fixture
