// Fixture: a clean hot function, plus an allocating function that is
// NOT reachable from any root. Expected: zero findings — allocations in
// cold code must not be reported.
#include <cstddef>
#include <vector>

#include "util/hotpath.h"

namespace fixture {

KGE_HOT_NOALLOC
double HotClean(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += double(a[i]) * double(b[i]);
  return acc;
}

std::vector<float> ColdAlloc(std::size_t n) {
  std::vector<float> out(n, 0.0f);
  return out;
}

}  // namespace fixture
