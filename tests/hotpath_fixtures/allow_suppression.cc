// Fixture: an annotated hot function whose allocation carries the
// escape-hatch comment. Expected: zero findings, one suppression with
// the reason "high-water growth".
#include <cstddef>
#include <vector>

#include "util/hotpath.h"

namespace fixture {

KGE_HOT_NOALLOC
void HotWithAllow(std::vector<float>* buf, std::size_t n) {
  if (buf->size() < n) buf->resize(n);  // kge-hotpath: allow(high-water growth)
}

}  // namespace fixture
