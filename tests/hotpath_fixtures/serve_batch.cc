// Fixture: the serve micro-batch idiom. A cold assembler grows the
// per-worker scratch (score rows, result slots) to the batch's
// high-water mark before dispatch, then an annotated batch root scores
// every query into that scratch and reduces each row to its top-k by
// bounded sift-down into a fixed-capacity window. Expected: silent —
// all allocation happens in the assembler, which calls the root and so
// stays outside the hot set; the root itself only indexes preallocated
// storage.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hotpath.h"

namespace fixture {

struct ServeBatch {
  std::vector<float> head;       // one embedding row per query
  std::vector<float> relation;   // broadcast relation row
  std::vector<float> entities;   // candidate table, num_entities x dim
  std::vector<float> scores;     // num_queries x num_entities scratch
  std::vector<int32_t> top_ids;  // num_queries x k
  std::vector<float> top_scores;
  size_t dim = 0;
  size_t num_entities = 0;
  size_t k = 0;
};

KGE_HOT_NOALLOC
void ServeBatchScoreAndReduce(ServeBatch* batch, size_t num_queries) {
  const size_t dim = batch->dim;
  const size_t entities = batch->num_entities;
  const size_t k = batch->k;
  for (size_t q = 0; q < num_queries; ++q) {
    float* row = batch->scores.data() + q * entities;
    const float* head = batch->head.data() + q * dim;
    for (size_t e = 0; e < entities; ++e) {
      const float* tail = batch->entities.data() + e * dim;
      float acc = 0.0f;
      for (size_t d = 0; d < dim; ++d) {
        acc += head[d] * batch->relation[d] * tail[d];
      }
      row[e] = acc;
    }
    // Bounded top-k: replace the window minimum on admission. O(k) per
    // candidate, entirely inside preallocated storage.
    int32_t* ids = batch->top_ids.data() + q * k;
    float* best = batch->top_scores.data() + q * k;
    size_t filled = 0;
    for (size_t e = 0; e < entities; ++e) {
      if (filled < k) {
        best[filled] = row[e];
        ids[filled] = int32_t(e);
        ++filled;
        continue;
      }
      size_t lowest = 0;
      for (size_t i = 1; i < k; ++i) {
        if (best[i] < best[lowest]) lowest = i;
      }
      if (row[e] > best[lowest]) {
        best[lowest] = row[e];
        ids[lowest] = int32_t(e);
      }
    }
  }
}

// Cold path: grows every scratch vector to the batch high-water mark,
// then dispatches. It calls the annotated root, so the analyzer must
// treat it as a caller of the hot set, not a member.
void AssembleAndDispatch(ServeBatch* batch, size_t num_queries) {
  batch->scores.resize(num_queries * batch->num_entities);
  batch->head.resize(num_queries * batch->dim);
  batch->top_ids.resize(num_queries * batch->k);
  batch->top_scores.resize(num_queries * batch->k);
  ServeBatchScoreAndReduce(batch, num_queries);
}

}  // namespace fixture
