// Fixture: the root is clean but calls a helper that allocates.
// Expected: one [alloc] finding whose path is HotIndirect -> AppendScore.
#include <vector>

#include "util/hotpath.h"

namespace fixture {

void AppendScore(std::vector<float>* out, float value) {
  out->push_back(value);
}

KGE_HOT_NOALLOC
void HotIndirect(std::vector<float>* out) {
  AppendScore(out, 1.0f);
}

}  // namespace fixture
