// Fixture: an annotated hot function with a throwing path.
// Expected: one [throw] finding.
#include <stdexcept>

#include "util/hotpath.h"

namespace fixture {

KGE_HOT_NOALLOC
int HotThrow(int x) {
  if (x < 0) throw std::runtime_error("negative");
  return x;
}

}  // namespace fixture
