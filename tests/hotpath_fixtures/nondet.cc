// Fixture: an annotated hot function consulting nondeterminism sources.
// Expected: [nondet] findings for rand() and the unordered container.
#include <cstdlib>
#include <unordered_map>

#include "util/hotpath.h"

namespace fixture {

KGE_HOT_NOALLOC
int HotNondet(const std::unordered_map<int, int>& table) {
  int acc = std::rand();  // kge-lint: allow(banned-random)
  for (const auto& [key, value] : table) acc += key * value;
  return acc;
}

}  // namespace fixture
