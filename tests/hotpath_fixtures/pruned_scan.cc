// Fixture: the bound-based pruned tile scan idiom behind the sharded
// top-k ranking path. A cold preparer computes per-tile score upper
// bounds (max row norm per tile) into reused storage; the annotated
// scan root walks the candidate range tile by tile, skips tiles whose
// Cauchy-Schwarz bound cannot beat the current threshold (the shared
// prune floor until the window fills, the window minimum after), and
// maintains the kept-k window entirely inside preallocated storage.
// Expected: silent — all allocation happens in the preparer, which is
// never called from the root; the root only reads bounds and indexes
// scratch.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hotpath.h"

namespace fixture {

struct PrunedScan {
  std::vector<float> entities;    // num_entities x dim candidate table
  std::vector<float> tile_bounds; // max row norm per tile
  std::vector<float> fold;        // folded query, dim floats
  std::vector<int32_t> top_ids;   // kept-k window ids
  std::vector<float> top_scores;  // kept-k window scores
  size_t dim = 0;
  size_t num_entities = 0;
  size_t rows_per_tile = 0;
  size_t k = 0;
  float prune_floor = 0.0f;       // primed k-th best lower bound
  uint64_t tiles_skipped = 0;
};

// Cold path: rebuilds the per-tile bounds at the snapshot high-water
// mark. Runs once per published model generation, never from the scan
// root, so its growth is invisible to the analyzer's hot set.
void PrepareTileBounds(PrunedScan* scan) {
  const size_t tiles =
      (scan->num_entities + scan->rows_per_tile - 1) / scan->rows_per_tile;
  scan->tile_bounds.resize(tiles);
  for (size_t t = 0; t < tiles; ++t) {
    float max_norm = 0.0f;
    const size_t begin = t * scan->rows_per_tile;
    const size_t end =
        begin + scan->rows_per_tile < scan->num_entities
            ? begin + scan->rows_per_tile
            : scan->num_entities;
    for (size_t e = begin; e < end; ++e) {
      float sq = 0.0f;
      for (size_t d = 0; d < scan->dim; ++d) {
        const float x = scan->entities[e * scan->dim + d];
        sq += x * x;
      }
      const float norm = std::sqrt(sq);
      if (norm > max_norm) max_norm = norm;
    }
    scan->tile_bounds[t] = max_norm;
  }
}

KGE_HOT_NOALLOC
void PrunedTopKScanRoot(PrunedScan* scan) {
  float query_sq = 0.0f;
  for (size_t d = 0; d < scan->dim; ++d) {
    query_sq += scan->fold[d] * scan->fold[d];
  }
  const float query_norm = std::sqrt(query_sq);
  const size_t k = scan->k;
  int32_t* ids = scan->top_ids.data();
  float* best = scan->top_scores.data();
  size_t filled = 0;
  for (size_t row0 = 0; row0 < scan->num_entities;
       row0 += scan->rows_per_tile) {
    const size_t tile = row0 / scan->rows_per_tile;
    const size_t tile_end = row0 + scan->rows_per_tile < scan->num_entities
                                ? row0 + scan->rows_per_tile
                                : scan->num_entities;
    // Bound-based skip, strict <: the floor primes pruning before the
    // window fills, the window minimum takes over once it has. Ties
    // must scan — an equal-scoring candidate can win on smaller id.
    const float bound = query_norm * scan->tile_bounds[tile];
    float threshold = scan->prune_floor;
    if (filled == k) {
      size_t lowest = 0;
      for (size_t i = 1; i < k; ++i) {
        if (best[i] < best[lowest]) lowest = i;
      }
      if (best[lowest] > threshold) threshold = best[lowest];
    }
    if (bound < threshold) {
      ++scan->tiles_skipped;
      continue;
    }
    for (size_t e = row0; e < tile_end; ++e) {
      float acc = 0.0f;
      for (size_t d = 0; d < scan->dim; ++d) {
        acc += scan->fold[d] * scan->entities[e * scan->dim + d];
      }
      if (filled < k) {
        best[filled] = acc;
        ids[filled] = int32_t(e);
        ++filled;
        continue;
      }
      size_t lowest = 0;
      for (size_t i = 1; i < k; ++i) {
        if (best[i] < best[lowest]) lowest = i;
      }
      if (acc > best[lowest]) {
        best[lowest] = acc;
        ids[lowest] = int32_t(e);
      }
    }
  }
}

}  // namespace fixture
