// Fixture: an annotated hot function that allocates directly.
// Expected: one [alloc] finding in fixture::HotDirectAlloc.
#include <cstddef>

#include "util/hotpath.h"

namespace fixture {

KGE_HOT_NOALLOC
float* HotDirectAlloc(std::size_t n) {
  return new float[n];
}

}  // namespace fixture
