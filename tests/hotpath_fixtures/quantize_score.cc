// Fixture: the mixed-precision scoring shape — a cold quantization pass
// that allocates the replica storage (rebuilds are allowed to allocate;
// they run before the scoring fanout), followed by a KGE_HOT_NOALLOC
// scoring root that reads the quantized codes without allocating.
// Expected: zero findings — the allocation lives only in cold code.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hotpath.h"

namespace fixture {

// Cold: materializes the int8 replica. Not reachable from the hot root.
void QuantizeReplica(const float* rows, std::size_t num_rows, std::size_t n,
                     std::vector<std::int8_t>* codes,
                     std::vector<float>* scales) {
  codes->resize(num_rows * n);
  scales->resize(num_rows);
  for (std::size_t row = 0; row < num_rows; ++row) {
    float absmax = 0.0f;
    for (std::size_t d = 0; d < n; ++d) {
      const float a = rows[row * n + d] < 0.0f ? -rows[row * n + d]
                                               : rows[row * n + d];
      if (a > absmax) absmax = a;
    }
    const float scale = absmax == 0.0f ? 0.0f : absmax / 127.0f;
    (*scales)[row] = scale;
    for (std::size_t d = 0; d < n; ++d) {
      (*codes)[row * n + d] =
          scale == 0.0f ? std::int8_t(0)
                        : std::int8_t(rows[row * n + d] / scale);
    }
  }
}

// Hot: scores a query against the quantized rows. Pure reads, no
// allocation, no throw, deterministic.
KGE_HOT_NOALLOC
void HotQuantizedScore(const float* query, const std::int8_t* codes,
                       const float* scales, std::size_t num_rows,
                       std::size_t n, float* out) {
  for (std::size_t row = 0; row < num_rows; ++row) {
    float acc = 0.0f;
    for (std::size_t d = 0; d < n; ++d) {
      acc += query[d] * float(codes[row * n + d]);
    }
    out[row] = scales[row] * acc;
  }
}

}  // namespace fixture
