// Fixture: the pipeline-stage idiom used by the trainers. A
// non-annotated trampoline reads the clock for stage-occupancy stats and
// dispatches through a context pointer to an annotated stage root, which
// only writes into buffers that were grown ahead of the steady state.
// Expected: silent — the clock call lives outside the annotated region
// (annotated roots may not read clocks) and the stage body allocates
// nothing, so the trampoline must NOT be pulled into the hot set.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <vector>

#include "util/hotpath.h"

namespace fixture {

struct StageCtx {
  std::vector<float> input;
  std::vector<float> output;  // resized before the stage is scheduled
  double busy_seconds = 0.0;
};

KGE_HOT_NOALLOC
void PipelineStageBody(StageCtx* ctx, size_t begin, size_t end) {
  std::copy(ctx->input.begin() + long(begin), ctx->input.begin() + long(end),
            ctx->output.begin() + long(begin));
}

// Timing stays in the trampoline: it calls the root, so it is a caller
// of the hot set, not a member of it.
void PipelineStageTrampoline(void* opaque, size_t begin, size_t end) {
  auto* ctx = static_cast<StageCtx*>(opaque);
  const auto start = std::chrono::steady_clock::now();
  PipelineStageBody(ctx, begin, end);
  ctx->busy_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

}  // namespace fixture
