// Property sweep over RANDOM weight tables of random shapes: the engine
// identities (fold consistency, gradient exactness, linearity) must hold
// for every ω, not just the paper's presets — this is what makes the
// multi-embedding mechanism a safe extension surface.
#include <gtest/gtest.h>

#include <vector>

#include "core/interaction.h"
#include "math/vec_ops.h"
#include "util/random.h"

namespace kge {
namespace {

struct RandomCase {
  WeightTable table{1, 1};
  int32_t dim = 4;
  std::vector<float> h, t, r;
};

RandomCase MakeCase(uint64_t seed) {
  Rng rng(seed);
  const int32_t ne = 1 + int32_t(rng.NextBounded(4));   // 1..4
  const int32_t nr = 1 + int32_t(rng.NextBounded(4));   // 1..4
  const int32_t dim = 2 + int32_t(rng.NextBounded(9));  // 2..10
  RandomCase c;
  c.dim = dim;
  WeightTable table(ne, nr);
  std::vector<float> flat(size_t(table.size()));
  for (float& w : flat) {
    // Sparse-ish signed weights, like real interaction tables.
    w = rng.NextBool(0.4) ? rng.NextUniform(-2.0f, 2.0f) : 0.0f;
  }
  table.SetFlat(flat);
  c.table = table;
  auto fill = [&rng](std::vector<float>& v, size_t n) {
    v.resize(n);
    for (float& x : v) x = rng.NextUniform(-1, 1);
  };
  fill(c.h, size_t(ne) * size_t(dim));
  fill(c.t, size_t(ne) * size_t(dim));
  fill(c.r, size_t(nr) * size_t(dim));
  return c;
}

class RandomTableTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomTableTest, AllThreeFoldsReproduceTheScore) {
  const RandomCase c = MakeCase(GetParam());
  const double score = ScoreTriple(c.table, c.dim, c.h, c.t, c.r);

  std::vector<float> fold_t(c.t.size());
  FoldForTail(c.table, c.dim, c.h, c.r, fold_t);
  EXPECT_NEAR(Dot(fold_t, c.t), score, 1e-4);

  std::vector<float> fold_h(c.h.size());
  FoldForHead(c.table, c.dim, c.t, c.r, fold_h);
  EXPECT_NEAR(Dot(fold_h, c.h), score, 1e-4);

  std::vector<float> fold_r(c.r.size());
  FoldForRelation(c.table, c.dim, c.h, c.t, fold_r);
  EXPECT_NEAR(Dot(fold_r, c.r), score, 1e-4);
}

TEST_P(RandomTableTest, GradientsAreTheFolds) {
  // For a trilinear form, dS/dh == head fold etc. — exactly.
  const RandomCase c = MakeCase(GetParam() + 1000);
  std::vector<float> gh(c.h.size(), 0.0f), gt(c.t.size(), 0.0f),
      gr(c.r.size(), 0.0f);
  AccumulateTripleGradients(c.table, c.dim, c.h, c.t, c.r, 1.0f, gh, gt, gr);

  std::vector<float> fold_h(c.h.size());
  FoldForHead(c.table, c.dim, c.t, c.r, fold_h);
  EXPECT_NEAR(MaxAbsDiff(gh, fold_h), 0.0, 1e-5);

  std::vector<float> fold_t(c.t.size());
  FoldForTail(c.table, c.dim, c.h, c.r, fold_t);
  EXPECT_NEAR(MaxAbsDiff(gt, fold_t), 0.0, 1e-5);

  std::vector<float> fold_r(c.r.size());
  FoldForRelation(c.table, c.dim, c.h, c.t, fold_r);
  EXPECT_NEAR(MaxAbsDiff(gr, fold_r), 0.0, 1e-5);
}

TEST_P(RandomTableTest, ScoreIsTrilinearInEachArgument) {
  const RandomCase c = MakeCase(GetParam() + 2000);
  const double base = ScoreTriple(c.table, c.dim, c.h, c.t, c.r);
  // Scaling any single argument scales the score linearly.
  std::vector<float> h2 = c.h;
  for (float& x : h2) x *= 3.0f;
  EXPECT_NEAR(ScoreTriple(c.table, c.dim, h2, c.t, c.r), 3.0 * base, 1e-3);
  std::vector<float> r2 = c.r;
  for (float& x : r2) x *= -2.0f;
  EXPECT_NEAR(ScoreTriple(c.table, c.dim, c.h, c.t, r2), -2.0 * base, 1e-3);
}

TEST_P(RandomTableTest, OmegaGradientIsTheScoreJacobian) {
  // S is linear in ω, so dS/dω dotted with ω recovers S.
  const RandomCase c = MakeCase(GetParam() + 3000);
  std::vector<float> omega_grad(size_t(c.table.size()), 0.0f);
  AccumulateOmegaGradients(c.table, c.dim, c.h, c.t, c.r, 1.0f, omega_grad);
  double reconstructed = 0.0;
  const auto flat = c.table.Flat();
  for (size_t m = 0; m < flat.size(); ++m) {
    reconstructed += double(flat[m]) * double(omega_grad[m]);
  }
  EXPECT_NEAR(reconstructed, ScoreTriple(c.table, c.dim, c.h, c.t, c.r),
              1e-4);
}

TEST_P(RandomTableTest, TransposedTableSwapsHeadAndTail) {
  // S_ωᵀ(h, t, r) == S_ω(t, h, r) requires equal h/t shapes (always true
  // here since both use ne vectors).
  const RandomCase c = MakeCase(GetParam() + 4000);
  const WeightTable transposed = c.table.HeadTailTransposed();
  EXPECT_NEAR(ScoreTriple(transposed, c.dim, c.h, c.t, c.r),
              ScoreTriple(c.table, c.dim, c.t, c.h, c.r), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTableTest,
                         testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace kge
