#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"model", "MRR"});
  table.AddRow({"DistMult", "0.796"});
  table.AddRow({"CP", "0.086"});
  const std::string out = table.ToString();
  // Header, separator, two rows.
  int newlines = 0;
  for (char c : out) newlines += c == '\n';
  EXPECT_EQ(newlines, 4);
  // Both MRR values start in the same column.
  const size_t line2 = out.find("DistMult");
  const size_t line3 = out.find("CP");
  const size_t col2 = out.find("0.796") - line2;
  const size_t col3 = out.find("0.086") - line3;
  EXPECT_EQ(col2, col3);
}

TEST(TablePrinterTest, MetricsRowFormatsThreeDecimals) {
  TablePrinter table({"model", "MRR", "H@10"});
  table.AddMetricsRow("ComplEx", {0.93651, 0.9514});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("0.937"), std::string::npos);
  EXPECT_NE(out.find("0.951"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadWithEmptyCells) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NE(table.ToString().find("only"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorSpansColumns) {
  TablePrinter table({"x", "yyyy"});
  table.AddRow({"1", "2"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("-----"), std::string::npos);
}

}  // namespace
}  // namespace kge
