// End-to-end integration tests: generate a knowledge graph, train models
// through the full Trainer/Evaluator stack, and assert the qualitative
// findings the paper's Table 2 rests on — at miniature scale so the suite
// stays fast.
#include <gtest/gtest.h>

#include <cstdio>

#include "kge.h"

namespace kge {
namespace {

struct Workload {
  Dataset dataset;
  FilterIndex filter;
};

// A pattern KG dominated by inverse-paired (asymmetric) relations, the
// regime where the paper's model ranking is sharpest.
Workload MakePatternWorkload(uint64_t seed) {
  PatternKgOptions options;
  options.num_entities = 120;
  options.seed = seed;
  options.relations = {{RelationPattern::kInversePair, 400, "inv"},
                       {RelationPattern::kSymmetric, 150, "sym"}};
  Workload workload;
  const auto triples = GeneratePatternKg(options, &workload.dataset);
  SplitOptions split_options;
  split_options.valid_fraction = 0.05;
  split_options.test_fraction = 0.1;
  split_options.seed = seed + 1;
  SplitResult split = SplitTriples(triples, split_options);
  workload.dataset.train = std::move(split.train);
  workload.dataset.valid = std::move(split.valid);
  workload.dataset.test = std::move(split.test);
  workload.filter.Build(workload.dataset.train, workload.dataset.valid,
                        workload.dataset.test);
  return workload;
}

RankingMetrics TrainAndEvaluate(KgeModel* model, const Workload& workload,
                                const std::vector<Triple>& eval_triples,
                                int epochs = 120) {
  TrainerOptions options;
  options.max_epochs = epochs;
  options.batch_size = 256;
  options.learning_rate = 0.02;
  options.eval_every_epochs = 1000;  // no early stopping in tests
  options.seed = 17;
  Trainer trainer(model, options);
  KGE_CHECK_OK(trainer.Train(workload.dataset.train, nullptr).status());

  Evaluator evaluator(&workload.filter, workload.dataset.num_relations());
  EvalOptions eval_options;
  eval_options.filtered = true;
  return evaluator.EvaluateOverall(*model, eval_triples, eval_options);
}

class EndToEndTest : public testing::Test {
 protected:
  static void SetUpTestSuite() { workload_ = new Workload(MakePatternWorkload(99)); }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* EndToEndTest::workload_ = nullptr;

TEST_F(EndToEndTest, ComplExLearnsInverseStructure) {
  auto model = MakeComplEx(workload_->dataset.num_entities(),
                           workload_->dataset.num_relations(), 16, 1);
  const RankingMetrics metrics =
      TrainAndEvaluate(model.get(), *workload_, workload_->dataset.test);
  EXPECT_GT(metrics.Mrr(), 0.5) << metrics.ToString();
}

TEST_F(EndToEndTest, CphLearnsInverseStructure) {
  auto model = MakeCph(workload_->dataset.num_entities(),
                       workload_->dataset.num_relations(), 16, 1);
  const RankingMetrics metrics =
      TrainAndEvaluate(model.get(), *workload_, workload_->dataset.test);
  EXPECT_GT(metrics.Mrr(), 0.5) << metrics.ToString();
}

TEST_F(EndToEndTest, QuaternionLearnsInverseStructure) {
  auto model = MakeQuaternionModel(workload_->dataset.num_entities(),
                                   workload_->dataset.num_relations(), 8, 1);
  const RankingMetrics metrics =
      TrainAndEvaluate(model.get(), *workload_, workload_->dataset.test);
  EXPECT_GT(metrics.Mrr(), 0.5) << metrics.ToString();
}

TEST_F(EndToEndTest, CpGeneralizesPoorlyButFitsTrain) {
  // The paper's central CP finding: near-perfect fit on train, collapse
  // on test (severe overfitting, §6.1.1).
  auto model = MakeCp(workload_->dataset.num_entities(),
                      workload_->dataset.num_relations(), 24, 1);
  const RankingMetrics test_metrics = TrainAndEvaluate(
      model.get(), *workload_, workload_->dataset.test, /*epochs=*/300);

  Evaluator evaluator(&workload_->filter,
                      workload_->dataset.num_relations());
  EvalOptions eval_options;
  eval_options.filtered = true;
  eval_options.max_triples = 200;
  const RankingMetrics train_metrics = evaluator.EvaluateOverall(
      *model, workload_->dataset.train, eval_options);

  EXPECT_GT(train_metrics.Mrr(), 0.8) << train_metrics.ToString();
  EXPECT_LT(test_metrics.Mrr(), 0.4) << test_metrics.ToString();
}

TEST_F(EndToEndTest, ComplExBeatsDistMultAndCpOnAsymmetricData) {
  auto complex = MakeComplEx(workload_->dataset.num_entities(),
                             workload_->dataset.num_relations(), 16, 2);
  auto distmult = MakeDistMult(workload_->dataset.num_entities(),
                               workload_->dataset.num_relations(), 32, 2);
  auto cp = MakeCp(workload_->dataset.num_entities(),
                   workload_->dataset.num_relations(), 16, 2);
  const double complex_mrr =
      TrainAndEvaluate(complex.get(), *workload_, workload_->dataset.test)
          .Mrr();
  const double distmult_mrr =
      TrainAndEvaluate(distmult.get(), *workload_, workload_->dataset.test)
          .Mrr();
  const double cp_mrr =
      TrainAndEvaluate(cp.get(), *workload_, workload_->dataset.test).Mrr();
  EXPECT_GT(complex_mrr, distmult_mrr);
  EXPECT_GT(complex_mrr, cp_mrr + 0.2);
}

TEST(EndToEndSymmetricTest, DistMultHandlesPurelySymmetricData) {
  // On symmetric-only data DistMult's inductive bias is correct.
  PatternKgOptions options;
  options.num_entities = 100;
  options.seed = 3;
  options.relations = {{RelationPattern::kSymmetric, 400, "sym"}};
  Workload workload;
  const auto triples = GeneratePatternKg(options, &workload.dataset);
  SplitOptions split_options;
  split_options.test_fraction = 0.1;
  SplitResult split = SplitTriples(triples, split_options);
  workload.dataset.train = std::move(split.train);
  workload.dataset.valid = std::move(split.valid);
  workload.dataset.test = std::move(split.test);
  workload.filter.Build(workload.dataset.train, workload.dataset.valid,
                        workload.dataset.test);

  auto model = MakeDistMult(workload.dataset.num_entities(),
                            workload.dataset.num_relations(), 32, 1);
  const RankingMetrics metrics =
      TrainAndEvaluate(model.get(), workload, workload.dataset.test);
  EXPECT_GT(metrics.Mrr(), 0.5) << metrics.ToString();
}

TEST(EndToEndWordNetTest, FullStackOnWordNetLikeData) {
  // Smoke-scale WordNet-like run through the complete pipeline.
  WordNetLikeOptions options;
  options.num_entities = 250;
  options.seed = 8;
  Workload workload;
  workload.dataset = GenerateWordNetLike(options);
  ASSERT_TRUE(workload.dataset.Validate().ok());
  workload.filter.Build(workload.dataset.train, workload.dataset.valid,
                        workload.dataset.test);

  auto model = MakeComplEx(workload.dataset.num_entities(),
                           workload.dataset.num_relations(), 16, 4);
  const RankingMetrics metrics =
      TrainAndEvaluate(model.get(), workload, workload.dataset.test, 150);
  // Miniature scale: just assert clearly-better-than-chance ranking.
  EXPECT_GT(metrics.Mrr(), 0.15) << metrics.ToString();
  EXPECT_GT(metrics.HitsAt(10), 0.3) << metrics.ToString();
}

TEST(EndToEndCheckpointTest, SaveLoadPreservesScores) {
  auto model = MakeComplEx(30, 4, 8, 11);
  const std::string path = testing::TempDir() + "/model.ckpt";
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(model->entity_store().Save(&writer).ok());
    ASSERT_TRUE(model->relation_store().Save(&writer).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto loaded = MakeComplEx(30, 4, 8, 999);  // different init
  EXPECT_NE(loaded->Score({0, 1, 0}), model->Score({0, 1, 0}));
  {
    BinaryReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    ASSERT_TRUE(loaded->entity_store().Load(&reader).ok());
    ASSERT_TRUE(loaded->relation_store().Load(&reader).ok());
  }
  EXPECT_EQ(loaded->Score({0, 1, 0}), model->Score({0, 1, 0}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kge
