// Kernel-equivalence suite for the SIMD dispatch layer (math/simd.h).
//
// Two kinds of guarantees are checked, for whatever ISA this binary was
// compiled with (scalar, AVX2+FMA, or NEON):
//
//  1. Contract tests — the reductions must reproduce the documented
//     8-lane double accumulation scheme *bit for bit*, and DotBatch must
//     equal float(Dot(v, row)) per row exactly. These are what make
//     ranking metrics identical between scalar and SIMD builds.
//  2. Reference tests — every kernel must agree with the naive
//     sequential implementations in simd::ref up to reassociation error
//     (exact for the elementwise kernels, tight tolerance for the
//     reductions).
//
// Sizes deliberately sweep 1..67 so every vector-width remainder path
// (n mod 8 for AVX2, n mod 4 for NEON) is exercised, plus larger sizes
// for the tiled batch kernel.
#include "math/simd.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace kge::simd {
namespace {

std::vector<float> RandomVector(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->NextUniform(-2.0f, 2.0f);
  return v;
}

// The documented accumulation scheme, written as plainly as possible:
// element d contributes to partial d % 8; fixed pairwise combine.
double EightLane(const std::vector<double>& terms) {
  double p[kAccumulatorLanes] = {0.0};
  for (size_t d = 0; d < terms.size(); ++d) {
    p[d % kAccumulatorLanes] += terms[d];
  }
  const double s01 = p[0] + p[1];
  const double s23 = p[2] + p[3];
  const double s45 = p[4] + p[5];
  const double s67 = p[6] + p[7];
  const double lo = s01 + s23;
  const double hi = s45 + s67;
  return lo + hi;
}

// Sizes covering every remainder class of the 4- and 8-wide loops.
std::vector<size_t> TestSizes() {
  std::vector<size_t> sizes;
  for (size_t n = 1; n <= 67; ++n) sizes.push_back(n);
  sizes.push_back(128);
  sizes.push_back(255);
  sizes.push_back(256);
  sizes.push_back(1000);
  return sizes;
}

TEST(SimdTest, ActiveIsaIsNamed) {
  const char* name = IsaName();
  switch (ActiveIsa()) {
    case Isa::kScalar:
      EXPECT_STREQ(name, "scalar");
      break;
    case Isa::kAvx2Fma:
      EXPECT_STREQ(name, "avx2+fma");
      break;
    case Isa::kNeon:
      EXPECT_STREQ(name, "neon");
      break;
  }
}

// ---- Contract tests: bit-exact against the 8-lane scheme -------------------

TEST(SimdTest, DotMatchesEightLaneSchemeExactly) {
  Rng rng(42);
  for (size_t n : TestSizes()) {
    const auto a = RandomVector(&rng, n);
    const auto b = RandomVector(&rng, n);
    std::vector<double> terms(n);
    for (size_t d = 0; d < n; ++d) terms[d] = double(a[d]) * double(b[d]);
    // Bit-exact: FMA on exact double products rounds identically.
    EXPECT_EQ(Dot(a.data(), b.data(), n), EightLane(terms)) << "n=" << n;
  }
}

TEST(SimdTest, SquaredNormMatchesEightLaneSchemeExactly) {
  Rng rng(43);
  for (size_t n : TestSizes()) {
    const auto a = RandomVector(&rng, n);
    std::vector<double> terms(n);
    for (size_t d = 0; d < n; ++d) terms[d] = double(a[d]) * double(a[d]);
    EXPECT_EQ(SquaredNorm(a.data(), n), EightLane(terms)) << "n=" << n;
  }
}

TEST(SimdTest, TrilinearDotMatchesEightLaneSchemeExactly) {
  Rng rng(44);
  for (size_t n : TestSizes()) {
    const auto a = RandomVector(&rng, n);
    const auto b = RandomVector(&rng, n);
    const auto c = RandomVector(&rng, n);
    std::vector<double> terms(n);
    for (size_t d = 0; d < n; ++d) {
      // Same rounding points as the kernel: ab rounds, then ab·c rounds.
      const double ab = double(a[d]) * double(b[d]);
      terms[d] = ab * double(c[d]);
    }
    EXPECT_EQ(TrilinearDot(a.data(), b.data(), c.data(), n), EightLane(terms))
        << "n=" << n;
  }
}

TEST(SimdTest, SquaredL2DistanceMatchesEightLaneSchemeExactly) {
  Rng rng(45);
  for (size_t n : TestSizes()) {
    const auto a = RandomVector(&rng, n);
    const auto b = RandomVector(&rng, n);
    std::vector<double> terms(n);
    for (size_t d = 0; d < n; ++d) {
      const double diff = double(a[d]) - double(b[d]);
      terms[d] = diff * diff;
    }
    EXPECT_EQ(SquaredL2Distance(a.data(), b.data(), n), EightLane(terms))
        << "n=" << n;
  }
}

TEST(SimdTest, L1KernelsMatchEightLaneSchemeExactly) {
  Rng rng(46);
  for (size_t n : TestSizes()) {
    const auto a = RandomVector(&rng, n);
    const auto b = RandomVector(&rng, n);
    std::vector<double> norm_terms(n);
    std::vector<double> dist_terms(n);
    for (size_t d = 0; d < n; ++d) {
      norm_terms[d] = std::fabs(double(a[d]));
      dist_terms[d] = std::fabs(double(a[d]) - double(b[d]));
    }
    EXPECT_EQ(L1Norm(a.data(), n), EightLane(norm_terms)) << "n=" << n;
    EXPECT_EQ(L1Distance(a.data(), b.data(), n), EightLane(dist_terms))
        << "n=" << n;
  }
}

TEST(SimdTest, DotBatchRowsEqualSingleDotExactly) {
  Rng rng(47);
  // Row counts around the tile width so full tiles, remainder rows, and
  // the empty case are all hit.
  for (size_t num_rows : {size_t(0), size_t(1), size_t(3), size_t(4),
                          size_t(5), size_t(7), size_t(8), size_t(33)}) {
    for (size_t n : {size_t(1), size_t(7), size_t(8), size_t(24), size_t(67),
                     size_t(256)}) {
      const auto v = RandomVector(&rng, n);
      const auto rows = RandomVector(&rng, num_rows * n);
      std::vector<float> out(num_rows, -1.0f);
      DotBatch(v.data(), rows.data(), num_rows, n, out.data());
      for (size_t row = 0; row < num_rows; ++row) {
        const float expected = float(Dot(v.data(), rows.data() + row * n, n));
        EXPECT_EQ(out[row], expected) << "row=" << row << " n=" << n;
      }
    }
  }
}

TEST(SimdTest, DotBatchMultiCellsEqualSingleDotExactly) {
  Rng rng(55);
  // Query counts straddling the AVX2 dual-query loop (odd/even, 1, and a
  // count well past one pass) and row counts straddling the 4-row tile.
  for (size_t num_queries : {size_t(1), size_t(2), size_t(3), size_t(8),
                             size_t(33)}) {
    for (size_t num_rows : {size_t(1), size_t(3), size_t(4), size_t(5),
                            size_t(33)}) {
      for (size_t n : TestSizes()) {
        const auto queries = RandomVector(&rng, num_queries * n);
        const auto rows = RandomVector(&rng, num_rows * n);
        std::vector<float> out(num_queries * num_rows, -1.0f);
        DotBatchMulti(queries.data(), num_queries, rows.data(), num_rows, n,
                      out.data());
        for (size_t q = 0; q < num_queries; ++q) {
          for (size_t row = 0; row < num_rows; ++row) {
            const float expected = float(
                Dot(queries.data() + q * n, rows.data() + row * n, n));
            ASSERT_EQ(out[q * num_rows + row], expected)
                << "q=" << q << " row=" << row << " n=" << n;
          }
        }
      }
    }
  }
}

// The cache-blocked row tiling must be invisible: a row count that spans
// several kDotBatchMultiTileBytes tiles still reproduces Dot per cell.
TEST(SimdTest, DotBatchMultiTilingAcrossRowTilesIsExact) {
  Rng rng(56);
  const size_t n = 96;  // 384-byte rows -> 64-row tiles at the 24 KiB budget
  const size_t num_rows = 200;  // 3 full tiles + a remainder tile
  const size_t num_queries = 5;
  const auto queries = RandomVector(&rng, num_queries * n);
  const auto rows = RandomVector(&rng, num_rows * n);
  std::vector<float> out(num_queries * num_rows, -1.0f);
  DotBatchMulti(queries.data(), num_queries, rows.data(), num_rows, n,
                out.data());
  for (size_t q = 0; q < num_queries; ++q) {
    for (size_t row = 0; row < num_rows; ++row) {
      ASSERT_EQ(out[q * num_rows + row],
                float(Dot(queries.data() + q * n, rows.data() + row * n, n)))
          << "q=" << q << " row=" << row;
    }
  }
}

TEST(SimdTest, DotBatchIndexedRowsEqualSingleDotExactly) {
  Rng rng(57);
  const size_t num_rows = 41;
  for (size_t num_ids : {size_t(0), size_t(1), size_t(3), size_t(4),
                         size_t(7), size_t(19)}) {
    for (size_t n : TestSizes()) {
      const auto v = RandomVector(&rng, n);
      const auto rows = RandomVector(&rng, num_rows * n);
      std::vector<std::int32_t> ids(num_ids);
      for (std::int32_t& id : ids) {
        id = std::int32_t(rng.NextUniform(0.0f, float(num_rows) - 0.5f));
      }
      std::vector<float> out(num_ids, -1.0f);
      DotBatchIndexed(v.data(), rows.data(), ids.data(), num_ids, n,
                      out.data());
      for (size_t i = 0; i < num_ids; ++i) {
        const float expected =
            float(Dot(v.data(), rows.data() + size_t(ids[i]) * n, n));
        ASSERT_EQ(out[i], expected) << "i=" << i << " n=" << n;
      }
    }
  }
}

// ---- Precision-tier kernels (see "Precision-tier contract" in simd.h) ------
// For the reduced tiers, simd::ref IS the tier's definition (8 float
// lanes, fixed combine tree, no FMA), so the dispatch kernels must
// reproduce it bit for bit on every ISA — that is what makes float32 and
// int8 metrics identical between scalar and SIMD builds.

TEST(SimdTest, DotBatchMultiF32MatchesRefBitExactly) {
  Rng rng(60);
  for (size_t num_queries : {size_t(1), size_t(2), size_t(3), size_t(8),
                             size_t(33)}) {
    for (size_t num_rows : {size_t(1), size_t(3), size_t(4), size_t(5),
                            size_t(33)}) {
      for (size_t n : TestSizes()) {
        const auto queries = RandomVector(&rng, num_queries * n);
        const auto rows = RandomVector(&rng, num_rows * n);
        std::vector<float> out(num_queries * num_rows, -1.0f);
        std::vector<float> out_ref(num_queries * num_rows, -2.0f);
        DotBatchMultiF32(queries.data(), num_queries, rows.data(), num_rows,
                         n, out.data());
        ref::DotBatchMultiF32(queries.data(), num_queries, rows.data(),
                              num_rows, n, out_ref.data());
        for (size_t c = 0; c < out.size(); ++c) {
          ASSERT_EQ(out[c], out_ref[c])
              << "B=" << num_queries << " rows=" << num_rows << " n=" << n
              << " cell=" << c;
        }
      }
    }
  }
}

TEST(SimdTest, DotBatchMultiI8MatchesRefBitExactly) {
  Rng rng(61);
  for (size_t num_queries : {size_t(1), size_t(2), size_t(3), size_t(8),
                             size_t(33)}) {
    for (size_t num_rows : {size_t(1), size_t(3), size_t(4), size_t(5),
                            size_t(33)}) {
      for (size_t n : TestSizes()) {
        const auto queries = RandomVector(&rng, num_queries * n);
        const auto rows = RandomVector(&rng, num_rows * n);
        std::vector<std::int8_t> rows8(num_rows * n);
        std::vector<float> scales(num_rows);
        QuantizeRowsI8(rows.data(), num_rows, n, rows8.data(), scales.data());
        std::vector<float> out(num_queries * num_rows, -1.0f);
        std::vector<float> out_ref(num_queries * num_rows, -2.0f);
        DotBatchMultiI8(queries.data(), num_queries, rows8.data(),
                        scales.data(), num_rows, n, out.data());
        ref::DotBatchMultiI8(queries.data(), num_queries, rows8.data(),
                             scales.data(), num_rows, n, out_ref.data());
        for (size_t c = 0; c < out.size(); ++c) {
          ASSERT_EQ(out[c], out_ref[c])
              << "B=" << num_queries << " rows=" << num_rows << " n=" << n
              << " cell=" << c;
        }
      }
    }
  }
}

// The cache-blocked tiling of the reduced-tier drivers must be invisible
// too (same spans-multiple-tiles shape as the double-tier test above).
TEST(SimdTest, ReducedTierTilingAcrossRowTilesIsExact) {
  Rng rng(62);
  const size_t n = 96;
  const size_t num_rows = 200;
  const size_t num_queries = 5;
  const auto queries = RandomVector(&rng, num_queries * n);
  const auto rows = RandomVector(&rng, num_rows * n);
  std::vector<std::int8_t> rows8(num_rows * n);
  std::vector<float> scales(num_rows);
  QuantizeRowsI8(rows.data(), num_rows, n, rows8.data(), scales.data());

  std::vector<float> out(num_queries * num_rows);
  std::vector<float> out_ref(num_queries * num_rows);
  DotBatchMultiF32(queries.data(), num_queries, rows.data(), num_rows, n,
                   out.data());
  ref::DotBatchMultiF32(queries.data(), num_queries, rows.data(), num_rows,
                        n, out_ref.data());
  EXPECT_EQ(out, out_ref);

  DotBatchMultiI8(queries.data(), num_queries, rows8.data(), scales.data(),
                  num_rows, n, out.data());
  ref::DotBatchMultiI8(queries.data(), num_queries, rows8.data(),
                       scales.data(), num_rows, n, out_ref.data());
  EXPECT_EQ(out, out_ref);
}

// Sanity: the float32 tier approximates the exact double tier to float
// accumulation error, and the int8 tier to quantization error (each
// element is off by at most scale/2 = absmax/254).
TEST(SimdTest, ReducedTiersApproximateDoubleTier) {
  Rng rng(63);
  const size_t num_queries = 4;
  const size_t num_rows = 19;
  for (size_t n : {size_t(1), size_t(13), size_t(64), size_t(67),
                   size_t(256)}) {
    const auto queries = RandomVector(&rng, num_queries * n);
    const auto rows = RandomVector(&rng, num_rows * n);
    std::vector<std::int8_t> rows8(num_rows * n);
    std::vector<float> scales(num_rows);
    QuantizeRowsI8(rows.data(), num_rows, n, rows8.data(), scales.data());
    std::vector<float> exact(num_queries * num_rows);
    std::vector<float> f32(num_queries * num_rows);
    std::vector<float> i8(num_queries * num_rows);
    DotBatchMulti(queries.data(), num_queries, rows.data(), num_rows, n,
                  exact.data());
    DotBatchMultiF32(queries.data(), num_queries, rows.data(), num_rows, n,
                     f32.data());
    DotBatchMultiI8(queries.data(), num_queries, rows8.data(), scales.data(),
                    num_rows, n, i8.data());
    // |x - scale*code| <= scale/2 per element; |q| <= 2 by construction.
    const double i8_tol = 0.1 + double(n) * 2.0 * (2.0 / 254.0) / 2.0;
    for (size_t c = 0; c < exact.size(); ++c) {
      EXPECT_NEAR(double(f32[c]), double(exact[c]), 1e-2)
          << "f32 cell=" << c << " n=" << n;
      EXPECT_NEAR(double(i8[c]), double(exact[c]), i8_tol)
          << "i8 cell=" << c << " n=" << n;
    }
  }
}

TEST(SimdTest, QuantizeRowsI8EdgeCases) {
  // All-zero row: scale 0, all codes 0 (and the dot against it is 0).
  {
    const std::vector<float> rows(16, 0.0f);
    std::vector<std::int8_t> codes(16, std::int8_t(55));
    std::vector<float> scales(1, -1.0f);
    QuantizeRowsI8(rows.data(), 1, 16, codes.data(), scales.data());
    EXPECT_EQ(scales[0], 0.0f);
    for (const std::int8_t c : codes) EXPECT_EQ(c, std::int8_t(0));
  }
  // The absmax element maps to exactly +/-127; nothing exceeds it.
  {
    const std::vector<float> rows = {0.5f, -4.0f, 1.0f, 4.0f};
    std::vector<std::int8_t> codes(4);
    std::vector<float> scales(1);
    QuantizeRowsI8(rows.data(), 1, 4, codes.data(), scales.data());
    EXPECT_EQ(scales[0], 4.0f / 127.0f);
    EXPECT_EQ(codes[1], std::int8_t(-127));
    EXPECT_EQ(codes[3], std::int8_t(127));
    for (const std::int8_t c : codes) {
      EXPECT_GE(c, std::int8_t(-127));
      EXPECT_LE(c, std::int8_t(127));
    }
  }
  // Scales are per row: each row's absmax sets its own scale.
  {
    const std::vector<float> rows = {1.0f, -1.0f, 8.0f, 2.0f};
    std::vector<std::int8_t> codes(4);
    std::vector<float> scales(2);
    QuantizeRowsI8(rows.data(), 2, 2, codes.data(), scales.data());
    EXPECT_EQ(scales[0], 1.0f / 127.0f);
    EXPECT_EQ(scales[1], 8.0f / 127.0f);
    EXPECT_EQ(codes[2], std::int8_t(127));
  }
}

// ---- Pruned-ranking support kernels ----------------------------------------

TEST(SimdTest, TileMaxRowNormsMatchesRefWithinReassoc) {
  Rng rng(70);
  for (size_t num_rows : {size_t(1), size_t(5), size_t(64), size_t(200)}) {
    for (size_t n : {size_t(1), size_t(24), size_t(96)}) {
      const size_t rows_per_tile = PrunedTileRows(n);
      const size_t tiles = PrunedTileCount(num_rows, n);
      const auto rows = RandomVector(&rng, num_rows * n);
      std::vector<float> norms(tiles, -1.0f);
      std::vector<float> norms_ref(tiles, -2.0f);
      TileMaxRowNorms(rows.data(), num_rows, n, rows_per_tile, norms.data());
      ref::TileMaxRowNorms(rows.data(), num_rows, n, rows_per_tile,
                           norms_ref.data());
      for (size_t t = 0; t < tiles; ++t) {
        EXPECT_NEAR(double(norms[t]), double(norms_ref[t]), 1e-5)
            << "tile=" << t << " rows=" << num_rows << " n=" << n;
      }
    }
  }
}

TEST(SimdTest, TileMaxRowNormsI8MatchesRefExactly) {
  Rng rng(71);
  for (size_t num_rows : {size_t(1), size_t(7), size_t(130)}) {
    for (size_t n : {size_t(1), size_t(17), size_t(96)}) {
      const size_t rows_per_tile = PrunedTileRows(n);
      const size_t tiles = PrunedTileCount(num_rows, n);
      const auto rows = RandomVector(&rng, num_rows * n);
      std::vector<std::int8_t> rows8(num_rows * n);
      std::vector<float> scales(num_rows);
      QuantizeRowsI8(rows.data(), num_rows, n, rows8.data(), scales.data());
      std::vector<float> norms(tiles, -1.0f);
      std::vector<float> norms_ref(tiles, -2.0f);
      TileMaxRowNormsI8(rows8.data(), scales.data(), num_rows, n,
                        rows_per_tile, norms.data());
      ref::TileMaxRowNormsI8(rows8.data(), scales.data(), num_rows, n,
                             rows_per_tile, norms_ref.data());
      // Integer code sums are exact in double, so kernel == ref bit-for-bit.
      for (size_t t = 0; t < tiles; ++t) {
        EXPECT_EQ(norms[t], norms_ref[t])
            << "tile=" << t << " rows=" << num_rows << " n=" << n;
      }
    }
  }
}

TEST(SimdTest, CountGreaterEqualMatchesRefExactly) {
  Rng rng(72);
  for (size_t n : TestSizes()) {
    auto scores = RandomVector(&rng, n);
    // Force ties so the equal count is exercised.
    for (size_t i = 0; i < n; i += 3) scores[i] = 0.25f;
    for (const float threshold : {0.25f, 0.0f, -3.0f, 3.0f}) {
      size_t g = 0, e = 0, g_ref = 0, e_ref = 0;
      CountGreaterEqual(scores.data(), n, threshold, &g, &e);
      ref::CountGreaterEqual(scores.data(), n, threshold, &g_ref, &e_ref);
      EXPECT_EQ(g, g_ref) << "n=" << n << " threshold=" << threshold;
      EXPECT_EQ(e, e_ref) << "n=" << n << " threshold=" << threshold;
    }
  }
  size_t g = 7, e = 7;
  CountGreaterEqual(nullptr, 0, 1.0f, &g, &e);
  EXPECT_EQ(g, size_t(0));
  EXPECT_EQ(e, size_t(0));
}

// The conservativeness property the pruned ranking path relies on: for
// every tile, ‖q‖·tile_norm·kPruneBoundSlack dominates every score a row
// of the tile can produce, in every precision tier.
TEST(SimdTest, TileBoundsDominateEveryScoreInTile) {
  Rng rng(73);
  const size_t n = 48;
  const size_t num_rows = 300;  // several tiles at 128 rows/tile
  const size_t rows_per_tile = PrunedTileRows(n);
  const size_t tiles = PrunedTileCount(num_rows, n);
  const auto rows = RandomVector(&rng, num_rows * n);
  const auto query = RandomVector(&rng, n);
  std::vector<std::int8_t> rows8(num_rows * n);
  std::vector<float> scales(num_rows);
  QuantizeRowsI8(rows.data(), num_rows, n, rows8.data(), scales.data());
  std::vector<float> norms(tiles);
  std::vector<float> norms8(tiles);
  TileMaxRowNorms(rows.data(), num_rows, n, rows_per_tile, norms.data());
  TileMaxRowNormsI8(rows8.data(), scales.data(), num_rows, n, rows_per_tile,
                    norms8.data());
  const double qnorm = std::sqrt(SquaredNorm(query.data(), n));

  std::vector<float> exact(num_rows);
  std::vector<float> f32(num_rows);
  std::vector<float> i8(num_rows);
  DotBatch(query.data(), rows.data(), num_rows, n, exact.data());
  DotBatchMultiF32(query.data(), 1, rows.data(), num_rows, n, f32.data());
  DotBatchMultiI8(query.data(), 1, rows8.data(), scales.data(), num_rows, n,
                  i8.data());
  for (size_t row = 0; row < num_rows; ++row) {
    const size_t t = row / rows_per_tile;
    const double bound = qnorm * double(norms[t]) * kPruneBoundSlack;
    EXPECT_GE(bound, double(exact[row])) << "double row=" << row;
    EXPECT_GE(bound, double(f32[row])) << "f32 row=" << row;
    const double bound8 = qnorm * double(norms8[t]) * kPruneBoundSlack;
    EXPECT_GE(bound8, double(i8[row])) << "i8 row=" << row;
  }
}

TEST(SimdTest, TripleGradAxpyEqualsThreeHadamardAxpyExactly) {
  Rng rng(48);
  for (size_t n : TestSizes()) {
    const auto h = RandomVector(&rng, n);
    const auto t = RandomVector(&rng, n);
    const auto r = RandomVector(&rng, n);
    const float w = rng.NextUniform(-1.5f, 1.5f);
    auto gh = RandomVector(&rng, n);
    auto gt = RandomVector(&rng, n);
    auto gr = RandomVector(&rng, n);
    auto gh2 = gh, gt2 = gt, gr2 = gr;

    TripleGradAxpy(w, h.data(), t.data(), r.data(), gh.data(), gt.data(),
                   gr.data(), n);
    HadamardAxpy(w, t.data(), r.data(), gh2.data(), n);
    HadamardAxpy(w, h.data(), r.data(), gt2.data(), n);
    HadamardAxpy(w, h.data(), t.data(), gr2.data(), n);

    EXPECT_EQ(gh, gh2) << "n=" << n;
    EXPECT_EQ(gt, gt2) << "n=" << n;
    EXPECT_EQ(gr, gr2) << "n=" << n;
  }
}

// ---- Reference tests: against the naive sequential implementations ---------

// Reassociating a double sum of n O(1) terms perturbs it by at most a few
// n·eps; 1e-9 is orders of magnitude above that for n <= 1000 while still
// catching any real kernel bug.
constexpr double kReassocTol = 1e-9;

TEST(SimdTest, ReductionsMatchNaiveReference) {
  Rng rng(49);
  for (size_t n : TestSizes()) {
    const auto a = RandomVector(&rng, n);
    const auto b = RandomVector(&rng, n);
    const auto c = RandomVector(&rng, n);
    EXPECT_NEAR(Dot(a.data(), b.data(), n), ref::Dot(a.data(), b.data(), n),
                kReassocTol);
    EXPECT_NEAR(TrilinearDot(a.data(), b.data(), c.data(), n),
                ref::TrilinearDot(a.data(), b.data(), c.data(), n),
                kReassocTol);
    EXPECT_NEAR(SquaredNorm(a.data(), n), ref::SquaredNorm(a.data(), n),
                kReassocTol);
    EXPECT_NEAR(L1Norm(a.data(), n), ref::L1Norm(a.data(), n), kReassocTol);
    EXPECT_NEAR(L1Distance(a.data(), b.data(), n),
                ref::L1Distance(a.data(), b.data(), n), kReassocTol);
    EXPECT_NEAR(SquaredL2Distance(a.data(), b.data(), n),
                ref::SquaredL2Distance(a.data(), b.data(), n), kReassocTol);
    // Max is order-independent: exact.
    EXPECT_EQ(MaxAbsDiff(a.data(), b.data(), n),
              ref::MaxAbsDiff(a.data(), b.data(), n));
  }
}

TEST(SimdTest, ElementwiseKernelsMatchNaiveReferenceExactly) {
  Rng rng(50);
  for (size_t n : TestSizes()) {
    const auto a = RandomVector(&rng, n);
    const auto b = RandomVector(&rng, n);
    const float scale = rng.NextUniform(-1.5f, 1.5f);

    std::vector<float> out(n), out_ref(n);
    Hadamard(a.data(), b.data(), out.data(), n);
    ref::Hadamard(a.data(), b.data(), out_ref.data(), n);
    EXPECT_EQ(out, out_ref) << "Hadamard n=" << n;

    auto acc = RandomVector(&rng, n);
    auto acc_ref = acc;
    HadamardAxpy(scale, a.data(), b.data(), acc.data(), n);
    ref::HadamardAxpy(scale, a.data(), b.data(), acc_ref.data(), n);
    EXPECT_EQ(acc, acc_ref) << "HadamardAxpy n=" << n;

    auto axpy = RandomVector(&rng, n);
    auto axpy_ref = axpy;
    Axpy(scale, a.data(), axpy.data(), n);
    ref::Axpy(scale, a.data(), axpy_ref.data(), n);
    EXPECT_EQ(axpy, axpy_ref) << "Axpy n=" << n;
  }
}

TEST(SimdTest, DotBatchMultiMatchesNaiveReference) {
  Rng rng(58);
  const size_t num_queries = 6;
  const size_t num_rows = 37;
  for (size_t n : {size_t(1), size_t(13), size_t(64), size_t(67)}) {
    const auto queries = RandomVector(&rng, num_queries * n);
    const auto rows = RandomVector(&rng, num_rows * n);
    std::vector<float> out(num_queries * num_rows);
    std::vector<float> out_ref(num_queries * num_rows);
    DotBatchMulti(queries.data(), num_queries, rows.data(), num_rows, n,
                  out.data());
    ref::DotBatchMulti(queries.data(), num_queries, rows.data(), num_rows, n,
                       out_ref.data());
    for (size_t c = 0; c < out.size(); ++c) {
      EXPECT_NEAR(double(out[c]), double(out_ref[c]), 1e-4)
          << "cell=" << c << " n=" << n;
    }
  }
}

TEST(SimdTest, DotBatchIndexedMatchesNaiveReference) {
  Rng rng(59);
  const size_t num_rows = 37;
  const size_t num_ids = 23;
  for (size_t n : {size_t(1), size_t(13), size_t(64), size_t(67)}) {
    const auto v = RandomVector(&rng, n);
    const auto rows = RandomVector(&rng, num_rows * n);
    std::vector<std::int32_t> ids(num_ids);
    for (std::int32_t& id : ids) {
      id = std::int32_t(rng.NextUniform(0.0f, float(num_rows) - 0.5f));
    }
    std::vector<float> out(num_ids), out_ref(num_ids);
    DotBatchIndexed(v.data(), rows.data(), ids.data(), num_ids, n,
                    out.data());
    ref::DotBatchIndexed(v.data(), rows.data(), ids.data(), num_ids, n,
                         out_ref.data());
    for (size_t i = 0; i < num_ids; ++i) {
      EXPECT_NEAR(double(out[i]), double(out_ref[i]), 1e-4)
          << "i=" << i << " n=" << n;
    }
  }
}

TEST(SimdTest, DotBatchMatchesNaiveReference) {
  Rng rng(51);
  const size_t num_rows = 37;
  for (size_t n : {size_t(1), size_t(13), size_t(64), size_t(67)}) {
    const auto v = RandomVector(&rng, n);
    const auto rows = RandomVector(&rng, num_rows * n);
    std::vector<float> out(num_rows), out_ref(num_rows);
    DotBatch(v.data(), rows.data(), num_rows, n, out.data());
    ref::DotBatch(v.data(), rows.data(), num_rows, n, out_ref.data());
    for (size_t row = 0; row < num_rows; ++row) {
      EXPECT_NEAR(double(out[row]), double(out_ref[row]), 1e-4)
          << "row=" << row << " n=" << n;
    }
  }
}

TEST(SimdTest, FillAndScale) {
  for (size_t n : TestSizes()) {
    std::vector<float> v(n, -3.0f);
    Fill(v.data(), 1.25f, n);
    for (float x : v) ASSERT_EQ(x, 1.25f);
    Scale(v.data(), 2.0f, n);
    for (float x : v) ASSERT_EQ(x, 2.5f);
  }
}

// Vector loads in the kernels are unaligned by design: embedding rows in
// a parameter block start at arbitrary float offsets.
TEST(SimdTest, HandlesUnalignedPointers) {
  Rng rng(52);
  const size_t n = 65;
  const auto a = RandomVector(&rng, n + 3);
  const auto b = RandomVector(&rng, n + 3);
  for (size_t off = 0; off < 3; ++off) {
    const double expected = ref::Dot(a.data() + off, b.data() + off, n);
    EXPECT_NEAR(Dot(a.data() + off, b.data() + off, n), expected,
                kReassocTol);
  }
}

TEST(SimdTest, ZeroLengthIsSafe) {
  EXPECT_EQ(Dot(nullptr, nullptr, 0), 0.0);
  EXPECT_EQ(SquaredNorm(nullptr, 0), 0.0);
  EXPECT_EQ(MaxAbsDiff(nullptr, nullptr, 0), 0.0);
  DotBatch(nullptr, nullptr, 0, 0, nullptr);
  DotBatchMulti(nullptr, 0, nullptr, 0, 0, nullptr);
  DotBatchMultiF32(nullptr, 0, nullptr, 0, 0, nullptr);
  DotBatchMultiI8(nullptr, 0, nullptr, nullptr, 0, 0, nullptr);
  DotBatchIndexed(nullptr, nullptr, nullptr, 0, 0, nullptr);
  QuantizeRowsI8(nullptr, 0, 0, nullptr, nullptr);
  Fill(nullptr, 0.0f, 0);
}

}  // namespace
}  // namespace kge::simd
