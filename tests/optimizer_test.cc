#include "optim/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>

#include "optim/constraints.h"
#include "util/io.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace kge {
namespace {

// Minimizes f(x) = Σ (x_d - target_d)² with the given optimizer by feeding
// exact gradients; returns the final squared error.
double MinimizeQuadratic(Optimizer* optimizer, ParameterBlock* block,
                         const std::vector<float>& target, int steps) {
  GradientBuffer grads({block});
  for (int s = 0; s < steps; ++s) {
    grads.Clear();
    auto g = grads.GradFor(0, 0);
    auto x = block->Row(0);
    for (size_t d = 0; d < target.size(); ++d) {
      g[d] = 2.0f * (x[d] - target[d]);
    }
    optimizer->Apply(grads);
  }
  double err = 0.0;
  auto x = block->Row(0);
  for (size_t d = 0; d < target.size(); ++d) {
    err += (x[d] - target[d]) * (x[d] - target[d]);
  }
  return err;
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  ParameterBlock block("x", 1, 4);
  const std::vector<float> target = {1.0f, -2.0f, 0.5f, 3.0f};
  SgdOptions options;
  options.learning_rate = 0.1;
  auto optimizer = MakeSgd({&block}, options);
  EXPECT_LT(MinimizeQuadratic(optimizer.get(), &block, target, 200), 1e-6);
}

TEST(OptimizerTest, AdagradConvergesOnQuadratic) {
  ParameterBlock block("x", 1, 4);
  const std::vector<float> target = {1.0f, -2.0f, 0.5f, 3.0f};
  AdagradOptions options;
  options.learning_rate = 0.5;
  auto optimizer = MakeAdagrad({&block}, options);
  EXPECT_LT(MinimizeQuadratic(optimizer.get(), &block, target, 2000), 1e-3);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  ParameterBlock block("x", 1, 4);
  const std::vector<float> target = {1.0f, -2.0f, 0.5f, 3.0f};
  AdamOptions options;
  options.learning_rate = 0.05;
  auto optimizer = MakeAdam({&block}, options);
  EXPECT_LT(MinimizeQuadratic(optimizer.get(), &block, target, 2000), 1e-4);
}

TEST(OptimizerTest, SgdStepIsExactlyLrTimesGradient) {
  ParameterBlock block("x", 2, 2);
  block.Row(1)[0] = 1.0f;
  SgdOptions options;
  options.learning_rate = 0.5;
  auto optimizer = MakeSgd({&block}, options);
  GradientBuffer grads({&block});
  grads.GradFor(0, 1)[0] = 2.0f;
  optimizer->Apply(grads);
  EXPECT_FLOAT_EQ(block.Row(1)[0], 0.0f);
  EXPECT_FLOAT_EQ(block.Row(0)[0], 0.0f);  // untouched rows unchanged
}

TEST(OptimizerTest, UntouchedRowsNeverMove) {
  ParameterBlock block("x", 10, 3);
  Rng rng(1);
  block.InitUniform(&rng, -1, 1);
  std::vector<float> before(block.Flat().begin(), block.Flat().end());

  AdamOptions options;
  auto optimizer = MakeAdam({&block}, options);
  GradientBuffer grads({&block});
  grads.GradFor(0, 4)[0] = 1.0f;
  optimizer->Apply(grads);

  for (int64_t row = 0; row < 10; ++row) {
    if (row == 4) continue;
    for (int64_t d = 0; d < 3; ++d) {
      EXPECT_EQ(block.Row(row)[size_t(d)], before[size_t(row * 3 + d)]);
    }
  }
  EXPECT_NE(block.Row(4)[0], before[12]);
}

TEST(OptimizerTest, AdamFirstStepSizeIsLearningRate) {
  // With bias correction, Adam's first update is ±lr regardless of
  // gradient magnitude (up to epsilon).
  ParameterBlock block("x", 1, 2);
  AdamOptions options;
  options.learning_rate = 0.1;
  auto optimizer = MakeAdam({&block}, options);
  GradientBuffer grads({&block});
  grads.GradFor(0, 0)[0] = 100.0f;
  grads.GradFor(0, 0)[1] = 0.001f;
  optimizer->Apply(grads);
  EXPECT_NEAR(block.Row(0)[0], -0.1f, 1e-4);
  EXPECT_NEAR(block.Row(0)[1], -0.1f, 1e-3);
}

TEST(OptimizerTest, AdagradShrinksEffectiveStep) {
  ParameterBlock block("x", 1, 1);
  AdagradOptions options;
  options.learning_rate = 1.0;
  auto optimizer = MakeAdagrad({&block}, options);
  GradientBuffer grads({&block});

  grads.GradFor(0, 0)[0] = 1.0f;
  optimizer->Apply(grads);
  const float first_step = -block.Row(0)[0];

  const float before = block.Row(0)[0];
  grads.Clear();
  grads.GradFor(0, 0)[0] = 1.0f;
  optimizer->Apply(grads);
  const float second_step = before - block.Row(0)[0];
  EXPECT_LT(second_step, first_step);
}

TEST(OptimizerTest, ResetClearsState) {
  ParameterBlock block("x", 1, 1);
  AdamOptions options;
  options.learning_rate = 0.1;
  auto optimizer = MakeAdam({&block}, options);
  GradientBuffer grads({&block});
  grads.GradFor(0, 0)[0] = 1.0f;
  optimizer->Apply(grads);
  const float after_first = block.Row(0)[0];

  optimizer->Reset();
  block.Zero();
  grads.Clear();
  grads.GradFor(0, 0)[0] = 1.0f;
  optimizer->Apply(grads);
  EXPECT_FLOAT_EQ(block.Row(0)[0], after_first);
}

TEST(OptimizerTest, FactoryByName) {
  ParameterBlock block("x", 1, 1);
  for (const char* name : {"sgd", "adagrad", "adam"}) {
    auto optimizer = MakeOptimizer(name, {&block}, 0.1);
    ASSERT_TRUE(optimizer.ok()) << name;
    EXPECT_EQ((*optimizer)->name(), name);
  }
  EXPECT_FALSE(MakeOptimizer("rmsprop", {&block}, 0.1).ok());
}

// Pool-sharded Apply must be bit-identical to the serial apply: row
// updates read and write only per-row state, and the hash partition just
// distributes rows across workers.
TEST(OptimizerTest, ParallelApplyIsBitIdenticalToSerial) {
  constexpr int64_t kRows = 200;  // above the parallel fan-out threshold
  constexpr int32_t kDim = 6;
  constexpr int kSteps = 5;
  for (const char* name : {"sgd", "adagrad", "adam"}) {
    ParameterBlock serial_block("x", kRows, kDim);
    ParameterBlock parallel_block("x", kRows, kDim);
    Rng init(11);
    serial_block.InitUniform(&init, -0.5f, 0.5f);
    std::copy(serial_block.Flat().begin(), serial_block.Flat().end(),
              parallel_block.Flat().begin());

    auto serial_result = MakeOptimizer(name, {&serial_block}, 0.05);
    auto parallel_result = MakeOptimizer(name, {&parallel_block}, 0.05);
    ASSERT_TRUE(serial_result.ok() && parallel_result.ok()) << name;
    auto serial_opt = std::move(*serial_result);
    auto parallel_opt = std::move(*parallel_result);
    GradientBuffer serial_grads({&serial_block});
    GradientBuffer parallel_grads({&parallel_block});
    ThreadPool pool(4);

    Rng rng(37);
    for (int step = 0; step < kSteps; ++step) {
      serial_grads.Clear();
      parallel_grads.Clear();
      // Touch most rows with identical pseudo-random gradients.
      for (int64_t row = 0; row < kRows; ++row) {
        if (rng.NextBool(0.2)) continue;
        auto gs = serial_grads.GradFor(0, row);
        auto gp = parallel_grads.GradFor(0, row);
        for (size_t d = 0; d < size_t(kDim); ++d) {
          const float g = rng.NextUniform(-1.0f, 1.0f);
          gs[d] = g;
          gp[d] = g;
        }
      }
      serial_opt->Apply(serial_grads);
      parallel_opt->Apply(parallel_grads, &pool);
    }

    const auto serial_flat = serial_block.Flat();
    const auto parallel_flat = parallel_block.Flat();
    ASSERT_EQ(serial_flat.size(), parallel_flat.size());
    for (size_t i = 0; i < serial_flat.size(); ++i) {
      ASSERT_EQ(serial_flat[i], parallel_flat[i])
          << name << " element " << i;
    }
  }
}

TEST(OptimizerTest, LearningRateAccessors) {
  ParameterBlock block("x", 1, 1);
  for (const char* name : {"sgd", "adagrad", "adam"}) {
    auto optimizer = MakeOptimizer(name, {&block}, 0.25);
    ASSERT_TRUE(optimizer.ok()) << name;
    EXPECT_EQ((*optimizer)->learning_rate(), 0.25) << name;
    (*optimizer)->set_learning_rate(0.125);
    EXPECT_EQ((*optimizer)->learning_rate(), 0.125) << name;
  }
}

// Save the optimizer state mid-run, reload it into a fresh optimizer,
// and finish the run: the parameters must be bit-identical to an
// uninterrupted run. This is the optimizer half of the exact-resume
// contract.
TEST(OptimizerTest, StateRoundTripContinuesBitIdentically) {
  constexpr int64_t kRows = 16;
  constexpr int32_t kDim = 4;
  constexpr int kTotalSteps = 12;
  constexpr int kSplitStep = 5;
  const std::string path = testing::TempDir() + "/opt_state.bin";

  auto run_steps = [&](Optimizer* optimizer, GradientBuffer* grads,
                       Rng* rng, int steps) {
    for (int s = 0; s < steps; ++s) {
      grads->Clear();
      for (int64_t row = 0; row < kRows; ++row) {
        if (rng->NextBool(0.25)) continue;
        auto g = grads->GradFor(0, row);
        for (size_t d = 0; d < size_t(kDim); ++d) {
          g[d] = rng->NextUniform(-1.0f, 1.0f);
        }
      }
      optimizer->Apply(*grads);
    }
  };

  for (const char* name : {"sgd", "adagrad", "adam"}) {
    ParameterBlock ref_block("x", kRows, kDim);
    ParameterBlock resumed_block("x", kRows, kDim);
    Rng init(5);
    ref_block.InitUniform(&init, -0.5f, 0.5f);
    std::copy(ref_block.Flat().begin(), ref_block.Flat().end(),
              resumed_block.Flat().begin());
    GradientBuffer ref_grads({&ref_block});
    GradientBuffer resumed_grads({&resumed_block});

    // Reference: uninterrupted run.
    auto ref_opt = MakeOptimizer(name, {&ref_block}, 0.05).value();
    Rng ref_rng(77);
    run_steps(ref_opt.get(), &ref_grads, &ref_rng, kTotalSteps);

    // Interrupted: run to the split, persist, reload into a FRESH
    // optimizer, finish with the identical gradient stream.
    auto first_opt = MakeOptimizer(name, {&resumed_block}, 0.05).value();
    Rng resumed_rng(77);
    run_steps(first_opt.get(), &resumed_grads, &resumed_rng, kSplitStep);
    {
      BinaryWriter writer;
      ASSERT_TRUE(writer.Open(path).ok());
      ASSERT_TRUE(first_opt->SaveState(&writer).ok());
      ASSERT_TRUE(writer.Close().ok());
    }
    auto second_opt = MakeOptimizer(name, {&resumed_block}, 0.999).value();
    {
      BinaryReader reader;
      ASSERT_TRUE(reader.Open(path).ok());
      ASSERT_TRUE(second_opt->LoadState(&reader).ok());
    }
    // LoadState restores the saved learning rate too.
    EXPECT_EQ(second_opt->learning_rate(), 0.05) << name;
    run_steps(second_opt.get(), &resumed_grads, &resumed_rng,
              kTotalSteps - kSplitStep);

    const auto ref_flat = ref_block.Flat();
    const auto resumed_flat = resumed_block.Flat();
    ASSERT_EQ(ref_flat.size(), resumed_flat.size());
    for (size_t i = 0; i < ref_flat.size(); ++i) {
      ASSERT_EQ(ref_flat[i], resumed_flat[i]) << name << " element " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(OptimizerTest, LoadStateRejectsWrongOptimizerKind) {
  ParameterBlock block("x", 2, 2);
  const std::string path = testing::TempDir() + "/opt_kind.bin";
  auto adam = MakeOptimizer("adam", {&block}, 0.1).value();
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(adam->SaveState(&writer).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto sgd = MakeOptimizer("sgd", {&block}, 0.1).value();
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  const Status status = sgd->LoadState(&reader);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ConstraintsTest, CollectTouchedRowsFiltersByBlock) {
  ParameterBlock a("a", 10, 2);
  ParameterBlock b("b", 10, 2);
  GradientBuffer grads({&a, &b});
  grads.GradFor(0, 3);
  grads.GradFor(0, 7);
  grads.GradFor(1, 5);
  std::vector<EntityId> touched;
  CollectTouchedRows(grads, 0, &touched);
  ASSERT_EQ(touched.size(), 2u);
  EXPECT_EQ(touched[0], 3);
  EXPECT_EQ(touched[1], 7);
}

TEST(ConstraintsTest, L2RegularizerLossAndGradient) {
  ParameterBlock block("x", 2, 2);
  block.Row(0)[0] = 3.0f;
  block.Row(0)[1] = 4.0f;
  GradientBuffer grads({&block});
  L2Regularizer reg(0.5);
  const std::vector<std::pair<size_t, int64_t>> rows = {{0, 0}};
  const double loss = reg.Accumulate(&grads, rows);
  // n_D = 2, loss = 0.5/2 * 25 = 6.25; grad = 2*0.5/2 * theta.
  EXPECT_NEAR(loss, 6.25, 1e-6);
  EXPECT_NEAR(grads.GradFor(0, 0)[0], 1.5f, 1e-6);
  EXPECT_NEAR(grads.GradFor(0, 0)[1], 2.0f, 1e-6);
}

TEST(ConstraintsTest, L2RegularizerZeroLambdaIsNoop) {
  ParameterBlock block("x", 1, 2);
  block.Row(0)[0] = 3.0f;
  GradientBuffer grads({&block});
  L2Regularizer reg(0.0);
  const std::vector<std::pair<size_t, int64_t>> rows = {{0, 0}};
  EXPECT_EQ(reg.Accumulate(&grads, rows), 0.0);
  EXPECT_EQ(grads.NumTouchedRows(), 0u);
}

}  // namespace
}  // namespace kge
