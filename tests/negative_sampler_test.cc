#include "kg/negative_sampler.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(NegativeSamplerTest, CorruptsExactlyOneSide) {
  NegativeSamplerOptions options;
  NegativeSampler sampler(100, 4, {}, options);
  Rng rng(1);
  const Triple positive{10, 20, 2};
  for (int i = 0; i < 1000; ++i) {
    const Triple negative = sampler.Sample(positive, &rng);
    EXPECT_EQ(negative.relation, positive.relation);
    const bool head_changed = negative.head != positive.head;
    const bool tail_changed = negative.tail != positive.tail;
    EXPECT_TRUE(head_changed != tail_changed);  // exactly one side
    EXPECT_NE(negative, positive);
    EXPECT_GE(negative.head, 0);
    EXPECT_LT(negative.head, 100);
    EXPECT_GE(negative.tail, 0);
    EXPECT_LT(negative.tail, 100);
  }
}

TEST(NegativeSamplerTest, UniformSideIsBalanced) {
  NegativeSamplerOptions options;
  NegativeSampler sampler(1000, 2, {}, options);
  Rng rng(2);
  const Triple positive{1, 2, 0};
  int head_corruptions = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    head_corruptions += sampler.Sample(positive, &rng).head != positive.head;
  }
  EXPECT_NEAR(head_corruptions / double(kDraws), 0.5, 0.02);
}

TEST(NegativeSamplerTest, SampleManyAppends) {
  NegativeSamplerOptions options;
  NegativeSampler sampler(50, 1, {}, options);
  Rng rng(3);
  std::vector<Triple> out;
  sampler.SampleMany({0, 1, 0}, 5, &rng, &out);
  sampler.SampleMany({2, 3, 0}, 5, &rng, &out);
  EXPECT_EQ(out.size(), 10u);
}

TEST(NegativeSamplerTest, BernoulliFavorsHeadCorruptionForOneToMany) {
  // Relation 0 is 1-N (each head has many tails): tph >> hpt, so the head
  // should be corrupted with probability tph/(tph+hpt) > 0.5.
  std::vector<Triple> train;
  for (EntityId tail = 1; tail <= 9; ++tail) train.push_back({0, tail, 0});
  NegativeSamplerOptions options;
  options.side = CorruptionSide::kBernoulli;
  NegativeSampler sampler(20, 1, train, options);
  EXPECT_GT(sampler.HeadCorruptionProbability(0), 0.8);
}

TEST(NegativeSamplerTest, BernoulliFavorsTailCorruptionForManyToOne) {
  std::vector<Triple> train;
  for (EntityId head = 1; head <= 9; ++head) train.push_back({head, 0, 0});
  NegativeSamplerOptions options;
  options.side = CorruptionSide::kBernoulli;
  NegativeSampler sampler(20, 1, train, options);
  EXPECT_LT(sampler.HeadCorruptionProbability(0), 0.2);
}

TEST(NegativeSamplerTest, BernoulliBalancedForOneToOne) {
  std::vector<Triple> train = {{0, 1, 0}, {2, 3, 0}, {4, 5, 0}};
  NegativeSamplerOptions options;
  options.side = CorruptionSide::kBernoulli;
  NegativeSampler sampler(20, 1, train, options);
  EXPECT_NEAR(sampler.HeadCorruptionProbability(0), 0.5, 1e-9);
}

TEST(NegativeSamplerTest, UniformProbabilityIsHalf) {
  NegativeSamplerOptions options;
  NegativeSampler sampler(10, 3, {}, options);
  for (RelationId r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(sampler.HeadCorruptionProbability(r), 0.5);
  }
}

TEST(NegativeSamplerTest, RejectsKnownTriplesWhenFilterGiven) {
  // Entities {0, 1, 2}; all (0, t, 0) triples are known except t = 2.
  const std::vector<Triple> known = {{0, 0, 0}, {0, 1, 0}, {1, 2, 0},
                                     {2, 2, 0}};
  FilterIndex filter;
  filter.Build(known, {}, {});
  NegativeSamplerOptions options;
  options.reject_known = &filter;
  options.max_rejection_attempts = 64;
  NegativeSampler sampler(3, 1, {}, options);
  Rng rng(4);
  const Triple positive{0, 0, 0};
  for (int i = 0; i < 200; ++i) {
    const Triple negative = sampler.Sample(positive, &rng);
    EXPECT_FALSE(filter.Contains(negative))
        << "(" << negative.head << "," << negative.tail << ")";
  }
}

TEST(NegativeSamplerTest, DeterministicGivenSameRngSeed) {
  NegativeSamplerOptions options;
  NegativeSampler sampler(100, 1, {}, options);
  Rng rng1(7), rng2(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sampler.Sample({1, 2, 0}, &rng1),
              sampler.Sample({1, 2, 0}, &rng2));
  }
}

TEST(NegativeSamplerTest, TinyEntityCountStillTerminates) {
  NegativeSamplerOptions options;
  NegativeSampler sampler(2, 1, {}, options);
  Rng rng(8);
  const Triple positive{0, 1, 0};
  for (int i = 0; i < 100; ++i) {
    const Triple negative = sampler.Sample(positive, &rng);
    EXPECT_NE(negative, positive);
  }
}

}  // namespace
}  // namespace kge
