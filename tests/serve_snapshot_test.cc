// Serving snapshot lifecycle: the mmap checkpoint loader must agree
// bit-for-bit with the streaming loader, reject corruption, and the
// watcher must hot-swap good checkpoints and quarantine bad ones while
// the registry keeps serving the last good snapshot.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "models/checkpoint.h"
#include "models/model_factory.h"
#include "optim/optimizer.h"
#include "serve/mmap_checkpoint.h"
#include "serve/snapshot.h"
#include "train/train_checkpoint.h"
#include "util/io.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 12;
constexpr int32_t kRelations = 3;
constexpr int32_t kBudget = 8;

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  // TempDir persists across runs; scrub every file this suite creates.
  std::remove((dir + "/LATEST").c_str());
  for (int i = 0; i <= 10; ++i) {
    const std::string base = dir + "/ckpt_" + std::to_string(i) + ".kge2";
    std::remove(base.c_str());
    std::remove((base + ".quarantine").c_str());
  }
  return dir;
}

Result<std::unique_ptr<KgeModel>> MakeFreshModel(uint64_t seed) {
  return MakeModelByName("distmult", kEntities, kRelations, kBudget, seed);
}

ModelFactory FactoryWithSeed(uint64_t seed) {
  return [seed] { return MakeFreshModel(seed); };
}

std::string SaveCheckpointWithSeed(const std::string& path, uint64_t seed) {
  auto model = MakeFreshModel(seed);
  EXPECT_TRUE(model.ok());
  EXPECT_TRUE(SaveModelCheckpoint(**model, path).ok());
  return path;
}

void ExpectModelsEqual(const KgeModel& a, const KgeModel& b) {
  const auto blocks_a = a.Blocks();
  const auto blocks_b = b.Blocks();
  ASSERT_EQ(blocks_a.size(), blocks_b.size());
  for (size_t i = 0; i < blocks_a.size(); ++i) {
    const std::span<const float> flat_a = blocks_a[i]->Flat();
    const std::span<const float> flat_b = blocks_b[i]->Flat();
    ASSERT_EQ(flat_a.size(), flat_b.size());
    for (size_t j = 0; j < flat_a.size(); ++j) {
      ASSERT_EQ(flat_a[j], flat_b[j])
          << "block " << i << " element " << j;
    }
  }
}

TEST(MappedCheckpointTest, MatchesStreamingLoaderBitForBit) {
  const std::string path =
      SaveCheckpointWithSeed(testing::TempDir() + "/mmap_eq.kge2", 7);

  auto streamed = MakeFreshModel(99);
  ASSERT_TRUE(LoadModelCheckpoint(streamed->get(), path).ok());

  auto mapped_model = MakeFreshModel(99);
  Result<std::unique_ptr<MappedCheckpoint>> mapping =
      MappedCheckpoint::Open(path);
  ASSERT_TRUE(mapping.ok());
  ASSERT_TRUE((*mapping)->LoadInto(mapped_model->get()).ok());

  ExpectModelsEqual(**streamed, **mapped_model);
  const int total = (*mapping)->borrowed_blocks() + (*mapping)->copied_blocks();
  EXPECT_EQ(size_t(total), (*mapped_model)->Blocks().size());
  std::remove(path.c_str());
}

TEST(MappedCheckpointTest, LoadsTrainingStateCheckpoints) {
  const std::string path = testing::TempDir() + "/mmap_train.kge2";
  auto model = MakeFreshModel(3);
  auto optimizer = MakeOptimizer("adam", (*model)->Blocks(), 1e-3);
  ASSERT_TRUE(optimizer.ok());
  TrainingState state;
  state.trainer_kind = "negative_sampling";
  state.seed = 11;
  state.epoch = 2;
  ASSERT_TRUE(SaveTrainingCheckpoint(**model, **optimizer, state, path).ok());

  auto serving = MakeFreshModel(55);
  Result<std::unique_ptr<MappedCheckpoint>> mapping =
      MappedCheckpoint::Open(path);
  ASSERT_TRUE(mapping.ok());
  ASSERT_TRUE((*mapping)->LoadInto(serving->get()).ok());
  ExpectModelsEqual(**model, **serving);
  std::remove(path.c_str());
}

TEST(MappedCheckpointTest, RejectsCorruptionAnywhere) {
  const std::string path =
      SaveCheckpointWithSeed(testing::TempDir() + "/mmap_corrupt.kge2", 5);
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());

  // Flip one byte at a spread of offsets (header, name, payload, CRC).
  for (const size_t offset :
       {size_t(0), size_t(5), size_t(13), bytes->size() / 2,
        bytes->size() - 2}) {
    std::string mutated = *bytes;
    mutated[offset] = char(mutated[offset] ^ 0x20);
    const std::string probe = testing::TempDir() + "/mmap_probe.kge2";
    ASSERT_TRUE(WriteStringToFile(probe, mutated).ok());
    auto model = MakeFreshModel(1);
    Result<std::unique_ptr<MappedCheckpoint>> mapping =
        MappedCheckpoint::Open(probe);
    ASSERT_TRUE(mapping.ok());
    EXPECT_FALSE((*mapping)->LoadInto(model->get()).ok())
        << "accepted corruption at offset " << offset;
    std::remove(probe.c_str());
  }

  // Truncations, including an empty file (Open itself must reject it).
  for (const size_t keep : {size_t(0), size_t(3), size_t(20),
                            bytes->size() - 1}) {
    const std::string probe = testing::TempDir() + "/mmap_trunc.kge2";
    ASSERT_TRUE(WriteStringToFile(probe, bytes->substr(0, keep)).ok());
    auto model = MakeFreshModel(1);
    Result<std::unique_ptr<MappedCheckpoint>> mapping =
        MappedCheckpoint::Open(probe);
    if (mapping.ok()) {
      EXPECT_FALSE((*mapping)->LoadInto(model->get()).ok())
          << "accepted truncation to " << keep;
    }
    std::remove(probe.c_str());
  }
  std::remove(path.c_str());
}

TEST(MappedCheckpointTest, RejectsWrongModelAndShape) {
  const std::string path =
      SaveCheckpointWithSeed(testing::TempDir() + "/mmap_shape.kge2", 5);
  auto other = MakeModelByName("complex", kEntities, kRelations, kBudget, 5);
  Result<std::unique_ptr<MappedCheckpoint>> mapping =
      MappedCheckpoint::Open(path);
  ASSERT_TRUE(mapping.ok());
  EXPECT_FALSE((*mapping)->LoadInto(other->get()).ok());

  auto bigger = MakeModelByName("distmult", kEntities * 2, kRelations,
                                kBudget, 5);
  Result<std::unique_ptr<MappedCheckpoint>> mapping2 =
      MappedCheckpoint::Open(path);
  ASSERT_TRUE(mapping2.ok());
  EXPECT_FALSE((*mapping2)->LoadInto(bigger->get()).ok());
  std::remove(path.c_str());
}

TEST(ParameterBlockTest, BorrowStorageRedirectsReadsAndWrites) {
  ParameterBlock block("b", 2, 3);
  std::vector<float> backing(6, 0.5f);
  block.BorrowStorage(backing.data(), int64_t(backing.size()));
  EXPECT_TRUE(block.borrows_storage());
  EXPECT_EQ(block.Flat().data(), backing.data());
  block.Row(1)[2] = 9.0f;
  EXPECT_EQ(backing[5], 9.0f);
  const uint64_t before = block.generation();
  block.Zero();
  EXPECT_EQ(backing[0], 0.0f);
  EXPECT_GT(block.generation(), before);
}

TEST(SnapshotRegistryTest, PublishStampsMonotoneVersions) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Acquire(), nullptr);
  EXPECT_EQ(registry.current_version(), 0u);

  auto first = std::make_shared<ModelSnapshot>();
  registry.Publish(first);
  const auto acquired_first = registry.Acquire();
  ASSERT_NE(acquired_first, nullptr);
  EXPECT_EQ(acquired_first->version, 1u);

  auto second = std::make_shared<ModelSnapshot>();
  registry.Publish(second);
  EXPECT_EQ(registry.current_version(), 2u);
  // The old acquisition stays valid and unchanged (RCU property).
  EXPECT_EQ(acquired_first->version, 1u);
  EXPECT_EQ(registry.Acquire()->version, 2u);
}

TEST(LoadServingSnapshotTest, BuildsScoringReadySnapshot) {
  const std::string path =
      SaveCheckpointWithSeed(testing::TempDir() + "/snap_build.kge2", 21);
  Result<std::shared_ptr<ModelSnapshot>> snapshot = LoadServingSnapshot(
      path, FactoryWithSeed(0),
      {ScorePrecision::kDouble, ScorePrecision::kFloat32});
  ASSERT_TRUE(snapshot.ok());
  ASSERT_NE((*snapshot)->model, nullptr);
  EXPECT_EQ((*snapshot)->source_path, path);

  auto reference = MakeFreshModel(0);
  ASSERT_TRUE(LoadModelCheckpoint(reference->get(), path).ok());
  ExpectModelsEqual(**reference, *(*snapshot)->model);
  std::remove(path.c_str());
}

TEST(CheckpointWatcherTest, InitialLoadSwapAndQuarantine) {
  const std::string dir = TempDirFor("watcher_basic");
  SaveCheckpointWithSeed(dir + "/ckpt_1.kge2", 1);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_1.kge2\n").ok());

  SnapshotRegistry registry;
  CheckpointWatcher watcher(&registry, FactoryWithSeed(0),
                            {dir, 10, {ScorePrecision::kDouble}});
  ASSERT_TRUE(watcher.LoadInitial().ok());
  EXPECT_EQ(registry.current_version(), 1u);

  // New checkpoint appears: one poll swaps to it.
  SaveCheckpointWithSeed(dir + "/ckpt_2.kge2", 2);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_2.kge2\n").ok());
  watcher.PollOnce();
  EXPECT_EQ(registry.current_version(), 2u);
  EXPECT_EQ(registry.Acquire()->source_path, dir + "/ckpt_2.kge2");

  // Unchanged LATEST: polls are no-ops, no churn.
  watcher.PollOnce();
  EXPECT_EQ(registry.current_version(), 2u);

  // Corrupt checkpoint: quarantined, registry untouched.
  SaveCheckpointWithSeed(dir + "/ckpt_3.kge2", 3);
  {
    Result<std::string> bytes = ReadFileToString(dir + "/ckpt_3.kge2");
    ASSERT_TRUE(bytes.ok());
    std::string mutated = *bytes;
    mutated[mutated.size() / 2] =
        char(mutated[mutated.size() / 2] ^ 0x01);
    ASSERT_TRUE(WriteStringToFile(dir + "/ckpt_3.kge2", mutated).ok());
  }
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_3.kge2\n").ok());
  watcher.PollOnce();
  EXPECT_EQ(registry.current_version(), 2u);
  EXPECT_TRUE(FileExists(dir + "/ckpt_3.kge2.quarantine"));
  EXPECT_FALSE(FileExists(dir + "/ckpt_3.kge2"));
  EXPECT_EQ(watcher.stats().quarantines, 1u);
  EXPECT_EQ(watcher.stats().swaps, 2u);

  // LATEST pointing at a missing file: ignored.
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_9.kge2\n").ok());
  watcher.PollOnce();
  EXPECT_EQ(registry.current_version(), 2u);
}

TEST(CheckpointWatcherTest, InitialLoadFallsBackPastCorruptLatest) {
  const std::string dir = TempDirFor("watcher_fallback");
  SaveCheckpointWithSeed(dir + "/ckpt_1.kge2", 1);
  // Newest checkpoint is torn (simulates dying mid-write + LATEST
  // updated first / partially): startup must quarantine it and resume
  // from the older CRC-valid file.
  SaveCheckpointWithSeed(dir + "/ckpt_2.kge2", 2);
  {
    Result<std::string> bytes = ReadFileToString(dir + "/ckpt_2.kge2");
    ASSERT_TRUE(bytes.ok());
    ASSERT_TRUE(WriteStringToFile(dir + "/ckpt_2.kge2",
                                  bytes->substr(0, bytes->size() / 2))
                    .ok());
  }
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_2.kge2\n").ok());

  SnapshotRegistry registry;
  CheckpointWatcher watcher(&registry, FactoryWithSeed(0),
                            {dir, 10, {ScorePrecision::kDouble}});
  ASSERT_TRUE(watcher.LoadInitial().ok());
  EXPECT_EQ(registry.current_version(), 1u);
  EXPECT_EQ(registry.Acquire()->source_path, dir + "/ckpt_1.kge2");
  EXPECT_TRUE(FileExists(dir + "/ckpt_2.kge2.quarantine"));
  EXPECT_GE(watcher.stats().failed_loads, 1u);
}

TEST(CheckpointWatcherTest, LoadInitialFailsCleanlyOnEmptyDir) {
  const std::string dir = TempDirFor("watcher_empty");
  SnapshotRegistry registry;
  CheckpointWatcher watcher(&registry, FactoryWithSeed(0),
                            {dir, 10, {ScorePrecision::kDouble}});
  EXPECT_FALSE(watcher.LoadInitial().ok());
  EXPECT_EQ(registry.current_version(), 0u);
}

TEST(FindNewestValidCheckpointTest, SkipsCorruptNewest) {
  const std::string dir = TempDirFor("newest_valid");
  SaveCheckpointWithSeed(dir + "/ckpt_3.kge2", 3);
  SaveCheckpointWithSeed(dir + "/ckpt_10.kge2", 10);
  {
    Result<std::string> bytes = ReadFileToString(dir + "/ckpt_10.kge2");
    ASSERT_TRUE(bytes.ok());
    std::string mutated = *bytes;
    mutated[4] = char(mutated[4] ^ 0xFF);
    ASSERT_TRUE(WriteStringToFile(dir + "/ckpt_10.kge2", mutated).ok());
  }
  Result<std::string> newest = FindNewestValidCheckpoint(dir);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(*newest, dir + "/ckpt_3.kge2");
}

}  // namespace
}  // namespace kge
