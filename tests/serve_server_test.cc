// Socket-level end-to-end tests for kge_serve's server: protocol
// round trips against a live listener, hostile-frame survival, real
// checkpoint hot-swap + quarantine while serving, and the serve-side
// failpoint crash/corruption matrix (KGE_FAILPOINTS builds): the server
// keeps answering from the last good snapshot on injected errors and
// dies without leaving torn state on injected crashes.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "eval/topk.h"
#include "models/checkpoint.h"
#include "models/model_factory.h"
#include "serve/micro_batcher.h"
#include "serve/serve_protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/failpoint.h"
#include "util/io.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 24;
constexpr int32_t kRelations = 2;
constexpr int32_t kBudget = 8;

Result<std::unique_ptr<KgeModel>> MakeFreshModel(uint64_t seed) {
  return MakeModelByName("distmult", kEntities, kRelations, kBudget, seed);
}

ModelFactory ServingFactory() {
  return [] { return MakeFreshModel(0); };
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/LATEST").c_str());
  for (int i = 0; i <= 5; ++i) {
    const std::string base = dir + "/ckpt_" + std::to_string(i) + ".kge2";
    std::remove(base.c_str());
    std::remove((base + ".quarantine").c_str());
  }
  return dir;
}

void SaveCheckpointWithSeed(const std::string& path, uint64_t seed) {
  auto model = MakeFreshModel(seed);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(SaveModelCheckpoint(**model, path).ok());
}

// Everything a serving test needs, wired the way tools/kge_serve.cc
// wires it: registry <- watcher, registry -> batcher -> server.
struct ServeStack {
  SnapshotRegistry registry;
  std::unique_ptr<CheckpointWatcher> watcher;
  std::unique_ptr<MicroBatcher> batcher;
  std::unique_ptr<KgeServer> server;

  Status StartFromDir(const std::string& dir) {
    watcher = std::make_unique<CheckpointWatcher>(
        &registry, ServingFactory(),
        CheckpointWatcher::Options{dir, 10, {ScorePrecision::kDouble}});
    const Status loaded = watcher->LoadInitial();
    if (!loaded.ok()) return loaded;
    BatcherOptions options;
    options.default_deadline_ms = kServeMaxDeadlineMs;
    batcher = std::make_unique<MicroBatcher>(&registry, options);
    batcher->Start();
    server = std::make_unique<KgeServer>(batcher.get(), ServerOptions{});
    return server->Start();
  }

  ~ServeStack() {
    if (server != nullptr) server->Stop();
    if (batcher != nullptr) batcher->Stop();
  }
};

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(uint16_t(port));
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

bool SendRequest(int fd, const ServeRequest& request) {
  std::vector<uint8_t> frame(kRequestFrameBytes);
  if (EncodeServeRequest(request, frame) == 0) return false;
  return WriteAll(fd, frame.data(), frame.size());
}

// Reads one response frame; false on EOF/garbage.
bool ReadResponse(int fd, ServeResponseHeader* header,
                  std::vector<ScoredEntity>* results) {
  std::vector<uint8_t> buffer(MaxResponseFrameBytes(kServeMaxTopK));
  if (!ReadExact(fd, buffer.data(), kFrameHeaderBytes)) return false;
  uint32_t magic = 0;
  uint32_t body_len = 0;
  DecodeFrameHeader(
      std::span<const uint8_t>(buffer.data(), kFrameHeaderBytes), &magic,
      &body_len);
  if (magic != kServeResponseMagic ||
      body_len > buffer.size() - kFrameHeaderBytes) {
    return false;
  }
  if (!ReadExact(fd, buffer.data() + kFrameHeaderBytes, body_len)) {
    return false;
  }
  return DecodeServeResponseFrame(
             std::span<const uint8_t>(buffer.data(),
                                      kFrameHeaderBytes + body_len),
             header, results)
      .ok();
}

ServeRequest TailQuery(EntityId entity, RelationId relation, uint32_t k,
                       uint64_t request_id) {
  ServeRequest request;
  request.side = QuerySide::kTail;
  request.entity = entity;
  request.relation = relation;
  request.k = k;
  request.request_id = request_id;
  return request;
}

TEST(KgeServerTest, EndToEndMatchesOfflinePredictor) {
  const std::string dir = TempDirFor("server_e2e");
  SaveCheckpointWithSeed(dir + "/ckpt_1.kge2", 31);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_1.kge2\n").ok());

  ServeStack stack;
  ASSERT_TRUE(stack.StartFromDir(dir).ok());
  const int fd = ConnectTo(stack.server->port());

  const auto snapshot = stack.registry.Acquire();
  TopKOptions options;
  options.k = 4;
  for (EntityId entity = 0; entity < 3; ++entity) {
    ASSERT_TRUE(SendRequest(fd, TailQuery(entity, 1, 4, uint64_t(entity))));
    ServeResponseHeader header;
    std::vector<ScoredEntity> results;
    ASSERT_TRUE(ReadResponse(fd, &header, &results));
    EXPECT_EQ(header.status, ServeStatusCode::kOk);
    EXPECT_EQ(header.request_id, uint64_t(entity));
    EXPECT_EQ(header.snapshot_version, 1u);
    const std::vector<ScoredEntity> expected =
        PredictTails(*snapshot->model, entity, 1, options);
    ASSERT_EQ(results.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(results[i].entity, expected[i].entity);
      EXPECT_FLOAT_EQ(results[i].score, expected[i].score);
    }
  }
  ::close(fd);
}

TEST(KgeServerTest, HostileHeaderGetsInvalidAndServerSurvives) {
  const std::string dir = TempDirFor("server_hostile");
  SaveCheckpointWithSeed(dir + "/ckpt_1.kge2", 5);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_1.kge2\n").ok());
  ServeStack stack;
  ASSERT_TRUE(stack.StartFromDir(dir).ok());

  // Bad magic and a hostile body length: the server must answer INVALID
  // from its fixed buffer (never allocating the claimed length) and
  // close the connection.
  {
    const int fd = ConnectTo(stack.server->port());
    uint8_t hostile[kFrameHeaderBytes];
    const uint32_t bad_magic = 0x41414141;
    const uint32_t huge_len = 0x7FFFFFFF;
    std::memcpy(hostile, &bad_magic, 4);
    std::memcpy(hostile + 4, &huge_len, 4);
    ASSERT_TRUE(WriteAll(fd, hostile, sizeof(hostile)));
    ServeResponseHeader header;
    std::vector<ScoredEntity> results;
    if (ReadResponse(fd, &header, &results)) {
      EXPECT_EQ(header.status, ServeStatusCode::kInvalid);
    }
    // Connection is closed afterwards.
    uint8_t byte = 0;
    EXPECT_FALSE(ReadExact(fd, &byte, 1));
    ::close(fd);
  }

  // Correct header, malformed body (reserved bits): INVALID, but the
  // frame boundary is intact so the connection keeps serving.
  {
    const int fd = ConnectTo(stack.server->port());
    std::vector<uint8_t> frame(kRequestFrameBytes);
    ASSERT_NE(EncodeServeRequest(TailQuery(1, 1, 3, 77), frame), 0u);
    frame[10] = 0xFF;  // reserved bytes must be zero
    ASSERT_TRUE(WriteAll(fd, frame.data(), frame.size()));
    ServeResponseHeader header;
    std::vector<ScoredEntity> results;
    ASSERT_TRUE(ReadResponse(fd, &header, &results));
    EXPECT_EQ(header.status, ServeStatusCode::kInvalid);
    EXPECT_EQ(header.request_id, 77u);

    ASSERT_TRUE(SendRequest(fd, TailQuery(1, 1, 3, 78)));
    results.clear();
    ASSERT_TRUE(ReadResponse(fd, &header, &results));
    EXPECT_EQ(header.status, ServeStatusCode::kOk);
    EXPECT_EQ(header.request_id, 78u);
    ::close(fd);
  }
  EXPECT_GE(stack.server->stats().protocol_errors, 2u);

  // Truncated frame then EOF: the connection thread just closes.
  {
    const int fd = ConnectTo(stack.server->port());
    const uint8_t partial[3] = {1, 2, 3};
    ASSERT_TRUE(WriteAll(fd, partial, sizeof(partial)));
    ::close(fd);
  }

  // The server still accepts and answers.
  const int fd = ConnectTo(stack.server->port());
  ASSERT_TRUE(SendRequest(fd, TailQuery(0, 0, 2, 9)));
  ServeResponseHeader header;
  std::vector<ScoredEntity> results;
  ASSERT_TRUE(ReadResponse(fd, &header, &results));
  EXPECT_EQ(header.status, ServeStatusCode::kOk);
  ::close(fd);
}

TEST(KgeServerTest, HotSwapAndQuarantineWhileServing) {
  const std::string dir = TempDirFor("server_swap");
  SaveCheckpointWithSeed(dir + "/ckpt_1.kge2", 1);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_1.kge2\n").ok());
  ServeStack stack;
  ASSERT_TRUE(stack.StartFromDir(dir).ok());
  const int fd = ConnectTo(stack.server->port());

  ServeResponseHeader header;
  std::vector<ScoredEntity> results;
  ASSERT_TRUE(SendRequest(fd, TailQuery(2, 0, 3, 1)));
  ASSERT_TRUE(ReadResponse(fd, &header, &results));
  EXPECT_EQ(header.snapshot_version, 1u);

  // Publish a new checkpoint; one poll step swaps the live server.
  SaveCheckpointWithSeed(dir + "/ckpt_2.kge2", 2);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_2.kge2\n").ok());
  stack.watcher->PollOnce();

  auto reference = MakeFreshModel(0);
  ASSERT_TRUE(
      LoadModelCheckpoint(reference->get(), dir + "/ckpt_2.kge2").ok());
  TopKOptions options;
  options.k = 3;
  const std::vector<ScoredEntity> expected =
      PredictTails(**reference, 2, 0, options);

  results.clear();
  ASSERT_TRUE(SendRequest(fd, TailQuery(2, 0, 3, 2)));
  ASSERT_TRUE(ReadResponse(fd, &header, &results));
  EXPECT_EQ(header.status, ServeStatusCode::kOk);
  EXPECT_EQ(header.snapshot_version, 2u);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(results[i].entity, expected[i].entity);
    EXPECT_FLOAT_EQ(results[i].score, expected[i].score);
  }

  // A corrupt "newer" checkpoint is quarantined and never served.
  SaveCheckpointWithSeed(dir + "/ckpt_3.kge2", 3);
  {
    Result<std::string> bytes = ReadFileToString(dir + "/ckpt_3.kge2");
    ASSERT_TRUE(bytes.ok());
    std::string mutated = *bytes;
    mutated[mutated.size() / 3] = char(mutated[mutated.size() / 3] ^ 0x10);
    ASSERT_TRUE(WriteStringToFile(dir + "/ckpt_3.kge2", mutated).ok());
  }
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_3.kge2\n").ok());
  stack.watcher->PollOnce();
  EXPECT_TRUE(FileExists(dir + "/ckpt_3.kge2.quarantine"));

  results.clear();
  ASSERT_TRUE(SendRequest(fd, TailQuery(2, 0, 3, 3)));
  ASSERT_TRUE(ReadResponse(fd, &header, &results));
  EXPECT_EQ(header.status, ServeStatusCode::kOk);
  EXPECT_EQ(header.snapshot_version, 2u);  // still the last good one
  ::close(fd);
}

TEST(KgeServerTest, StopWithIdleConnectionDoesNotWedge) {
  const std::string dir = TempDirFor("server_stop");
  SaveCheckpointWithSeed(dir + "/ckpt_1.kge2", 5);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_1.kge2\n").ok());
  auto stack = std::make_unique<ServeStack>();
  ASSERT_TRUE(stack->StartFromDir(dir).ok());
  // Open a connection and leave it idle; destruction must join every
  // thread without hanging (the test would time out otherwise).
  const int fd = ConnectTo(stack->server->port());
  stack.reset();
  ::close(fd);
}

// ---------------------------------------------------------------------
// Serve-side failpoint matrix (KGE_FAILPOINTS builds only).

class ServeFailpointTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::Enabled()) {
      GTEST_SKIP() << "build does not define KGE_FAILPOINTS";
    }
    failpoint::ClearAll();
  }
  void TearDown() override { failpoint::ClearAll(); }
};

// Injected errors at every load/swap site leave the last good snapshot
// serving; the poll path additionally quarantines the rejected target.
TEST_F(ServeFailpointTest, LoadAndSwapErrorsKeepLastGoodSnapshot) {
  const std::string dir = TempDirFor("fp_errors");
  SaveCheckpointWithSeed(dir + "/ckpt_1.kge2", 1);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_1.kge2\n").ok());

  SnapshotRegistry registry;
  CheckpointWatcher watcher(
      &registry, ServingFactory(),
      CheckpointWatcher::Options{dir, 10, {ScorePrecision::kDouble}});
  ASSERT_TRUE(watcher.LoadInitial().ok());
  ASSERT_EQ(registry.current_version(), 1u);

  for (const char* site :
       {"serve.load.map", "serve.load.verify", "serve.swap.publish"}) {
    SCOPED_TRACE(site);
    SaveCheckpointWithSeed(dir + "/ckpt_2.kge2", 2);
    ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_2.kge2\n").ok());
    ASSERT_TRUE(failpoint::Set(site, "error@1").ok());
    watcher.PollOnce();
    // Swap failed: still on the original snapshot, and the target was
    // taken out of rotation.
    EXPECT_EQ(registry.current_version(), 1u);
    EXPECT_TRUE(FileExists(dir + "/ckpt_2.kge2.quarantine"));
    std::remove((dir + "/ckpt_2.kge2.quarantine").c_str());
    failpoint::ClearAll();
  }

  // With no failpoint armed the same flow swaps fine.
  SaveCheckpointWithSeed(dir + "/ckpt_2.kge2", 2);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_2.kge2\n").ok());
  watcher.PollOnce();
  EXPECT_EQ(registry.current_version(), 2u);
}

// A response-write error drops that connection but the server keeps
// accepting and answering.
TEST_F(ServeFailpointTest, RespondWriteErrorDropsOnlyThatConnection) {
  const std::string dir = TempDirFor("fp_respond");
  SaveCheckpointWithSeed(dir + "/ckpt_1.kge2", 1);
  ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_1.kge2\n").ok());
  ServeStack stack;
  ASSERT_TRUE(stack.StartFromDir(dir).ok());

  ASSERT_TRUE(failpoint::Set("serve.respond.write", "error@1").ok());
  {
    const int fd = ConnectTo(stack.server->port());
    ASSERT_TRUE(SendRequest(fd, TailQuery(0, 0, 2, 1)));
    ServeResponseHeader header;
    std::vector<ScoredEntity> results;
    EXPECT_FALSE(ReadResponse(fd, &header, &results));  // dropped
    ::close(fd);
  }
  failpoint::ClearAll();
  const int fd = ConnectTo(stack.server->port());
  ASSERT_TRUE(SendRequest(fd, TailQuery(0, 0, 2, 2)));
  ServeResponseHeader header;
  std::vector<ScoredEntity> results;
  ASSERT_TRUE(ReadResponse(fd, &header, &results));
  EXPECT_EQ(header.status, ServeStatusCode::kOk);
  ::close(fd);
}

// Crash matrix: dying at any serve site must not corrupt the
// checkpoint directory — a restarted server resumes from the last
// CRC-valid checkpoint and answers queries.
TEST_F(ServeFailpointTest, CrashAtEverySiteLeavesRestartableState) {
  for (const std::string& site : failpoint::KnownSites()) {
    if (site.rfind("serve.", 0) != 0) continue;
    SCOPED_TRACE("site " + site);
    const std::string dir = TempDirFor("fp_crash_" + site);
    SaveCheckpointWithSeed(dir + "/ckpt_1.kge2", 1);
    ASSERT_TRUE(WriteStringToFile(dir + "/LATEST", "ckpt_1.kge2\n").ok());

    auto run_child = [&]() {
      ASSERT_TRUE(failpoint::Set(site, "crash@1").ok());
      ServeStack stack;
      const Status started = stack.StartFromDir(dir);
      // Load/swap crash sites die inside StartFromDir; the respond
      // site needs a query through the socket.
      if (started.ok()) {
        const int fd = ConnectTo(stack.server->port());
        SendRequest(fd, TailQuery(0, 0, 2, 1));
        ServeResponseHeader header;
        std::vector<ScoredEntity> results;
        ReadResponse(fd, &header, &results);
        ::close(fd);
      }
    };
    EXPECT_EXIT(run_child(),
                testing::ExitedWithCode(failpoint::kFailpointExitCode),
                "failpoint");

    // Restart after the crash: the directory still serves.
    ServeStack restarted;
    ASSERT_TRUE(restarted.StartFromDir(dir).ok());
    const int fd = ConnectTo(restarted.server->port());
    ASSERT_TRUE(SendRequest(fd, TailQuery(0, 0, 2, 1)));
    ServeResponseHeader header;
    std::vector<ScoredEntity> results;
    ASSERT_TRUE(ReadResponse(fd, &header, &results));
    EXPECT_EQ(header.status, ServeStatusCode::kOk);
    ::close(fd);
  }
}

}  // namespace
}  // namespace kge
