#include "train/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kge {
namespace {

TEST(LossTest, ZeroScoreGivesLog2) {
  EXPECT_NEAR(LogisticLoss(0.0, 1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogisticLoss(0.0, -1.0), std::log(2.0), 1e-12);
}

TEST(LossTest, ConfidentCorrectPredictionsHaveLowLoss) {
  EXPECT_LT(LogisticLoss(10.0, 1.0), 1e-4);
  EXPECT_LT(LogisticLoss(-10.0, -1.0), 1e-4);
}

TEST(LossTest, ConfidentWrongPredictionsHaveHighLoss) {
  EXPECT_GT(LogisticLoss(-10.0, 1.0), 9.0);
  EXPECT_GT(LogisticLoss(10.0, -1.0), 9.0);
}

TEST(LossTest, LossIsSymmetricUnderLabelScoreFlip) {
  for (double s : {-3.0, -1.0, 0.5, 2.0}) {
    EXPECT_NEAR(LogisticLoss(s, 1.0), LogisticLoss(-s, -1.0), 1e-12);
  }
}

TEST(LossTest, GradientMatchesFiniteDifference) {
  for (double label : {1.0, -1.0}) {
    for (double s : {-4.0, -1.0, 0.0, 0.3, 2.0, 5.0}) {
      const double h = 1e-6;
      const double numeric =
          (LogisticLoss(s + h, label) - LogisticLoss(s - h, label)) / (2 * h);
      EXPECT_NEAR(LogisticLossGradient(s, label), numeric, 1e-6)
          << "s=" << s << " y=" << label;
    }
  }
}

TEST(LossTest, GradientSigns) {
  // Positive label: loss decreases as score increases => negative grad.
  EXPECT_LT(LogisticLossGradient(0.0, 1.0), 0.0);
  EXPECT_GT(LogisticLossGradient(0.0, -1.0), 0.0);
}

TEST(LossTest, GradientMagnitudeBoundedByOne) {
  for (double s : {-100.0, -1.0, 0.0, 1.0, 100.0}) {
    EXPECT_LE(std::fabs(LogisticLossGradient(s, 1.0)), 1.0);
    EXPECT_LE(std::fabs(LogisticLossGradient(s, -1.0)), 1.0);
  }
}

TEST(LossTest, StableForExtremeScores) {
  EXPECT_TRUE(std::isfinite(LogisticLoss(1e30, -1.0)));
  EXPECT_TRUE(std::isfinite(LogisticLossGradient(1e30, -1.0)));
  EXPECT_TRUE(std::isfinite(LogisticLoss(-1e30, 1.0)));
}

TEST(LossTest, PredictedProbability) {
  EXPECT_DOUBLE_EQ(PredictedProbability(0.0), 0.5);
  EXPECT_GT(PredictedProbability(3.0), 0.95);
  EXPECT_LT(PredictedProbability(-3.0), 0.05);
}

TEST(MarginLossTest, ZeroWhenMarginSatisfied) {
  EXPECT_DOUBLE_EQ(MarginRankingLoss(5.0, 1.0, 1.0), 0.0);
  EXPECT_FALSE(MarginIsViolated(5.0, 1.0, 1.0));
}

TEST(MarginLossTest, LinearInsideMargin) {
  // pos 1, neg 0.5, margin 1: violation = 1 - 1 + 0.5 = 0.5.
  EXPECT_DOUBLE_EQ(MarginRankingLoss(1.0, 0.5, 1.0), 0.5);
  EXPECT_TRUE(MarginIsViolated(1.0, 0.5, 1.0));
}

TEST(MarginLossTest, ExactBoundaryIsNotViolated) {
  EXPECT_DOUBLE_EQ(MarginRankingLoss(2.0, 1.0, 1.0), 0.0);
  EXPECT_FALSE(MarginIsViolated(2.0, 1.0, 1.0));
}

TEST(MarginLossTest, WrongOrderingPenalizedByGap) {
  EXPECT_DOUBLE_EQ(MarginRankingLoss(-1.0, 1.0, 1.0), 3.0);
}

TEST(MarginLossTest, ZeroMarginReducesToOrderingTest) {
  EXPECT_DOUBLE_EQ(MarginRankingLoss(1.0, 0.5, 0.0), 0.0);
  EXPECT_GT(MarginRankingLoss(0.5, 1.0, 0.0), 0.0);
}

}  // namespace
}  // namespace kge
