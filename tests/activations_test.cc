#include "math/activations.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace kge {
namespace {

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(Sigmoid(-2.0), 1.0 - Sigmoid(2.0), 1e-12);
}

TEST(SigmoidTest, StableForExtremeInputs) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(Sigmoid(1e308)));
  EXPECT_FALSE(std::isnan(Sigmoid(-1e308)));
}

TEST(SoftplusTest, KnownValues) {
  EXPECT_NEAR(Softplus(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(Softplus(1.0), std::log(1.0 + std::exp(1.0)), 1e-12);
}

TEST(SoftplusTest, StableForExtremeInputs) {
  EXPECT_NEAR(Softplus(1000.0), 1000.0, 1e-9);
  EXPECT_NEAR(Softplus(-1000.0), 0.0, 1e-12);
}

TEST(SoftplusTest, RelatesToSigmoid) {
  // softplus'(x) = sigmoid(x); check by finite differences.
  for (double x : {-3.0, -0.5, 0.0, 0.7, 4.0}) {
    const double h = 1e-6;
    const double numeric = (Softplus(x + h) - Softplus(x - h)) / (2 * h);
    EXPECT_NEAR(numeric, Sigmoid(x), 1e-6);
  }
}

TEST(DerivFromOutputTest, TanhMatchesFiniteDifference) {
  for (double x : {-2.0, -0.3, 0.0, 0.9, 2.5}) {
    const double h = 1e-6;
    const double numeric = (std::tanh(x + h) - std::tanh(x - h)) / (2 * h);
    EXPECT_NEAR(TanhDerivFromOutput(std::tanh(x)), numeric, 1e-6);
  }
}

TEST(DerivFromOutputTest, SigmoidMatchesFiniteDifference) {
  for (double x : {-2.0, -0.3, 0.0, 0.9, 2.5}) {
    const double h = 1e-6;
    const double numeric = (Sigmoid(x + h) - Sigmoid(x - h)) / (2 * h);
    EXPECT_NEAR(SigmoidDerivFromOutput(Sigmoid(x)), numeric, 1e-6);
  }
}

TEST(SoftmaxTest, SumsToOneAndPositive) {
  const std::vector<double> in = {1.0, 2.0, -1.0, 0.5};
  std::vector<double> out(in.size());
  Softmax(in, out);
  double sum = 0.0;
  for (double y : out) {
    EXPECT_GT(y, 0.0);
    sum += y;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SoftmaxTest, PreservesOrdering) {
  const std::vector<double> in = {3.0, 1.0, 2.0};
  std::vector<double> out(3);
  Softmax(in, out);
  EXPECT_GT(out[0], out[2]);
  EXPECT_GT(out[2], out[1]);
}

TEST(SoftmaxTest, InvariantToConstantShift) {
  const std::vector<double> in = {0.1, 0.2, 0.3};
  std::vector<double> shifted = {100.1, 100.2, 100.3};
  std::vector<double> out1(3), out2(3);
  Softmax(in, out1);
  Softmax(shifted, out2);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(out1[i], out2[i], 1e-12);
}

TEST(SoftmaxTest, StableForLargeInputs) {
  const std::vector<double> in = {1e300, 1e300};
  std::vector<double> out(2);
  Softmax(in, out);
  EXPECT_NEAR(out[0], 0.5, 1e-12);
}

TEST(SoftmaxTest, UniformInputGivesUniformOutput) {
  const std::vector<double> in(8, 1.0);
  std::vector<double> out(8);
  Softmax(in, out);
  for (double y : out) EXPECT_NEAR(y, 0.125, 1e-12);
}

// Parameterized finite-difference check of SoftmaxBackward.
class SoftmaxBackwardTest : public testing::TestWithParam<int> {};

TEST_P(SoftmaxBackwardTest, MatchesFiniteDifferenceJvp) {
  const size_t n = size_t(GetParam());
  Rng rng{uint64_t(n)};
  std::vector<double> x(n), g(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.NextUniform(-2, 2);
    g[i] = rng.NextUniform(-1, 1);
  }
  std::vector<double> y(n), analytic(n);
  Softmax(x, y);
  SoftmaxBackward(y, g, analytic);

  const double h = 1e-6;
  for (size_t i = 0; i < n; ++i) {
    // dL/dx_i where L = Σ_j g_j * softmax(x)_j.
    std::vector<double> x_plus = x, x_minus = x;
    x_plus[i] += h;
    x_minus[i] -= h;
    std::vector<double> y_plus(n), y_minus(n);
    Softmax(x_plus, y_plus);
    Softmax(x_minus, y_minus);
    double l_plus = 0.0, l_minus = 0.0;
    for (size_t j = 0; j < n; ++j) {
      l_plus += g[j] * y_plus[j];
      l_minus += g[j] * y_minus[j];
    }
    EXPECT_NEAR(analytic[i], (l_plus - l_minus) / (2 * h), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoftmaxBackwardTest,
                         testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace kge
