#include "eval/topk.h"

#include <gtest/gtest.h>

#include "models/trilinear_models.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 20;
constexpr int32_t kRelations = 2;

// Model whose tail score for (h, ?, r) is simply -(tail id), making
// rankings predictable: entity 0 best, 1 next, etc.
class DescendingModel : public KgeModel {
 public:
  DescendingModel() : name_("Desc") {}
  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return kEntities; }
  int32_t num_relations() const override { return kRelations; }
  double Score(const Triple& t) const override { return -double(t.tail); }
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override {
    for (EntityId t = 0; t < kEntities; ++t)
      out[size_t(t)] = float(Score({head, t, relation}));
  }
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override {
    for (EntityId h = 0; h < kEntities; ++h)
      out[size_t(h)] = float(-h);
    (void)tail, (void)relation;
  }
  std::vector<ParameterBlock*> Blocks() override { return {}; }
  void AccumulateGradients(const Triple&, float, GradientBuffer*) override {}
  void NormalizeEntities(std::span<const EntityId>) override {}
  void InitParameters(uint64_t) override {}

 private:
  std::string name_;
};

// Model with grouped ties: tails 0..3 share the best score, 4..7 the
// next, and so on — exercises id tie-breaking inside each tied group.
class GroupedTieModel : public DescendingModel {
 public:
  double Score(const Triple& t) const override {
    return -double(t.tail / 4);
  }
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override {
    for (EntityId t = 0; t < kEntities; ++t)
      out[size_t(t)] = float(Score({head, t, relation}));
  }
};

TEST(TopKTest, ReturnsBestFirstWithoutFilter) {
  DescendingModel model;
  TopKOptions options;
  options.k = 3;
  const auto top = PredictTails(model, 0, 0, options);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].entity, 0);
  EXPECT_EQ(top[1].entity, 1);
  EXPECT_EQ(top[2].entity, 2);
  EXPECT_GT(top[0].score, top[1].score);
}

TEST(TopKTest, ExcludesKnownTriples) {
  DescendingModel model;
  FilterIndex filter;
  const std::vector<Triple> known = {{0, 0, 0}, {0, 2, 0}};
  filter.Build(known, {}, {});
  TopKOptions options;
  options.k = 3;
  options.exclude_known = &filter;
  const auto top = PredictTails(model, 0, 0, options);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].entity, 1);
  EXPECT_EQ(top[1].entity, 3);
  EXPECT_EQ(top[2].entity, 4);
}

TEST(TopKTest, FilterOnlyAppliesToMatchingQuery) {
  DescendingModel model;
  FilterIndex filter;
  const std::vector<Triple> known = {{1, 0, 0}};  // different head
  filter.Build(known, {}, {});
  TopKOptions options;
  options.k = 1;
  options.exclude_known = &filter;
  const auto top = PredictTails(model, 0, 0, options);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].entity, 0);
}

TEST(TopKTest, KLargerThanVocabularyIsClamped) {
  DescendingModel model;
  TopKOptions options;
  options.k = 1000;
  const auto top = PredictTails(model, 0, 0, options);
  EXPECT_EQ(top.size(), size_t(kEntities));
}

TEST(TopKTest, KZeroGivesEmpty) {
  DescendingModel model;
  TopKOptions options;
  options.k = 0;
  EXPECT_TRUE(PredictTails(model, 0, 0, options).empty());
}

TEST(TopKTest, NegativeKGivesEmpty) {
  DescendingModel model;
  TopKOptions options;
  options.k = -5;
  EXPECT_TRUE(PredictTails(model, 0, 0, options).empty());
}

TEST(TopKTest, KOneReturnsSingleBest) {
  DescendingModel model;
  TopKOptions options;
  options.k = 1;
  const auto top = PredictTails(model, 0, 0, options);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].entity, 0);
  EXPECT_FLOAT_EQ(top[0].score, 0.0f);
}

TEST(TopKTest, ExclusionRemovingEveryCandidateGivesEmpty) {
  DescendingModel model;
  FilterIndex filter;
  std::vector<Triple> known;
  for (EntityId t = 0; t < kEntities; ++t) known.push_back({0, t, 0});
  filter.Build(known, {}, {});
  TopKOptions options;
  options.k = 5;
  options.exclude_known = &filter;
  EXPECT_TRUE(PredictTails(model, 0, 0, options).empty());
}

TEST(TopKTest, KLargerThanSurvivingCandidatesIsClamped) {
  DescendingModel model;
  FilterIndex filter;
  // Exclude all but tails 7 and 13 for query (0, ?, 0).
  std::vector<Triple> known;
  for (EntityId t = 0; t < kEntities; ++t) {
    if (t != 7 && t != 13) known.push_back({0, t, 0});
  }
  filter.Build(known, {}, {});
  TopKOptions options;
  options.k = 1000;
  options.exclude_known = &filter;
  const auto top = PredictTails(model, 0, 0, options);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].entity, 7);
  EXPECT_EQ(top[1].entity, 13);
}

TEST(TopKTest, TieBreakSurvivesExclusion) {
  // All scores equal; excluding entity 1 must shift the id-ordered
  // result, not disturb it.
  auto model = MakeDistMult(kEntities, kRelations, 4, 1);
  model->entity_store().block()->Zero();
  FilterIndex filter;
  filter.Build({{0, 1, 0}}, {}, {});
  TopKOptions options;
  options.k = 4;
  options.exclude_known = &filter;
  const auto top = PredictTails(*model, 0, 0, options);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].entity, 0);
  EXPECT_EQ(top[1].entity, 2);
  EXPECT_EQ(top[2].entity, 3);
  EXPECT_EQ(top[3].entity, 4);
}

TEST(TopKTest, GroupedTiesBreakByIdWithinEachGroup) {
  GroupedTieModel model;
  TopKOptions options;
  options.k = 6;  // first tied group of 4, then two from the next group
  const auto top = PredictTails(model, 0, 0, options);
  ASSERT_EQ(top.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(top[size_t(i)].entity, i);
  EXPECT_FLOAT_EQ(top[3].score, 0.0f);
  EXPECT_FLOAT_EQ(top[4].score, -1.0f);
}

TEST(TopKTest, TieBreaksByEntityId) {
  // Real model with tied scores: constant zero scores.
  auto model = MakeDistMult(kEntities, kRelations, 4, 1);
  // Zero all embeddings => all scores zero.
  model->entity_store().block()->Zero();
  TopKOptions options;
  options.k = 4;
  const auto top = PredictTails(*model, 0, 0, options);
  ASSERT_EQ(top.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(top[size_t(i)].entity, i);
}

TEST(TopKTest, PredictHeadsUsesHeadScores) {
  DescendingModel model;
  TopKOptions options;
  options.k = 2;
  const auto top = PredictHeads(model, 5, 0, options);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].entity, 0);
  EXPECT_EQ(top[1].entity, 1);
}

TEST(TopKHeapTest, CanSkipBoundAgainstHeapMinimumIsStrict) {
  TopKHeap<float, EntityId> heap(2);
  EXPECT_FALSE(heap.CanSkipBound(-100.0));  // not full, no floor
  heap.PushCandidate(0, 5.0f);
  heap.PushCandidate(1, 3.0f);
  ASSERT_TRUE(heap.full());
  EXPECT_TRUE(heap.CanSkipBound(2.9));
  // Equality must scan: a candidate scoring exactly the minimum can
  // still enter on the smaller-id tie-break.
  EXPECT_FALSE(heap.CanSkipBound(3.0));
  EXPECT_FALSE(heap.CanSkipBound(3.1));
}

TEST(TopKHeapTest, PruneFloorSkipsBeforeHeapFills) {
  TopKHeap<float, EntityId> heap(4);
  heap.SetPruneFloor(1.5f);
  EXPECT_TRUE(heap.CanSkipBound(1.4));
  EXPECT_FALSE(heap.CanSkipBound(1.5));  // strict, ties must scan
  EXPECT_FALSE(heap.CanSkipBound(2.0));
  // ResetCapacity drops the floor: a stale floor from the previous
  // query would make the next selection inexact.
  heap.ResetCapacity(4);
  EXPECT_FALSE(heap.CanSkipBound(1.4));
}

TEST(TopKHeapTest, FullHeapUsesTheTighterOfFloorAndMinimum) {
  TopKHeap<float, EntityId> heap(2);
  heap.SetPruneFloor(1.0f);
  heap.PushCandidate(0, 5.0f);
  heap.PushCandidate(1, 4.0f);
  // Heap minimum (4.0) is now tighter than the floor (1.0).
  EXPECT_TRUE(heap.CanSkipBound(3.9));
  EXPECT_FALSE(heap.CanSkipBound(4.0));
}

TEST(TopKHeapTest, ReserveKeepsResetCapacityAllocationFree) {
  TopKHeap<float, EntityId> heap;
  heap.Reserve(8);
  for (int k = 1; k <= 8; ++k) {
    heap.ResetCapacity(k);
    for (EntityId e = 0; e < 20; ++e) heap.PushCandidate(e, float(e % 5));
    EXPECT_EQ(heap.size(), k);
  }
}

TEST(TopKHeapTest, MergeFromEqualsSinglePassForAnyPartition) {
  // 30 candidates with deliberate score ties, split at every possible
  // boundary into two heaps: merge must equal the single-pass top-k.
  std::vector<float> scores;
  for (int i = 0; i < 30; ++i) scores.push_back(float((i * 7) % 5));
  TopKHeap<float, EntityId> reference(6);
  for (EntityId e = 0; e < 30; ++e) {
    reference.PushCandidate(e, scores[size_t(e)]);
  }
  const auto expect = reference.TakeSorted();
  for (int cut = 0; cut <= 30; ++cut) {
    TopKHeap<float, EntityId> left(6);
    TopKHeap<float, EntityId> right(6);
    for (EntityId e = 0; e < 30; ++e) {
      (e < cut ? left : right).PushCandidate(e, scores[size_t(e)]);
    }
    left.MergeFrom(right);
    const auto got = left.TakeSorted();
    ASSERT_EQ(expect.size(), got.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(expect[i].entity, got[i].entity) << "cut=" << cut;
      EXPECT_EQ(expect[i].score, got[i].score) << "cut=" << cut;
    }
  }
}

TEST(TopKTest, AgreesWithModelScores) {
  auto model = MakeComplEx(kEntities, kRelations, 8, 5);
  TopKOptions options;
  options.k = kEntities;
  const auto top = PredictTails(*model, 3, 1, options);
  ASSERT_EQ(top.size(), size_t(kEntities));
  for (size_t i = 0; i + 1 < top.size(); ++i) {
    EXPECT_GE(top[i].score, top[i + 1].score);
  }
  for (const ScoredEntity& s : top) {
    EXPECT_NEAR(s.score, model->Score({3, s.entity, 1}), 1e-4);
  }
}

}  // namespace
}  // namespace kge
