#include "core/embedding_store.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "math/vec_ops.h"
#include "util/io.h"

namespace kge {
namespace {

TEST(EmbeddingStoreTest, ShapeAccessors) {
  EmbeddingStore store("e", 10, 2, 8);
  EXPECT_EQ(store.num_ids(), 10);
  EXPECT_EQ(store.num_vectors(), 2);
  EXPECT_EQ(store.dim(), 8);
  EXPECT_EQ(store.Of(0).size(), 16u);
  EXPECT_EQ(store.Vec(0, 1).size(), 8u);
}

TEST(EmbeddingStoreTest, VecIsSubspanOfOf) {
  EmbeddingStore store("e", 3, 2, 4);
  store.Vec(1, 1)[2] = 5.0f;
  EXPECT_EQ(store.Of(1)[4 + 2], 5.0f);
  EXPECT_EQ(store.Of(0)[6], 0.0f);
}

TEST(EmbeddingStoreTest, InitXavierPopulatesAllEntries) {
  EmbeddingStore store("e", 20, 2, 16);
  Rng rng(1);
  store.InitXavier(&rng);
  int nonzero = 0;
  for (int32_t id = 0; id < 20; ++id) {
    for (float x : store.Of(id)) nonzero += x != 0.0f;
  }
  EXPECT_EQ(nonzero, 20 * 32);
}

TEST(EmbeddingStoreTest, NormalizeVectorsOfNormalizesEachVectorSeparately) {
  EmbeddingStore store("e", 2, 3, 4);
  Rng rng(2);
  store.InitXavier(&rng);
  store.NormalizeVectorsOf(1);
  for (int32_t v = 0; v < 3; ++v) {
    EXPECT_NEAR(Norm(store.Vec(1, v)), 1.0, 1e-6);
  }
  // Other ids untouched.
  EXPECT_NE(Norm(store.Vec(0, 0)), 1.0);
}

TEST(EmbeddingStoreTest, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/embeddings.bin";
  EmbeddingStore store("e", 5, 2, 6);
  Rng rng(3);
  store.InitXavier(&rng);
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(store.Save(&writer).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EmbeddingStore loaded("e", 5, 2, 6);
  {
    BinaryReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    ASSERT_TRUE(loaded.Load(&reader).ok());
  }
  for (int32_t id = 0; id < 5; ++id) {
    EXPECT_EQ(MaxAbsDiff(store.Of(id), loaded.Of(id)), 0.0);
  }
  std::remove(path.c_str());
}

TEST(EmbeddingStoreTest, LoadRejectsShapeMismatch) {
  const std::string path = testing::TempDir() + "/embeddings_bad.bin";
  EmbeddingStore store("e", 5, 2, 6);
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(store.Save(&writer).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EmbeddingStore wrong_shape("e", 5, 2, 7);
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_FALSE(wrong_shape.Load(&reader).ok());
  std::remove(path.c_str());
}

TEST(EmbeddingStoreTest, BlockExposesUnderlyingParameters) {
  EmbeddingStore store("mine", 4, 2, 3);
  EXPECT_EQ(store.block()->name(), "mine");
  EXPECT_EQ(store.block()->num_rows(), 4);
  EXPECT_EQ(store.block()->row_dim(), 6);
}

}  // namespace
}  // namespace kge
