// Wire-protocol robustness: round trips, truncation at every length,
// and bit flips through every field of the request and response frames
// must produce a clean Status — never a crash and never an allocation
// sized from hostile bytes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "serve/serve_protocol.h"

namespace kge {
namespace {

ServeRequest MakeRequest() {
  ServeRequest request;
  request.side = QuerySide::kHead;
  request.entity = 1234;
  request.relation = 7;
  request.k = 25;
  request.deadline_ms = 80;
  request.request_id = 0xDEADBEEF12345678ull;
  return request;
}

std::vector<uint8_t> EncodeValidRequest() {
  std::vector<uint8_t> frame(kRequestFrameBytes);
  EXPECT_EQ(EncodeServeRequest(MakeRequest(), frame), kRequestFrameBytes);
  return frame;
}

TEST(ServeProtocolTest, RequestRoundTrip) {
  const std::vector<uint8_t> frame = EncodeValidRequest();
  ServeRequest decoded;
  ASSERT_TRUE(DecodeServeRequestFrame(frame, &decoded).ok());
  const ServeRequest original = MakeRequest();
  EXPECT_EQ(decoded.side, original.side);
  EXPECT_EQ(decoded.entity, original.entity);
  EXPECT_EQ(decoded.relation, original.relation);
  EXPECT_EQ(decoded.k, original.k);
  EXPECT_EQ(decoded.deadline_ms, original.deadline_ms);
  EXPECT_EQ(decoded.request_id, original.request_id);
}

TEST(ServeProtocolTest, RequestEncodeRejectsSmallBuffer) {
  std::vector<uint8_t> tiny(kRequestFrameBytes - 1);
  EXPECT_EQ(EncodeServeRequest(MakeRequest(), tiny), 0u);
}

TEST(ServeProtocolTest, RequestTruncationAtEveryLength) {
  const std::vector<uint8_t> frame = EncodeValidRequest();
  for (size_t len = 0; len < frame.size(); ++len) {
    ServeRequest decoded;
    const Status status = DecodeServeRequestFrame(
        std::span<const uint8_t>(frame.data(), len), &decoded);
    EXPECT_FALSE(status.ok()) << "accepted truncated frame of " << len;
  }
}

// Flip every bit of a valid request frame. The decoder must return
// (either Ok for benign payload bits, or a clean error) and any
// accepted frame must satisfy the documented bounds.
TEST(ServeProtocolTest, RequestBitFlipSweep) {
  const std::vector<uint8_t> pristine = EncodeValidRequest();
  for (size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> frame = pristine;
      frame[byte] = uint8_t(frame[byte] ^ (1u << bit));
      ServeRequest decoded;
      const Status status = DecodeServeRequestFrame(frame, &decoded);
      if (byte < 12) {
        // Magic, body length, version, side (valid values are only
        // 0/1 and the pristine frame uses 1), and reserved bits: any
        // flip in these must be rejected — except side bit 0, which
        // toggles head<->tail, a legal frame.
        const bool side_toggle = byte == 9 && bit == 0;
        EXPECT_EQ(status.ok(), side_toggle)
            << "byte " << byte << " bit " << bit;
      }
      if (status.ok()) {
        EXPECT_LE(decoded.k, kServeMaxTopK);
        EXPECT_LE(decoded.deadline_ms, kServeMaxDeadlineMs);
        EXPECT_LE(uint8_t(decoded.side), uint8_t(QuerySide::kHead));
      }
    }
  }
}

TEST(ServeProtocolTest, RequestRejectsOutOfRangeKAndDeadline) {
  std::vector<uint8_t> frame = EncodeValidRequest();
  const uint32_t big_k = kServeMaxTopK + 1;
  std::memcpy(frame.data() + 20, &big_k, 4);
  ServeRequest decoded;
  EXPECT_FALSE(DecodeServeRequestFrame(frame, &decoded).ok());

  frame = EncodeValidRequest();
  const uint32_t big_deadline = kServeMaxDeadlineMs + 1;
  std::memcpy(frame.data() + 24, &big_deadline, 4);
  EXPECT_FALSE(DecodeServeRequestFrame(frame, &decoded).ok());
}

std::vector<uint8_t> EncodeValidResponse(uint32_t count) {
  ServeResponseHeader header;
  header.status = ServeStatusCode::kOk;
  header.tier = ScorePrecision::kFloat32;
  header.side = QuerySide::kTail;
  header.count = count;
  header.request_id = 99;
  header.snapshot_version = 3;
  std::vector<ScoredEntity> results;
  for (uint32_t i = 0; i < count; ++i) {
    results.push_back({EntityId(i * 10), 1.0f / float(i + 1)});
  }
  std::vector<uint8_t> frame(MaxResponseFrameBytes(count));
  EXPECT_EQ(EncodeServeResponse(header, results, frame), frame.size());
  return frame;
}

TEST(ServeProtocolTest, ResponseRoundTrip) {
  const std::vector<uint8_t> frame = EncodeValidResponse(5);
  ServeResponseHeader header;
  std::vector<ScoredEntity> results;
  ASSERT_TRUE(DecodeServeResponseFrame(frame, &header, &results).ok());
  EXPECT_EQ(header.status, ServeStatusCode::kOk);
  EXPECT_EQ(header.tier, ScorePrecision::kFloat32);
  EXPECT_EQ(header.count, 5u);
  EXPECT_EQ(header.request_id, 99u);
  EXPECT_EQ(header.snapshot_version, 3u);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[2].entity, 20);
  EXPECT_FLOAT_EQ(results[2].score, 1.0f / 3.0f);
}

TEST(ServeProtocolTest, ResponseEncodeRejectsMismatchedCount) {
  ServeResponseHeader header;
  header.count = 3;
  std::vector<ScoredEntity> results(2);
  std::vector<uint8_t> frame(MaxResponseFrameBytes(3));
  EXPECT_EQ(EncodeServeResponse(header, results, frame), 0u);
  std::vector<uint8_t> tiny(MaxResponseFrameBytes(2) - 1);
  header.count = 2;
  EXPECT_EQ(EncodeServeResponse(header, results, tiny), 0u);
}

TEST(ServeProtocolTest, ResponseTruncationAtEveryLength) {
  const std::vector<uint8_t> frame = EncodeValidResponse(4);
  for (size_t len = 0; len < frame.size(); ++len) {
    ServeResponseHeader header;
    std::vector<ScoredEntity> results;
    const Status status = DecodeServeResponseFrame(
        std::span<const uint8_t>(frame.data(), len), &header, &results);
    EXPECT_FALSE(status.ok()) << "accepted truncated response of " << len;
  }
}

// A hostile count field must never size an allocation: the decoder
// rejects any count inconsistent with the actual frame length or above
// kServeMaxTopK before touching the entries.
TEST(ServeProtocolTest, ResponseRejectsHostileCount) {
  std::vector<uint8_t> frame = EncodeValidResponse(2);
  const uint32_t hostile = 0x40000000;
  std::memcpy(frame.data() + 12, &hostile, 4);
  ServeResponseHeader header;
  std::vector<ScoredEntity> results;
  EXPECT_FALSE(DecodeServeResponseFrame(frame, &header, &results).ok());
  EXPECT_TRUE(results.empty());
}

TEST(ServeProtocolTest, ResponseBitFlipSweepOverHeader) {
  const std::vector<uint8_t> pristine = EncodeValidResponse(3);
  const size_t header_bytes = kFrameHeaderBytes + kResponseBodyBaseBytes;
  for (size_t byte = 0; byte < header_bytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> frame = pristine;
      frame[byte] = uint8_t(frame[byte] ^ (1u << bit));
      ServeResponseHeader header;
      std::vector<ScoredEntity> results;
      const Status status =
          DecodeServeResponseFrame(frame, &header, &results);
      if (status.ok()) {
        EXPECT_LE(header.count, kServeMaxTopK);
        EXPECT_EQ(results.size(), size_t(header.count));
      }
    }
  }
}

TEST(ServeProtocolTest, FrameHeaderDecode) {
  const std::vector<uint8_t> frame = EncodeValidRequest();
  uint32_t magic = 0;
  uint32_t body_len = 0;
  DecodeFrameHeader(std::span<const uint8_t>(frame.data(), kFrameHeaderBytes),
                    &magic, &body_len);
  EXPECT_EQ(magic, kServeRequestMagic);
  EXPECT_EQ(body_len, uint32_t(kRequestBodyBytes));
}

TEST(ServeProtocolTest, StatusCodeNames) {
  EXPECT_STREQ(ServeStatusCodeName(ServeStatusCode::kOk), "ok");
  EXPECT_STREQ(ServeStatusCodeName(ServeStatusCode::kShed), "shed");
  EXPECT_STREQ(ServeStatusCodeName(ServeStatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(ServeStatusCodeName(ServeStatusCode::kShuttingDown),
               "shutting_down");
}

}  // namespace
}  // namespace kge
