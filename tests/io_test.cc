#include "util/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace kge {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(FileIoTest, WriteAndReadRoundTrip) {
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n").ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileIoTest, ReadMissingFileFails) {
  Result<std::string> content = ReadFileToString("/nonexistent/nope.txt");
  EXPECT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kIoError);
}

TEST(FileIoTest, FileExists) {
  const std::string path = TempPath("exists.txt");
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteStringToFile(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  std::remove(path.c_str());
}

TEST(FileIoTest, EmptyFileRoundTrip) {
  const std::string path = TempPath("empty.txt");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(content->empty());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ScalarRoundTrip) {
  const std::string path = TempPath("scalars.bin");
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteUint32(0xDEADBEEF).ok());
    ASSERT_TRUE(writer.WriteUint64(0x0123456789ABCDEFULL).ok());
    ASSERT_TRUE(writer.WriteFloat(3.5f).ok());
    ASSERT_TRUE(writer.WriteDouble(-2.25).ok());
    ASSERT_TRUE(writer.WriteString("knowledge graph").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    BinaryReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    EXPECT_EQ(*reader.ReadUint32(), 0xDEADBEEF);
    EXPECT_EQ(*reader.ReadUint64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(*reader.ReadFloat(), 3.5f);
    EXPECT_EQ(*reader.ReadDouble(), -2.25);
    EXPECT_EQ(*reader.ReadString(), "knowledge graph");
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, FloatArrayRoundTrip) {
  const std::string path = TempPath("floats.bin");
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i) values.push_back(float(i) * 0.125f);
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteFloatArray(values.data(), values.size()).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::vector<float> loaded(values.size());
  {
    BinaryReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    ASSERT_TRUE(reader.ReadFloatArray(loaded.data(), loaded.size()).ok());
  }
  EXPECT_EQ(loaded, values);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, FloatArraySizeMismatchFails) {
  const std::string path = TempPath("mismatch.bin");
  const float values[3] = {1, 2, 3};
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteFloatArray(values, 3).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  float loaded[5];
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_FALSE(reader.ReadFloatArray(loaded, 5).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ShortReadFails) {
  const std::string path = TempPath("short.bin");
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteUint32(1).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_FALSE(reader.ReadUint64().ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, OpenMissingFileFails) {
  BinaryReader reader;
  EXPECT_FALSE(reader.Open("/nonexistent/missing.bin").ok());
}

TEST(BinaryIoTest, AtomicClosePublishesAndRemovesTemp) {
  const std::string path = TempPath("atomic.bin");
  std::remove(path.c_str());
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.OpenAtomic(path).ok());
    ASSERT_TRUE(writer.WriteUint32(7).ok());
    // Until Close(), the target must not exist (only `<path>.tmp`).
    EXPECT_FALSE(FileExists(path));
    EXPECT_TRUE(FileExists(path + ".tmp"));
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(*reader.ReadUint32(), 7u);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, AbandonLeavesTargetUntouched) {
  const std::string path = TempPath("abandon.bin");
  ASSERT_TRUE(WriteStringToFile(path, "old contents").ok());
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.OpenAtomic(path).ok());
    ASSERT_TRUE(writer.WriteUint32(0xFFFFFFFF).ok());
    writer.Abandon();
  }
  EXPECT_FALSE(FileExists(path + ".tmp"));
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "old contents");
  std::remove(path.c_str());
}

TEST(BinaryIoTest, DestructorWithoutCloseAbandons) {
  const std::string path = TempPath("dtor.bin");
  std::remove(path.c_str());
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.OpenAtomic(path).ok());
    ASSERT_TRUE(writer.WriteUint32(1).ok());
  }
  // Going out of scope without Close() must not publish a torn file.
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(BinaryIoTest, WriterAndReaderCrcAgree) {
  const std::string path = TempPath("crc.bin");
  uint32_t written_crc = 0;
  uint64_t written_bytes = 0;
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteUint32(42).ok());
    ASSERT_TRUE(writer.WriteString("checkpoint").ok());
    ASSERT_TRUE(writer.WriteDouble(2.5).ok());
    written_crc = writer.crc();
    written_bytes = writer.bytes_written();
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.file_size(), written_bytes);
  ASSERT_TRUE(reader.ReadUint32().ok());
  ASSERT_TRUE(reader.ReadString().ok());
  ASSERT_TRUE(reader.ReadDouble().ok());
  EXPECT_EQ(reader.crc(), written_crc);
  EXPECT_EQ(reader.remaining(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, SkipFeedsCrc) {
  const std::string path = TempPath("skip.bin");
  uint32_t written_crc = 0;
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    std::vector<float> values(200000, 1.5f);
    ASSERT_TRUE(writer.WriteFloatArray(values.data(), values.size()).ok());
    written_crc = writer.crc();
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_TRUE(reader.Skip(reader.remaining()).ok());
  EXPECT_EQ(reader.crc(), written_crc);
  EXPECT_FALSE(reader.Skip(1).ok());  // Past EOF.
  std::remove(path.c_str());
}

TEST(BinaryIoTest, HostileStringLengthIsRejectedWithoutAllocating) {
  const std::string path = TempPath("hostile_string.bin");
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    // A string length prefix claiming ~16 EiB with 4 bytes of payload.
    ASSERT_TRUE(writer.WriteUint64(0xFFFFFFFFFFFFFFF0ULL).ok());
    ASSERT_TRUE(writer.WriteUint32(0).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  Result<std::string> value = reader.ReadString();
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, HostileFloatArrayCountIsRejected) {
  const std::string path = TempPath("hostile_floats.bin");
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteUint64(1ULL << 60).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::vector<float> loaded(size_t(1) << 10);
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_FALSE(reader.ReadFloatArray(loaded.data(), loaded.size()).ok());
  std::remove(path.c_str());
}

TEST(FileIoTest, AtomicWriteStringToFileReplacesAtomically) {
  const std::string path = TempPath("atomic_string.txt");
  ASSERT_TRUE(AtomicWriteStringToFile(path, "first").ok());
  ASSERT_TRUE(AtomicWriteStringToFile(path, "second").ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "second");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FileIoTest, CreateDirectoriesIsRecursiveAndIdempotent) {
  const std::string base = TempPath("mkdirs");
  const std::string nested = base + "/a/b/c";
  ASSERT_TRUE(CreateDirectories(nested).ok());
  ASSERT_TRUE(CreateDirectories(nested).ok());
  ASSERT_TRUE(WriteStringToFile(nested + "/probe.txt", "x").ok());
  EXPECT_TRUE(FileExists(nested + "/probe.txt"));
  // A file in the way is an error, not a crash.
  EXPECT_FALSE(CreateDirectories(nested + "/probe.txt").ok());
  std::remove((nested + "/probe.txt").c_str());
}

}  // namespace
}  // namespace kge
