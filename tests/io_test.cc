#include "util/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace kge {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(FileIoTest, WriteAndReadRoundTrip) {
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n").ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileIoTest, ReadMissingFileFails) {
  Result<std::string> content = ReadFileToString("/nonexistent/nope.txt");
  EXPECT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kIoError);
}

TEST(FileIoTest, FileExists) {
  const std::string path = TempPath("exists.txt");
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteStringToFile(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  std::remove(path.c_str());
}

TEST(FileIoTest, EmptyFileRoundTrip) {
  const std::string path = TempPath("empty.txt");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(content->empty());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ScalarRoundTrip) {
  const std::string path = TempPath("scalars.bin");
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteUint32(0xDEADBEEF).ok());
    ASSERT_TRUE(writer.WriteUint64(0x0123456789ABCDEFULL).ok());
    ASSERT_TRUE(writer.WriteFloat(3.5f).ok());
    ASSERT_TRUE(writer.WriteDouble(-2.25).ok());
    ASSERT_TRUE(writer.WriteString("knowledge graph").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    BinaryReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    EXPECT_EQ(*reader.ReadUint32(), 0xDEADBEEF);
    EXPECT_EQ(*reader.ReadUint64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(*reader.ReadFloat(), 3.5f);
    EXPECT_EQ(*reader.ReadDouble(), -2.25);
    EXPECT_EQ(*reader.ReadString(), "knowledge graph");
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, FloatArrayRoundTrip) {
  const std::string path = TempPath("floats.bin");
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i) values.push_back(float(i) * 0.125f);
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteFloatArray(values.data(), values.size()).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::vector<float> loaded(values.size());
  {
    BinaryReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    ASSERT_TRUE(reader.ReadFloatArray(loaded.data(), loaded.size()).ok());
  }
  EXPECT_EQ(loaded, values);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, FloatArraySizeMismatchFails) {
  const std::string path = TempPath("mismatch.bin");
  const float values[3] = {1, 2, 3};
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteFloatArray(values, 3).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  float loaded[5];
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_FALSE(reader.ReadFloatArray(loaded, 5).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ShortReadFails) {
  const std::string path = TempPath("short.bin");
  {
    BinaryWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteUint32(1).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_FALSE(reader.ReadUint64().ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, OpenMissingFileFails) {
  BinaryReader reader;
  EXPECT_FALSE(reader.Open("/nonexistent/missing.bin").ok());
}

}  // namespace
}  // namespace kge
