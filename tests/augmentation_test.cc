#include "kg/augmentation.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(AugmentationTest, AugmentedRelationIdsShiftByCount) {
  EXPECT_EQ(AugmentedRelationOf(0, 5), 5);
  EXPECT_EQ(AugmentedRelationOf(4, 5), 9);
}

TEST(AugmentationTest, DoublesTriplesAndRelations) {
  const std::vector<Triple> train = {{0, 1, 0}, {1, 2, 1}};
  const AugmentedTriples augmented = AugmentWithInverses(train, 2);
  EXPECT_EQ(augmented.num_relations, 4);
  ASSERT_EQ(augmented.triples.size(), 4u);
  // Originals first, inverses after.
  EXPECT_EQ(augmented.triples[0], (Triple{0, 1, 0}));
  EXPECT_EQ(augmented.triples[1], (Triple{1, 2, 1}));
  EXPECT_EQ(augmented.triples[2], (Triple{1, 0, 2}));
  EXPECT_EQ(augmented.triples[3], (Triple{2, 1, 3}));
}

TEST(AugmentationTest, InverseOfInverseRecoversOriginalPair) {
  const std::vector<Triple> train = {{3, 7, 1}};
  const AugmentedTriples augmented = AugmentWithInverses(train, 2);
  const Triple& inverse = augmented.triples[1];
  EXPECT_EQ(inverse.head, 7);
  EXPECT_EQ(inverse.tail, 3);
  EXPECT_EQ(inverse.relation, 3);
}

TEST(AugmentationTest, EmptyInput) {
  const AugmentedTriples augmented = AugmentWithInverses({}, 3);
  EXPECT_TRUE(augmented.triples.empty());
  EXPECT_EQ(augmented.num_relations, 6);
}

TEST(AugmentationTest, SelfLoopInverseIsSelfLoop) {
  const std::vector<Triple> train = {{5, 5, 0}};
  const AugmentedTriples augmented = AugmentWithInverses(train, 1);
  EXPECT_EQ(augmented.triples[1], (Triple{5, 5, 1}));
}

}  // namespace
}  // namespace kge
