#include "datagen/freebase_like_generator.h"

#include <gtest/gtest.h>

#include "kg/relation_analysis.h"

namespace kge {
namespace {

class FreebaseLikeTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    FreebaseLikeOptions options;
    options.num_entities = 1000;
    options.seed = 11;
    dataset_ = new Dataset(GenerateFreebaseLike(options));
    std::vector<Triple> all = dataset_->train;
    all.insert(all.end(), dataset_->valid.begin(), dataset_->valid.end());
    all.insert(all.end(), dataset_->test.begin(), dataset_->test.end());
    stats_ = new std::vector<RelationStats>(AnalyzeRelations(
        all, dataset_->num_entities(), dataset_->num_relations()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete stats_;
    dataset_ = nullptr;
    stats_ = nullptr;
  }
  static Dataset* dataset_;
  static std::vector<RelationStats>* stats_;
};

Dataset* FreebaseLikeTest::dataset_ = nullptr;
std::vector<RelationStats>* FreebaseLikeTest::stats_ = nullptr;

TEST_F(FreebaseLikeTest, ValidatesAsBenchmark) {
  EXPECT_TRUE(dataset_->Validate().ok());
}

TEST_F(FreebaseLikeTest, HasTypedEntityNames) {
  EXPECT_NE(dataset_->entities.Find("/m/person_00000"), -1);
  EXPECT_NE(dataset_->entities.Find("/m/film_00000"), -1);
  EXPECT_NE(dataset_->entities.Find("/m/location_00000"), -1);
}

TEST_F(FreebaseLikeTest, HasSchemaRelationsAndInverses) {
  EXPECT_NE(dataset_->relations.Find("/film/actor"), -1);
  EXPECT_NE(dataset_->relations.Find("/person/born_in"), -1);
  // With inverse_fraction 0.6 and 15 schema relations, some inverses
  // must exist.
  int inverses = 0;
  for (const std::string& name : dataset_->relations.names()) {
    inverses += name.find("_inverse") != std::string::npos;
  }
  EXPECT_GT(inverses, 2);
  EXPECT_LT(inverses, 15);
}

TEST_F(FreebaseLikeTest, InverseRelationsAreExactInverses) {
  for (const RelationStats& s : *stats_) {
    const std::string& name = dataset_->relations.NameOf(s.relation);
    if (name.find("_inverse") == std::string::npos) continue;
    if (s.num_triples == 0) continue;
    const int32_t forward =
        dataset_->relations.Find(name.substr(0, name.size() - 8));
    ASSERT_NE(forward, -1) << name;
    EXPECT_EQ(s.best_inverse, forward) << name;
    EXPECT_NEAR(s.best_inverse_score, 1.0, 1e-9) << name;
  }
}

TEST_F(FreebaseLikeTest, HubRelationsAreManySided) {
  // born_in points at hub locations: many heads per tail.
  const int32_t born_in = dataset_->relations.Find("/person/born_in");
  ASSERT_NE(born_in, -1);
  EXPECT_GT((*stats_)[size_t(born_in)].heads_per_tail, 1.5);
}

TEST_F(FreebaseLikeTest, DenserThanWordNetLike) {
  const size_t total = dataset_->train.size() + dataset_->valid.size() +
                       dataset_->test.size();
  // More triples per entity than the taxonomy-shaped graph (~3.5/entity).
  EXPECT_GT(double(total) / 1000.0, 3.0);
}

TEST(FreebaseLikeDeterminismTest, SeedControlsOutput) {
  FreebaseLikeOptions options;
  options.num_entities = 400;
  options.seed = 5;
  const Dataset a = GenerateFreebaseLike(options);
  const Dataset b = GenerateFreebaseLike(options);
  EXPECT_EQ(a.train, b.train);
  options.seed = 6;
  const Dataset c = GenerateFreebaseLike(options);
  EXPECT_NE(a.train, c.train);
}

TEST(FreebaseLikeDeterminismTest, InverseFractionZeroYieldsNoInverses) {
  FreebaseLikeOptions options;
  options.num_entities = 400;
  options.inverse_fraction = 0.0;
  const Dataset data = GenerateFreebaseLike(options);
  for (const std::string& name : data.relations.names()) {
    EXPECT_EQ(name.find("_inverse"), std::string::npos) << name;
  }
}

TEST(FreebaseLikeDeterminismTest, InverseFractionOneYieldsAllInverses) {
  FreebaseLikeOptions options;
  options.num_entities = 400;
  options.inverse_fraction = 1.0;
  const Dataset data = GenerateFreebaseLike(options);
  int inverses = 0;
  for (const std::string& name : data.relations.names()) {
    inverses += name.find("_inverse") != std::string::npos;
  }
  EXPECT_EQ(inverses, data.num_relations() / 2);
}

}  // namespace
}  // namespace kge
