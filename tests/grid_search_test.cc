#include "train/grid_search.h"

#include <gtest/gtest.h>

#include "datagen/pattern_kg_generator.h"
#include "models/trilinear_models.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 50;
constexpr int32_t kRelations = 2;

std::vector<Triple> TinyTrain() {
  PatternKgOptions options;
  options.num_entities = kEntities;
  options.seed = 3;
  options.relations = {{RelationPattern::kInversePair, 80, ""}};
  return GeneratePatternKg(options, nullptr);
}

TEST(GridSearchTest, PointEnumerationIsCartesianProduct) {
  GridSearchSpace space;
  space.learning_rates = {0.1, 0.01};
  space.l2_lambdas = {0.0, 1e-3, 1e-2};
  space.batch_sizes = {64};
  GridSearch search(space, TrainerOptions{});
  const auto points = search.Points();
  EXPECT_EQ(points.size(), 6u);
  EXPECT_DOUBLE_EQ(points[0].learning_rate, 0.1);
  EXPECT_DOUBLE_EQ(points[0].l2_lambda, 0.0);
  EXPECT_EQ(points[0].batch_size, 64);
}

TEST(GridSearchTest, DefaultSpaceMatchesPaperSection53) {
  GridSearchSpace space;
  EXPECT_EQ(space.learning_rates, (std::vector<double>{1e-3, 1e-4}));
  EXPECT_EQ(space.l2_lambdas,
            (std::vector<double>{1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 0.0}));
  EXPECT_EQ(space.batch_sizes, (std::vector<int>{1 << 12, 1 << 14}));
}

TEST(GridSearchTest, EmptyGridIsError) {
  GridSearchSpace space;
  space.learning_rates.clear();
  GridSearch search(space, TrainerOptions{});
  const auto result = search.Run(
      [] { return MakeComplEx(kEntities, kRelations, 4, 1); }, TinyTrain(),
      [](KgeModel*) { return 0.0; });
  EXPECT_FALSE(result.ok());
}

TEST(GridSearchTest, SelectsThePointWithBestMetric) {
  GridSearchSpace space;
  space.learning_rates = {0.05, 1e-9};  // the second can barely learn
  space.l2_lambdas = {0.0};
  space.batch_sizes = {128};
  TrainerOptions base;
  base.max_epochs = 30;
  base.eval_every_epochs = 1000;  // no early stopping inside runs
  GridSearch search(space, base);

  const auto train = TinyTrain();
  // Metric: mean margin between train positives and a fixed corruption.
  auto validate = [&train](KgeModel* model) {
    double total = 0.0;
    for (const Triple& t : train) {
      Triple corrupted = t;
      corrupted.tail = (t.tail + 7) % kEntities;
      total += model->Score(t) - model->Score(corrupted);
    }
    return total / double(train.size());
  };
  const auto result = search.Run(
      [] { return MakeComplEx(kEntities, kRelations, 8, 5); }, train,
      validate);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->best.learning_rate, 0.05);
  EXPECT_EQ(result->all.size(), 2u);
  // The winning metric is recorded and is the max of all.
  for (const auto& [point, metric] : result->all) {
    EXPECT_GE(result->best_metric, metric);
  }
}

TEST(GridSearchTest, GridPointToStringIsReadable) {
  const GridPoint point{1e-3, 1e-2, 4096};
  const std::string s = point.ToString();
  EXPECT_NE(s.find("lr=0.001"), std::string::npos);
  EXPECT_NE(s.find("lambda=0.01"), std::string::npos);
  EXPECT_NE(s.find("batch=4096"), std::string::npos);
}

}  // namespace
}  // namespace kge
