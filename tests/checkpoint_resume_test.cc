// The exact-resume contract: a training run that checkpoints, dies, and
// resumes must be bit-identical — epoch losses and final parameters —
// to the same run left uninterrupted, for both trainers and for every
// thread count. Plus the crash-site matrix: a process killed at ANY
// registered failpoint leaves a checkpoint directory whose LATEST
// pointer references a complete, CRC-valid file from which that exact
// resume still works.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "datagen/pattern_kg_generator.h"
#include "models/checkpoint.h"
#include "models/trilinear_models.h"
#include "optim/optimizer.h"
#include "train/one_vs_all.h"
#include "train/train_checkpoint.h"
#include "train/train_loop.h"
#include "train/trainer.h"
#include "util/failpoint.h"
#include "util/io.h"
#include "util/string_utils.h"

namespace kge {
namespace {

struct TinyWorkload {
  std::vector<Triple> train;
  int32_t num_entities = 60;
  int32_t num_relations = 3;
};

TinyWorkload MakeTinyWorkload(uint64_t seed = 7) {
  PatternKgOptions options;
  options.num_entities = 60;
  options.seed = seed;
  options.relations = {{RelationPattern::kSymmetric, 60, ""},
                       {RelationPattern::kInversePair, 60, ""}};
  TinyWorkload workload;
  workload.train = GeneratePatternKg(options, nullptr);
  return workload;
}

std::unique_ptr<MultiEmbeddingModel> MakeModel(const TinyWorkload& workload) {
  return MakeComplEx(workload.num_entities, workload.num_relations, 8, 42);
}

void ExpectBlocksBitIdentical(KgeModel* a, KgeModel* b) {
  std::vector<ParameterBlock*> blocks_a = a->Blocks();
  std::vector<ParameterBlock*> blocks_b = b->Blocks();
  ASSERT_EQ(blocks_a.size(), blocks_b.size());
  for (size_t i = 0; i < blocks_a.size(); ++i) {
    const auto flat_a = blocks_a[i]->Flat();
    const auto flat_b = blocks_b[i]->Flat();
    ASSERT_EQ(flat_a.size(), flat_b.size());
    for (size_t d = 0; d < flat_a.size(); ++d) {
      ASSERT_EQ(flat_a[d], flat_b[d])
          << blocks_a[i]->name() << " element " << d;
    }
  }
}

// A fresh per-test scratch directory (recursive remove, then recreate).
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  const std::string cmd = "rm -rf '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  EXPECT_TRUE(CreateDirectories(dir).ok());
  return dir;
}

// Deterministic synthetic validation metric: rises to a peak epoch,
// then declines — exercises best-epoch tracking and early stopping
// identically across runs.
ValidationFn PeakedMetric(int peak_epoch) {
  return [peak_epoch](int epoch) {
    return 1.0 - 0.01 * double(epoch > peak_epoch ? epoch - peak_epoch
                                                  : peak_epoch - epoch);
  };
}

TrainerOptions NegSamplingOptions(int max_epochs, int num_threads) {
  TrainerOptions options;
  options.max_epochs = max_epochs;
  options.batch_size = 32;
  options.num_negatives = 2;
  options.learning_rate = 0.05;
  options.eval_every_epochs = 3;
  options.patience_epochs = 1000;
  options.seed = 99;
  options.num_threads = num_threads;
  return options;
}

OneVsAllOptions OneVsAllTrainerOptions(int max_epochs, int num_threads) {
  OneVsAllOptions options;
  options.max_epochs = max_epochs;
  options.batch_queries = 16;
  options.learning_rate = 0.05;
  options.eval_every_epochs = 3;
  options.patience_epochs = 1000;
  options.seed = 99;
  options.num_threads = num_threads;
  return options;
}

class ResumeThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(ResumeThreadsTest, NegativeSamplingResumeIsBitIdentical) {
  const int num_threads = GetParam();
  const TinyWorkload workload = MakeTinyWorkload();
  constexpr int kTotalEpochs = 8;
  constexpr int kInterruptEpoch = 4;

  // Reference: one uninterrupted run.
  auto ref_model = MakeModel(workload);
  Trainer ref_trainer(ref_model.get(),
                      NegSamplingOptions(kTotalEpochs, num_threads));
  Result<TrainResult> ref =
      ref_trainer.Train(workload.train, PeakedMetric(6));
  ASSERT_TRUE(ref.ok());

  // Interrupted: train to kInterruptEpoch with checkpointing, then a
  // brand-new process-worth of state resumes to kTotalEpochs.
  const std::string dir =
      FreshDir("resume_ns_t" + std::to_string(num_threads));
  auto part_model = MakeModel(workload);
  {
    TrainerOptions options =
        NegSamplingOptions(kInterruptEpoch, num_threads);
    options.checkpointing.dir = dir;
    Trainer trainer(part_model.get(), options);
    Result<TrainResult> part = trainer.Train(workload.train, PeakedMetric(6));
    ASSERT_TRUE(part.ok());
    ASSERT_EQ(part->epochs_run, kInterruptEpoch);
  }
  auto resumed_model = MakeModel(workload);
  TrainerOptions options = NegSamplingOptions(kTotalEpochs, num_threads);
  options.checkpointing.dir = dir;
  options.checkpointing.resume = true;
  Trainer trainer(resumed_model.get(), options);
  Result<TrainResult> resumed =
      trainer.Train(workload.train, PeakedMetric(6));
  ASSERT_TRUE(resumed.ok());

  EXPECT_EQ(resumed->start_epoch, kInterruptEpoch);
  EXPECT_EQ(resumed->epochs_run, ref->epochs_run);
  ASSERT_EQ(resumed->loss_history.size(), ref->loss_history.size());
  for (size_t e = 0; e < ref->loss_history.size(); ++e) {
    EXPECT_EQ(resumed->loss_history[e], ref->loss_history[e])
        << "epoch " << e + 1;
  }
  EXPECT_EQ(resumed->validation_history, ref->validation_history);
  ExpectBlocksBitIdentical(resumed_model.get(), ref_model.get());
}

TEST_P(ResumeThreadsTest, OneVsAllResumeIsBitIdentical) {
  const int num_threads = GetParam();
  const TinyWorkload workload = MakeTinyWorkload();
  constexpr int kTotalEpochs = 8;
  constexpr int kInterruptEpoch = 4;

  auto ref_model = MakeModel(workload);
  OneVsAllTrainer ref_trainer(
      ref_model.get(), OneVsAllTrainerOptions(kTotalEpochs, num_threads));
  Result<TrainResult> ref =
      ref_trainer.Train(workload.train, PeakedMetric(6));
  ASSERT_TRUE(ref.ok());

  const std::string dir =
      FreshDir("resume_ova_t" + std::to_string(num_threads));
  auto part_model = MakeModel(workload);
  {
    OneVsAllOptions options =
        OneVsAllTrainerOptions(kInterruptEpoch, num_threads);
    options.checkpointing.dir = dir;
    OneVsAllTrainer trainer(part_model.get(), options);
    Result<TrainResult> part = trainer.Train(workload.train, PeakedMetric(6));
    ASSERT_TRUE(part.ok());
    ASSERT_EQ(part->epochs_run, kInterruptEpoch);
  }
  auto resumed_model = MakeModel(workload);
  OneVsAllOptions options = OneVsAllTrainerOptions(kTotalEpochs, num_threads);
  options.checkpointing.dir = dir;
  options.checkpointing.resume = true;
  OneVsAllTrainer trainer(resumed_model.get(), options);
  Result<TrainResult> resumed =
      trainer.Train(workload.train, PeakedMetric(6));
  ASSERT_TRUE(resumed.ok());

  EXPECT_EQ(resumed->start_epoch, kInterruptEpoch);
  ASSERT_EQ(resumed->loss_history.size(), ref->loss_history.size());
  for (size_t e = 0; e < ref->loss_history.size(); ++e) {
    EXPECT_EQ(resumed->loss_history[e], ref->loss_history[e])
        << "epoch " << e + 1;
  }
  ExpectBlocksBitIdentical(resumed_model.get(), ref_model.get());
}

INSTANTIATE_TEST_SUITE_P(Threads, ResumeThreadsTest, ::testing::Values(1, 4));

TEST(ResumeTest, EarlyStoppingPhaseSurvivesResume) {
  // The metric peaks at epoch 3 and declines; with eval every 3 epochs
  // and patience 4, the reference run stops early. A run interrupted
  // BETWEEN the best epoch and the stop must restore patience,
  // best-epoch, and the eval cadence phase — stopping at the same epoch
  // with the same restored-best parameters.
  const TinyWorkload workload = MakeTinyWorkload();
  auto make_options = [&](int max_epochs) {
    TrainerOptions options = NegSamplingOptions(max_epochs, 1);
    options.eval_every_epochs = 3;
    options.patience_epochs = 4;
    return options;
  };

  auto ref_model = MakeModel(workload);
  Trainer ref_trainer(ref_model.get(), make_options(40));
  Result<TrainResult> ref = ref_trainer.Train(workload.train, PeakedMetric(3));
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(ref->stopped_early);
  ASSERT_EQ(ref->best_epoch, 3);

  const std::string dir = FreshDir("resume_earlystop");
  auto part_model = MakeModel(workload);
  {
    // Interrupt after epoch 5: best (epoch 3) is already behind us and
    // patience is half-spent.
    TrainerOptions options = make_options(5);
    options.checkpointing.dir = dir;
    Trainer trainer(part_model.get(), options);
    ASSERT_TRUE(trainer.Train(workload.train, PeakedMetric(3)).ok());
  }
  auto resumed_model = MakeModel(workload);
  TrainerOptions options = make_options(40);
  options.checkpointing.dir = dir;
  options.checkpointing.resume = true;
  Trainer trainer(resumed_model.get(), options);
  Result<TrainResult> resumed = trainer.Train(workload.train, PeakedMetric(3));
  ASSERT_TRUE(resumed.ok());

  EXPECT_TRUE(resumed->stopped_early);
  EXPECT_EQ(resumed->epochs_run, ref->epochs_run);
  EXPECT_EQ(resumed->best_epoch, ref->best_epoch);
  EXPECT_EQ(resumed->best_validation_metric, ref->best_validation_metric);
  EXPECT_EQ(resumed->validation_history, ref->validation_history);
  ExpectBlocksBitIdentical(resumed_model.get(), ref_model.get());
}

TEST(ResumeTest, ResumeRejectsMismatchedSeed) {
  const TinyWorkload workload = MakeTinyWorkload();
  const std::string dir = FreshDir("resume_seed_mismatch");
  auto model = MakeModel(workload);
  {
    TrainerOptions options = NegSamplingOptions(2, 1);
    options.checkpointing.dir = dir;
    Trainer trainer(model.get(), options);
    ASSERT_TRUE(trainer.Train(workload.train, nullptr).ok());
  }
  auto resumed_model = MakeModel(workload);
  TrainerOptions options = NegSamplingOptions(4, 1);
  options.seed = 100;  // different stream — resume would diverge silently
  options.checkpointing.dir = dir;
  options.checkpointing.resume = true;
  Trainer trainer(resumed_model.get(), options);
  Result<TrainResult> resumed = trainer.Train(workload.train, nullptr);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ResumeTest, ResumeRejectsWrongTrainerKind) {
  const TinyWorkload workload = MakeTinyWorkload();
  const std::string dir = FreshDir("resume_kind_mismatch");
  auto model = MakeModel(workload);
  {
    TrainerOptions options = NegSamplingOptions(2, 1);
    options.checkpointing.dir = dir;
    Trainer trainer(model.get(), options);
    ASSERT_TRUE(trainer.Train(workload.train, nullptr).ok());
  }
  auto resumed_model = MakeModel(workload);
  OneVsAllOptions options = OneVsAllTrainerOptions(4, 1);
  options.checkpointing.dir = dir;
  options.checkpointing.resume = true;
  OneVsAllTrainer trainer(resumed_model.get(), options);
  Result<TrainResult> resumed = trainer.Train(workload.train, nullptr);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResumeTest, RetentionKeepsLatestAndBest) {
  const TinyWorkload workload = MakeTinyWorkload();
  const std::string dir = FreshDir("resume_retention");
  auto model = MakeModel(workload);
  TrainerOptions options = NegSamplingOptions(10, 1);
  options.eval_every_epochs = 3;
  options.checkpointing.dir = dir;
  options.checkpointing.keep_last = 2;
  Trainer trainer(model.get(), options);
  // Metric peaks at epoch 3: the best checkpoint is old by epoch 10.
  Result<TrainResult> result = trainer.Train(workload.train, PeakedMetric(3));
  ASSERT_TRUE(result.ok());

  // Best epoch's file survives retention; so do the keep_last newest.
  EXPECT_TRUE(FileExists(dir + "/ckpt_3.kge2"));
  EXPECT_TRUE(FileExists(dir + "/ckpt_10.kge2"));
  EXPECT_TRUE(FileExists(dir + "/ckpt_9.kge2"));
  EXPECT_FALSE(FileExists(dir + "/ckpt_5.kge2"));
  EXPECT_FALSE(FileExists(dir + "/ckpt_6.kge2"));
  Result<std::string> latest = ReadFileToString(dir + "/LATEST");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(TrimString(*latest), "ckpt_10.kge2");
}

// ---------------------------------------------------------------------
// Divergence guard (driven through TrainLoop directly so the test can
// poison a specific epoch).

TEST(DivergenceGuardTest, RollsBackAndReducesLearningRate) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeModel(workload);
  auto optimizer = MakeOptimizer("sgd", model->Blocks(), 0.1).value();
  Optimizer* opt = optimizer.get();

  TrainLoopConfig config;
  config.trainer_kind = "poison_probe";
  config.max_epochs = 8;
  config.seed = 5;
  config.log_name = "poison";
  config.checkpointing.dir = FreshDir("diverge_rollback");
  config.divergence.max_retries = 2;
  config.divergence.lr_backoff = 0.5;

  int calls = 0;
  bool poisoned = false;
  auto run_epoch = [&](Rng* rng) {
    ++calls;
    // Nudge one parameter deterministically so epochs are observable.
    model->Blocks()[0]->Row(0)[0] += rng->NextUniform(0.0f, 0.01f);
    if (calls == 5 && !poisoned) {
      poisoned = true;
      return std::numeric_limits<double>::quiet_NaN();
    }
    return 0.5;
  };
  TrainLoop loop(model.get(), opt, config);
  Result<TrainResult> result = loop.Run(run_epoch, nullptr, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->divergence_rollbacks, 1);
  EXPECT_EQ(result->epochs_run, 8);
  EXPECT_EQ(result->loss_history.size(), 8u);
  EXPECT_EQ(opt->learning_rate(), 0.05);
  // Epoch 5 was replayed after rolling back to epoch 4's checkpoint.
  EXPECT_EQ(calls, 9);
}

TEST(DivergenceGuardTest, GivesUpAfterMaxRetries) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeModel(workload);
  auto optimizer = MakeOptimizer("sgd", model->Blocks(), 0.1).value();

  TrainLoopConfig config;
  config.trainer_kind = "poison_probe";
  config.max_epochs = 8;
  config.seed = 5;
  config.log_name = "poison";
  config.checkpointing.dir = FreshDir("diverge_giveup");
  config.divergence.max_retries = 2;

  int calls = 0;
  auto run_epoch = [&](Rng*) {
    ++calls;
    // Epoch 3 diverges every time it is attempted.
    return calls >= 3 ? std::numeric_limits<double>::quiet_NaN() : 0.5;
  };
  TrainLoop loop(model.get(), optimizer.get(), config);
  Result<TrainResult> result = loop.Run(run_epoch, nullptr, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DivergenceGuardTest, ErrorsWithoutCheckpointDirectory) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeModel(workload);
  auto optimizer = MakeOptimizer("sgd", model->Blocks(), 0.1).value();

  TrainLoopConfig config;
  config.trainer_kind = "poison_probe";
  config.max_epochs = 4;
  config.seed = 5;
  config.log_name = "poison";

  auto run_epoch = [&](Rng*) {
    return std::numeric_limits<double>::infinity();
  };
  TrainLoop loop(model.get(), optimizer.get(), config);
  Result<TrainResult> result = loop.Run(run_epoch, nullptr, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DivergenceGuardTest, NonFiniteParametersTriggerRollback) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeModel(workload);
  auto optimizer = MakeOptimizer("sgd", model->Blocks(), 0.1).value();

  TrainLoopConfig config;
  config.trainer_kind = "poison_probe";
  config.max_epochs = 6;
  config.seed = 5;
  config.log_name = "poison";
  config.checkpointing.dir = FreshDir("diverge_params");

  int calls = 0;
  bool poisoned = false;
  auto run_epoch = [&](Rng*) {
    ++calls;
    if (calls == 4 && !poisoned) {
      poisoned = true;
      // Loss looks fine but a parameter went NaN — must still roll back.
      model->Blocks()[0]->Row(0)[0] = std::numeric_limits<float>::quiet_NaN();
    }
    return 0.5;
  };
  TrainLoop loop(model.get(), optimizer.get(), config);
  Result<TrainResult> result = loop.Run(run_epoch, nullptr, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->divergence_rollbacks, 1);
  for (ParameterBlock* block : model->Blocks()) {
    for (float value : block->Flat()) {
      ASSERT_TRUE(std::isfinite(value));
    }
  }
}

// ---------------------------------------------------------------------
// Crash-site matrix: kill the process at every registered failpoint and
// prove (a) LATEST never references a torn or CRC-invalid checkpoint
// and (b) resuming still reproduces the uninterrupted run exactly.

TEST(CrashMatrixTest, EveryCrashSiteLeavesRecoverableState) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "build does not define KGE_FAILPOINTS";
  }
  const TinyWorkload workload = MakeTinyWorkload();
  constexpr int kTotalEpochs = 6;

  // Uninterrupted reference for the recovery comparison.
  auto ref_model = MakeModel(workload);
  Trainer ref_trainer(ref_model.get(), NegSamplingOptions(kTotalEpochs, 1));
  ASSERT_TRUE(ref_trainer.Train(workload.train, nullptr).ok());

  for (const std::string& site : failpoint::KnownSites()) {
    // Serving-layer sites never fire during training; the serve-side
    // crash/corruption matrix lives in serve_server_test.cc.
    if (site.rfind("serve.", 0) == 0) continue;
    SCOPED_TRACE("site " + site);
    const std::string dir = FreshDir("crash_" + site);
    const bool is_load_site = site == "ckpt.load.begin";

    // The child trains with per-epoch checkpointing and dies at the
    // armed site. Load sites only fire on resume, so that child first
    // checkpoints cleanly, then crashes resuming.
    auto run_child = [&]() {
      {
        TrainerOptions options = NegSamplingOptions(3, 1);
        options.checkpointing.dir = dir;
        if (!is_load_site) {
          ASSERT_TRUE(failpoint::Set(site, "crash@2").ok());
        }
        auto child_model = MakeModel(workload);
        Trainer trainer(child_model.get(), options);
        (void)trainer.Train(workload.train, nullptr);
      }
      if (is_load_site) {
        ASSERT_TRUE(failpoint::Set(site, "crash").ok());
        TrainerOptions options = NegSamplingOptions(kTotalEpochs, 1);
        options.checkpointing.dir = dir;
        options.checkpointing.resume = true;
        auto child_model = MakeModel(workload);
        Trainer trainer(child_model.get(), options);
        (void)trainer.Train(workload.train, nullptr);
      }
    };
    EXPECT_EXIT(run_child(),
                testing::ExitedWithCode(failpoint::kFailpointExitCode),
                "failpoint");

    // (a) Whatever LATEST references must be complete and CRC-valid.
    // (Init also sweeps any *.tmp the killed process stranded.)
    CheckpointManager manager(dir, 3);
    ASSERT_TRUE(manager.Init().ok());
    Result<std::string> latest = manager.LatestPath();
    if (latest.ok()) {
      EXPECT_TRUE(VerifyCheckpoint(*latest).ok()) << *latest;
    } else {
      // Died before the first commit — that is fine, but it must be a
      // clean NotFound, not a torn pointer.
      EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
    }
    // Stale temp files from the crash are gone after recovery init.
    EXPECT_FALSE(FileExists(dir + "/LATEST.tmp"));

    // (b) Resume (from whatever survived, possibly nothing) and finish:
    // the result must match the uninterrupted reference bit-for-bit.
    auto resumed_model = MakeModel(workload);
    TrainerOptions options = NegSamplingOptions(kTotalEpochs, 1);
    options.checkpointing.dir = dir;
    options.checkpointing.resume = true;
    Trainer trainer(resumed_model.get(), options);
    Result<TrainResult> resumed = trainer.Train(workload.train, nullptr);
    ASSERT_TRUE(resumed.ok()) << resumed.status().message();
    ExpectBlocksBitIdentical(resumed_model.get(), ref_model.get());
  }
}

}  // namespace
}  // namespace kge
