#include "kg/filter_index.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace kge {
namespace {

class FilterIndexTest : public testing::Test {
 protected:
  void SetUp() override {
    train_ = {{0, 1, 0}, {0, 2, 0}, {1, 2, 1}};
    valid_ = {{0, 3, 0}};
    test_ = {{2, 1, 1}};
    index_.Build(train_, valid_, test_);
  }

  std::vector<Triple> train_, valid_, test_;
  FilterIndex index_;
};

TEST_F(FilterIndexTest, ContainsTriplesFromAllSplits) {
  EXPECT_TRUE(index_.Contains({0, 1, 0}));  // train
  EXPECT_TRUE(index_.Contains({0, 3, 0}));  // valid
  EXPECT_TRUE(index_.Contains({2, 1, 1}));  // test
  EXPECT_FALSE(index_.Contains({3, 0, 0}));
  EXPECT_FALSE(index_.Contains({0, 1, 1}));
}

TEST_F(FilterIndexTest, KnownTailsAreSortedAndComplete) {
  const auto tails = index_.KnownTails(0, 0);
  ASSERT_EQ(tails.size(), 3u);
  EXPECT_TRUE(std::is_sorted(tails.begin(), tails.end()));
  EXPECT_EQ(tails[0], 1);
  EXPECT_EQ(tails[1], 2);
  EXPECT_EQ(tails[2], 3);
}

TEST_F(FilterIndexTest, KnownHeadsAreComplete) {
  const auto heads = index_.KnownHeads(2, 0);
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0], 0);
  const auto heads_r1 = index_.KnownHeads(1, 1);
  ASSERT_EQ(heads_r1.size(), 1u);
  EXPECT_EQ(heads_r1[0], 2);
}

TEST_F(FilterIndexTest, UnknownKeysGiveEmptySpans) {
  EXPECT_TRUE(index_.KnownTails(7, 0).empty());
  EXPECT_TRUE(index_.KnownTails(0, 9).empty());
  EXPECT_TRUE(index_.KnownHeads(9, 9).empty());
}

TEST_F(FilterIndexTest, NumTriplesCountsAllSplits) {
  EXPECT_EQ(index_.num_triples(), 5u);
}

TEST(FilterIndexDedupeTest, DuplicatesAcrossSplitsAreDeduped) {
  const std::vector<Triple> train = {{0, 1, 0}};
  const std::vector<Triple> valid = {{0, 1, 0}};
  const std::vector<Triple> test = {};
  FilterIndex index;
  index.Build(train, valid, test);
  EXPECT_EQ(index.KnownTails(0, 0).size(), 1u);
}

TEST(FilterIndexRebuildTest, BuildReplacesPreviousContents) {
  FilterIndex index;
  const std::vector<Triple> first = {{0, 1, 0}};
  const std::vector<Triple> empty;
  index.Build(first, empty, empty);
  EXPECT_TRUE(index.Contains({0, 1, 0}));
  const std::vector<Triple> second = {{2, 3, 1}};
  index.Build(second, empty, empty);
  EXPECT_FALSE(index.Contains({0, 1, 0}));
  EXPECT_TRUE(index.Contains({2, 3, 1}));
}

TEST(FilterIndexSpanOverloadTest, GenericBuildWorks) {
  const std::vector<Triple> a = {{0, 1, 0}};
  const std::vector<Triple> b = {{1, 0, 0}};
  const std::vector<Triple>* splits[] = {&a, &b};
  FilterIndex index;
  index.Build(splits);
  EXPECT_TRUE(index.Contains({0, 1, 0}));
  EXPECT_TRUE(index.Contains({1, 0, 0}));
  EXPECT_EQ(index.num_triples(), 2u);
}

}  // namespace
}  // namespace kge
