#include "math/quaternion.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace kge {
namespace {

Quaternion RandomQuaternion(Rng* rng) {
  return Quaternion(rng->NextUniform(-2, 2), rng->NextUniform(-2, 2),
                    rng->NextUniform(-2, 2), rng->NextUniform(-2, 2));
}

void ExpectNear(const Quaternion& x, const Quaternion& y, double tol) {
  EXPECT_NEAR(x.a, y.a, tol);
  EXPECT_NEAR(x.b, y.b, tol);
  EXPECT_NEAR(x.c, y.c, tol);
  EXPECT_NEAR(x.d, y.d, tol);
}

TEST(QuaternionTest, FundamentalUnitRelations) {
  const Quaternion one(1, 0, 0, 0);
  const Quaternion i(0, 1, 0, 0);
  const Quaternion j(0, 0, 1, 0);
  const Quaternion k(0, 0, 0, 1);
  const Quaternion minus_one(-1, 0, 0, 0);
  // i² = j² = k² = ijk = −1.
  EXPECT_EQ(i * i, minus_one);
  EXPECT_EQ(j * j, minus_one);
  EXPECT_EQ(k * k, minus_one);
  EXPECT_EQ(i * j * k, minus_one);
  // ij = k, jk = i, ki = j.
  EXPECT_EQ(i * j, k);
  EXPECT_EQ(j * k, i);
  EXPECT_EQ(k * i, j);
  // ji = −k (noncommutativity).
  EXPECT_EQ(j * i, Quaternion(0, 0, 0, -1));
  EXPECT_EQ(one * i, i);
}

TEST(QuaternionTest, MultiplicationIsNoncommutative) {
  Rng rng(1);
  const Quaternion x = RandomQuaternion(&rng);
  const Quaternion y = RandomQuaternion(&rng);
  const Quaternion xy = x * y;
  const Quaternion yx = y * x;
  // Generic quaternions do not commute.
  EXPECT_FALSE(xy == yx);
}

TEST(QuaternionTest, MultiplicationIsAssociative) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Quaternion x = RandomQuaternion(&rng);
    const Quaternion y = RandomQuaternion(&rng);
    const Quaternion z = RandomQuaternion(&rng);
    ExpectNear((x * y) * z, x * (y * z), 1e-9);
  }
}

TEST(QuaternionTest, NormIsMultiplicative) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Quaternion x = RandomQuaternion(&rng);
    const Quaternion y = RandomQuaternion(&rng);
    EXPECT_NEAR((x * y).Norm(), x.Norm() * y.Norm(), 1e-9);
  }
}

TEST(QuaternionTest, ConjugateProperties) {
  Rng rng(4);
  const Quaternion x = RandomQuaternion(&rng);
  const Quaternion y = RandomQuaternion(&rng);
  // conj(xy) = conj(y) conj(x).
  ExpectNear((x * y).Conjugate(), y.Conjugate() * x.Conjugate(), 1e-9);
  // x * conj(x) = |x|² (real).
  const Quaternion self = x * x.Conjugate();
  EXPECT_NEAR(self.a, x.NormSquared(), 1e-9);
  EXPECT_NEAR(self.b, 0.0, 1e-9);
  EXPECT_NEAR(self.c, 0.0, 1e-9);
  EXPECT_NEAR(self.d, 0.0, 1e-9);
}

TEST(QuaternionTest, InverseGivesIdentity) {
  Rng rng(5);
  const Quaternion x = RandomQuaternion(&rng);
  ExpectNear(x * x.Inverse(), Quaternion(1, 0, 0, 0), 1e-9);
  ExpectNear(x.Inverse() * x, Quaternion(1, 0, 0, 0), 1e-9);
}

TEST(QuaternionTest, NormalizedHasUnitNorm) {
  Rng rng(6);
  const Quaternion x = RandomQuaternion(&rng);
  EXPECT_NEAR(x.Normalized().Norm(), 1.0, 1e-9);
  // Zero quaternion stays zero.
  EXPECT_EQ(Quaternion().Normalized(), Quaternion());
}

TEST(QuaternionTest, AdditionAndSubtraction) {
  const Quaternion x(1, 2, 3, 4);
  const Quaternion y(5, 6, 7, 8);
  EXPECT_EQ(x + y, Quaternion(6, 8, 10, 12));
  EXPECT_EQ(y - x, Quaternion(4, 4, 4, 4));
  EXPECT_EQ(2.0 * x, Quaternion(2, 4, 6, 8));
}

TEST(QuaternionTest, ToStringMentionsComponents) {
  const std::string s = Quaternion(1, -2, 3, -4).ToString();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("-2"), std::string::npos);
}

class QuaternionScoreTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    const int dim = 8;
    for (auto* vecs : {&h_, &t_, &r_}) {
      for (auto& component : *vecs) {
        component.resize(dim);
        for (float& x : component) x = rng.NextUniform(-1, 1);
      }
    }
  }

  QuaternionVectorView View(const std::array<std::vector<float>, 4>& v) const {
    return {v[0], v[1], v[2], v[3]};
  }

  std::array<std::vector<float>, 4> h_, t_, r_;
};

TEST_F(QuaternionScoreTest, ScoreMatchesManualSum) {
  const auto h = View(h_);
  const auto t = View(t_);
  const auto r = View(r_);
  double expected = 0.0;
  for (size_t d = 0; d < h.size(); ++d) {
    expected += (h.At(d) * t.At(d).Conjugate() * r.At(d)).a;
  }
  EXPECT_NEAR(QuaternionScoreHConjTR(h, t, r), expected, 1e-9);
}

TEST_F(QuaternionScoreTest, MovingRelationBetweenHeadAndConjTailChangesScore) {
  const auto h = View(h_);
  const auto t = View(t_);
  const auto r = View(r_);
  const double s1 = QuaternionScoreHConjTR(h, t, r);
  const double s2 = QuaternionScoreHRConjT(h, t, r);
  EXPECT_GT(std::fabs(s1 - s2), 1e-6);
}

TEST_F(QuaternionScoreTest, RHConjTEqualsCyclicProperty) {
  // Re(q1 q2) = Re(q2 q1) for any quaternions, so Re(r·h·t̄) should equal
  // Re(h·t̄·r) — the two orders coincide under the real-part trace.
  const auto h = View(h_);
  const auto t = View(t_);
  const auto r = View(r_);
  EXPECT_NEAR(QuaternionScoreRHConjT(h, t, r),
              QuaternionScoreHConjTR(h, t, r), 1e-9);
}

TEST_F(QuaternionScoreTest, ScoreIsNotSymmetricInHeadTail) {
  const auto h = View(h_);
  const auto t = View(t_);
  const auto r = View(r_);
  EXPECT_GT(std::fabs(QuaternionScoreHConjTR(h, t, r) -
                      QuaternionScoreHConjTR(t, h, r)),
            1e-6);
}

}  // namespace
}  // namespace kge
