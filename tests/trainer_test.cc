#include "train/trainer.h"

#include <gtest/gtest.h>

#include "datagen/pattern_kg_generator.h"
#include "eval/evaluator.h"
#include <cmath>

#include "kg/augmentation.h"
#include "models/learned_weight_model.h"
#include "math/vec_ops.h"
#include "models/trilinear_models.h"
#include "train/loss.h"

namespace kge {
namespace {

// A small pattern KG: one symmetric and one inverse-paired relation.
struct TinyWorkload {
  std::vector<Triple> train;
  int32_t num_entities = 60;
  int32_t num_relations = 3;
};

TinyWorkload MakeTinyWorkload(uint64_t seed = 7) {
  PatternKgOptions options;
  options.num_entities = 60;
  options.seed = seed;
  options.relations = {{RelationPattern::kSymmetric, 60, ""},
                       {RelationPattern::kInversePair, 60, ""}};
  TinyWorkload workload;
  workload.train = GeneratePatternKg(options, nullptr);
  return workload;
}

TrainerOptions FastOptions() {
  TrainerOptions options;
  options.max_epochs = 40;
  options.batch_size = 128;
  options.learning_rate = 0.05;
  options.eval_every_epochs = 10;
  options.patience_epochs = 1000;
  options.seed = 3;
  return options;
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeComplEx(workload.num_entities, workload.num_relations, 16,
                           1);
  TrainerOptions options = FastOptions();
  Trainer trainer(model.get(), options);

  NegativeSamplerOptions sampler_options;
  NegativeSampler sampler(workload.num_entities, workload.num_relations,
                          workload.train, sampler_options);
  Rng rng(1);
  const double first = trainer.RunEpoch(workload.train, sampler, &rng);
  double last = first;
  for (int epoch = 0; epoch < 30; ++epoch) {
    last = trainer.RunEpoch(workload.train, sampler, &rng);
  }
  EXPECT_LT(last, first * 0.7);
}

TEST(TrainerTest, TrainReturnsEpochStats) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                           1);
  TrainerOptions options = FastOptions();
  options.max_epochs = 5;
  Trainer trainer(model.get(), options);
  const Result<TrainResult> result = trainer.Train(workload.train, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epochs_run, 5);
  EXPECT_FALSE(result->stopped_early);
  EXPECT_GT(result->final_mean_loss, 0.0);
}

TEST(TrainerTest, EmptyTrainingSetIsError) {
  auto model = MakeComplEx(10, 2, 4, 1);
  Trainer trainer(model.get(), FastOptions());
  const Result<TrainResult> result = trainer.Train({}, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST(TrainerTest, EarlyStoppingTriggersOnFlatMetric) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                           1);
  TrainerOptions options = FastOptions();
  options.max_epochs = 500;
  options.eval_every_epochs = 5;
  options.patience_epochs = 10;
  Trainer trainer(model.get(), options);
  const Result<TrainResult> result =
      trainer.Train(workload.train, [](int) { return 0.5; });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stopped_early);
  EXPECT_LE(result->epochs_run, 20);
  EXPECT_EQ(result->best_epoch, 5);
  EXPECT_DOUBLE_EQ(result->best_validation_metric, 0.5);
}

TEST(TrainerTest, RestoreBestRevertsToBestCheckpoint) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                           1);
  TrainerOptions options = FastOptions();
  options.max_epochs = 30;
  options.eval_every_epochs = 10;
  options.patience_epochs = 1000;
  options.restore_best = true;
  Trainer trainer(model.get(), options);

  // Validation metric peaks at epoch 10 then degrades; snapshot the
  // model's parameters at each validation to verify restoration.
  std::vector<float> params_at_10;
  const Result<TrainResult> result =
      trainer.Train(workload.train, [&](int epoch) {
        if (epoch == 10) {
          const auto flat = model->entity_store().block()->Flat();
          params_at_10.assign(flat.begin(), flat.end());
          return 1.0;
        }
        return 0.1;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_epoch, 10);
  const auto flat = model->entity_store().block()->Flat();
  ASSERT_EQ(params_at_10.size(), flat.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    ASSERT_EQ(flat[i], params_at_10[i]) << "param " << i;
  }
}

TEST(TrainerTest, UnitNormConstraintHoldsAfterEveryEpoch) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                           1);
  TrainerOptions options = FastOptions();
  options.max_epochs = 3;
  options.unit_norm_entities = true;
  Trainer trainer(model.get(), options);
  ASSERT_TRUE(trainer.Train(workload.train, nullptr).ok());
  // Every entity that appears in training data must have unit vectors.
  for (const Triple& t : workload.train) {
    for (EntityId e : {t.head, t.tail}) {
      for (int32_t v = 0; v < 2; ++v) {
        EXPECT_NEAR(Norm(model->entity_store().Vec(e, v)), 1.0, 1e-4);
      }
    }
  }
}

TEST(TrainerTest, DeterministicGivenSeed) {
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options = FastOptions();
  options.max_epochs = 5;

  auto model_a = MakeComplEx(workload.num_entities, workload.num_relations,
                             8, 42);
  Trainer trainer_a(model_a.get(), options);
  ASSERT_TRUE(trainer_a.Train(workload.train, nullptr).ok());

  auto model_b = MakeComplEx(workload.num_entities, workload.num_relations,
                             8, 42);
  Trainer trainer_b(model_b.get(), options);
  ASSERT_TRUE(trainer_b.Train(workload.train, nullptr).ok());

  const auto a = model_a->entity_store().block()->Flat();
  const auto b = model_b->entity_store().block()->Flat();
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(TrainerTest, L2RegularizationShrinksParameterNorms) {
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options = FastOptions();
  options.max_epochs = 20;
  options.unit_norm_entities = false;  // so the reg effect is visible

  auto unregularized = MakeComplEx(workload.num_entities,
                                   workload.num_relations, 8, 42);
  options.l2_lambda = 0.0;
  Trainer trainer_a(unregularized.get(), options);
  ASSERT_TRUE(trainer_a.Train(workload.train, nullptr).ok());

  auto regularized = MakeComplEx(workload.num_entities,
                                 workload.num_relations, 8, 42);
  options.l2_lambda = 0.5;
  Trainer trainer_b(regularized.get(), options);
  ASSERT_TRUE(trainer_b.Train(workload.train, nullptr).ok());

  EXPECT_LT(SquaredNorm(regularized->relation_store().block()->Flat()),
            SquaredNorm(unregularized->relation_store().block()->Flat()));
}

TEST(TrainerTest, MoreNegativesStillTrains) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                           1);
  TrainerOptions options = FastOptions();
  options.max_epochs = 5;
  options.num_negatives = 4;
  Trainer trainer(model.get(), options);
  const Result<TrainResult> result = trainer.Train(workload.train, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_mean_loss, 0.0);
}

TEST(TrainerTest, MarginRankingLossTrainsTransEStyleModels) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                           1);
  TrainerOptions options = FastOptions();
  options.loss = LossKind::kMarginRanking;
  options.margin = 1.0;
  options.max_epochs = 30;
  Trainer trainer(model.get(), options);
  const Result<TrainResult> result = trainer.Train(workload.train, nullptr);
  ASSERT_TRUE(result.ok());
  // Hinge loss should be below the no-training value (margin = 1).
  EXPECT_LT(result->final_mean_loss, 0.9);
  // Positives outrank random corruptions on average.
  Rng rng(4);
  double margin_sum = 0.0;
  for (const Triple& t : workload.train) {
    Triple corrupted = t;
    corrupted.tail = EntityId(rng.NextBounded(uint64_t(workload.num_entities)));
    margin_sum += model->Score(t) - model->Score(corrupted);
  }
  EXPECT_GT(margin_sum / double(workload.train.size()), 0.2);
}

TEST(TrainerTest, NormalizedNegativesScaleLossConsistently) {
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options = FastOptions();
  options.max_epochs = 10;
  options.num_negatives = 8;
  options.normalize_negatives = true;
  auto model = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                           1);
  Trainer trainer(model.get(), options);
  const Result<TrainResult> result = trainer.Train(workload.train, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_mean_loss, 0.0);
  EXPECT_TRUE(std::isfinite(result->final_mean_loss));
}

TEST(TrainerTest, SelfAdversarialNegativesTrainToGoodMargins) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto model = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                           1);
  TrainerOptions options = FastOptions();
  options.max_epochs = 40;
  options.num_negatives = 8;
  options.self_adversarial = true;
  options.adversarial_temperature = 1.0;
  Trainer trainer(model.get(), options);
  const Result<TrainResult> result = trainer.Train(workload.train, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(std::isfinite(result->final_mean_loss));
  Rng rng(5);
  double margin = 0.0;
  for (const Triple& t : workload.train) {
    Triple corrupted = t;
    corrupted.tail = EntityId(rng.NextBounded(uint64_t(workload.num_entities)));
    margin += model->Score(t) - model->Score(corrupted);
  }
  EXPECT_GT(margin / double(workload.train.size()), 0.5);
}

TEST(TrainerTest, SelfAdversarialIgnoredWithSingleNegative) {
  // With 1 negative the softmax weight is exactly 1 — behaviour must be
  // identical to the plain path (verified via deterministic params).
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options = FastOptions();
  options.max_epochs = 3;
  options.num_negatives = 1;

  auto plain = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                           42);
  Trainer plain_trainer(plain.get(), options);
  ASSERT_TRUE(plain_trainer.Train(workload.train, nullptr).ok());

  options.self_adversarial = true;
  auto adversarial = MakeComplEx(workload.num_entities,
                                 workload.num_relations, 8, 42);
  Trainer adversarial_trainer(adversarial.get(), options);
  ASSERT_TRUE(adversarial_trainer.Train(workload.train, nullptr).ok());

  const auto a = plain->entity_store().block()->Flat();
  const auto b = adversarial->entity_store().block()->Flat();
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(TrainerTest, ParallelGradientsDeterministicForFixedThreadCount) {
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options = FastOptions();
  options.max_epochs = 5;
  options.num_threads = 3;

  auto model_a = MakeComplEx(workload.num_entities, workload.num_relations,
                             8, 42);
  Trainer trainer_a(model_a.get(), options);
  ASSERT_TRUE(trainer_a.Train(workload.train, nullptr).ok());

  auto model_b = MakeComplEx(workload.num_entities, workload.num_relations,
                             8, 42);
  Trainer trainer_b(model_b.get(), options);
  ASSERT_TRUE(trainer_b.Train(workload.train, nullptr).ok());

  const auto a = model_a->entity_store().block()->Flat();
  const auto b = model_b->entity_store().block()->Flat();
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST(TrainerTest, ParallelGradientsLearnComparablyToSerial) {
  const TinyWorkload workload = MakeTinyWorkload();
  auto margin_of = [&](KgeModel& model) {
    Rng rng(9);
    double total = 0.0;
    for (const Triple& t : workload.train) {
      Triple corrupted = t;
      corrupted.tail =
          EntityId(rng.NextBounded(uint64_t(workload.num_entities)));
      total += model.Score(t) - model.Score(corrupted);
    }
    return total / double(workload.train.size());
  };

  TrainerOptions options = FastOptions();
  options.max_epochs = 40;
  auto serial = MakeComplEx(workload.num_entities, workload.num_relations, 8,
                            42);
  Trainer serial_trainer(serial.get(), options);
  ASSERT_TRUE(serial_trainer.Train(workload.train, nullptr).ok());

  options.num_threads = 4;
  auto parallel = MakeComplEx(workload.num_entities, workload.num_relations,
                              8, 42);
  Trainer parallel_trainer(parallel.get(), options);
  ASSERT_TRUE(parallel_trainer.Train(workload.train, nullptr).ok());

  EXPECT_GT(margin_of(*parallel), 0.5 * margin_of(*serial));
}

TEST(TrainerTest, ParallelFallsBackForLearnedWeightModel) {
  // LearnedWeightModel declares itself parallel-unsafe; training with
  // num_threads > 1 must still work (serially).
  const TinyWorkload workload = MakeTinyWorkload();
  LearnedWeightOptions lw_options;
  LearnedWeightModel model("m", workload.num_entities,
                           workload.num_relations, 8, lw_options, 1);
  EXPECT_FALSE(model.SupportsParallelGradients());
  TrainerOptions options = FastOptions();
  options.max_epochs = 3;
  options.num_threads = 4;
  Trainer trainer(&model, options);
  EXPECT_TRUE(trainer.Train(workload.train, nullptr).ok());
}

TEST(TrainerTest, CphViaWeightsMatchesCpViaAugmentedData) {
  // The paper's Eq. (11): CPh's weight-vector formulation is the same
  // model as CP trained on inverse-augmented data. Both formulations
  // should learn the inverse-pair structure (positives scored above
  // fresh negatives), in contrast to plain CP.
  const TinyWorkload workload = MakeTinyWorkload();
  TrainerOptions options = FastOptions();
  options.max_epochs = 60;

  // Formulation A: CPh weight table on the original data.
  auto cph = MakeCph(workload.num_entities, workload.num_relations, 16, 5);
  Trainer trainer_a(cph.get(), options);
  ASSERT_TRUE(trainer_a.Train(workload.train, nullptr).ok());

  // Formulation B: CP weight table on augmented data (relations doubled).
  const AugmentedTriples augmented =
      AugmentWithInverses(workload.train, workload.num_relations);
  auto cp_aug = MakeCp(workload.num_entities, augmented.num_relations, 16, 5);
  Trainer trainer_b(cp_aug.get(), options);
  ASSERT_TRUE(trainer_b.Train(augmented.triples, nullptr).ok());

  // Compare mean score margins between train positives and random
  // corruptions under each formulation.
  auto margin = [&](KgeModel& model) {
    Rng rng(9);
    double total = 0.0;
    for (const Triple& t : workload.train) {
      Triple corrupted = t;
      corrupted.tail =
          EntityId(rng.NextBounded(uint64_t(workload.num_entities)));
      total += model.Score(t) - model.Score(corrupted);
    }
    return total / double(workload.train.size());
  };
  EXPECT_GT(margin(*cph), 0.5);
  EXPECT_GT(margin(*cp_aug), 0.5);
}

}  // namespace
}  // namespace kge
