// Stress coverage for ThreadPool under contention: floods of small tasks,
// nested ParallelFor (which deadlocked before the pool learned to help
// drain the queue while waiting), Schedule-during-Wait chains, and
// concurrent ParallelFor calls from independent threads. Run these under
// -DKGE_SANITIZE=thread; every scenario is designed to give TSan real
// interleavings to check.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace kge {
namespace {

TEST(ThreadPoolStressTest, FloodOfSmallTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 20000;
  for (int i = 0; i < kTasks; ++i) {
    pool.Schedule([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolStressTest, RepeatedSmallParallelFors) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 300; ++round) {
    pool.ParallelFor(0, 7, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 300u * 7u);
}

TEST(ThreadPoolStressTest, NestedParallelFor) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 24;
  constexpr size_t kInner = 32;
  std::vector<std::atomic<int>> touched(kOuter * kInner);
  pool.ParallelFor(0, kOuter, [&](size_t obegin, size_t oend) {
    for (size_t o = obegin; o < oend; ++o) {
      pool.ParallelFor(0, kInner, [&, o](size_t ibegin, size_t iend) {
        for (size_t i = ibegin; i < iend; ++i) {
          touched[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolStressTest, TriplyNestedParallelForOnTinyPool) {
  // A two-worker pool with three nesting levels: progress is only
  // possible because waiting callers execute queued shards themselves.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(0, 4, [&](size_t b0, size_t e0) {
    for (size_t i0 = b0; i0 < e0; ++i0) {
      pool.ParallelFor(0, 4, [&](size_t b1, size_t e1) {
        for (size_t i1 = b1; i1 < e1; ++i1) {
          pool.ParallelFor(0, 4, [&](size_t b2, size_t e2) {
            leaves.fetch_add(int(e2 - b2), std::memory_order_relaxed);
          });
        }
      });
    }
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(ThreadPoolStressTest, ScheduleDuringWaitChain) {
  // Each task schedules its successor; Wait() must cover tasks scheduled
  // while it is already blocking.
  ThreadPool pool(3);
  std::atomic<int> hops{0};
  constexpr int kDepth = 500;
  std::function<void()> hop = [&] {
    if (hops.fetch_add(1, std::memory_order_relaxed) + 1 < kDepth) {
      pool.Schedule(hop);
    }
  };
  pool.Schedule(hop);
  pool.Wait();
  EXPECT_EQ(hops.load(), kDepth);
}

TEST(ThreadPoolStressTest, TasksFanOutDuringWait) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&] {
      for (int j = 0; j < 4; ++j) {
        pool.Schedule([&] { done.fetch_add(1, std::memory_order_relaxed); });
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50 * 5);
}

TEST(ThreadPoolStressTest, ConcurrentParallelForsFromExternalThreads) {
  // Several client threads share one pool; each ParallelFor call tracks
  // its own completion, so results must not bleed across calls.
  ThreadPool pool(4);
  constexpr int kClients = 6;
  constexpr size_t kItems = 2000;
  std::vector<size_t> sums(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::atomic<size_t> sum{0};
      pool.ParallelFor(0, kItems, [&](size_t begin, size_t end) {
        size_t local = 0;
        for (size_t i = begin; i < end; ++i) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      });
      sums[size_t(c)] = sum.load();
    });
  }
  for (std::thread& t : clients) t.join();
  const size_t expected = kItems * (kItems - 1) / 2;
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(sums[size_t(c)], expected);
}

TEST(ThreadPoolStressTest, NestedParallelForInInlineMode) {
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  pool.ParallelFor(0, 8, [&](size_t b0, size_t e0) {
    for (size_t i = b0; i < e0; ++i) {
      pool.ParallelFor(0, 8, [&](size_t b1, size_t e1) {
        leaves.fetch_add(int(e1 - b1), std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolStressTest, ManyPoolsConstructedAndDestroyed) {
  // Construction/destruction races (worker startup vs. shutdown flag).
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 16; ++i) {
      pool.Schedule([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 16);
  }
}

}  // namespace
}  // namespace kge
