#include "kg/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/io.h"

namespace kge {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(DatasetTest, ReadTripleFileHeadRelationTail) {
  const std::string path = TempPath("hrt.txt");
  ASSERT_TRUE(
      WriteStringToFile(path, "cat\tis_a\tanimal\ndog\tis_a\tanimal\n").ok());
  Dataset dataset;
  std::vector<Triple> triples;
  ASSERT_TRUE(ReadTripleFile(path, TripleFileFormat::kHeadRelationTail,
                             &dataset, &triples)
                  .ok());
  ASSERT_EQ(triples.size(), 2u);
  EXPECT_EQ(dataset.entities.NameOf(triples[0].head), "cat");
  EXPECT_EQ(dataset.entities.NameOf(triples[0].tail), "animal");
  EXPECT_EQ(dataset.relations.NameOf(triples[0].relation), "is_a");
  EXPECT_EQ(triples[1].tail, triples[0].tail);  // shared "animal"
  std::remove(path.c_str());
}

TEST(DatasetTest, ReadTripleFileHeadTailRelation) {
  const std::string path = TempPath("htr.txt");
  ASSERT_TRUE(WriteStringToFile(path, "cat\tanimal\tis_a\n").ok());
  Dataset dataset;
  std::vector<Triple> triples;
  ASSERT_TRUE(ReadTripleFile(path, TripleFileFormat::kHeadTailRelation,
                             &dataset, &triples)
                  .ok());
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(dataset.entities.NameOf(triples[0].tail), "animal");
  EXPECT_EQ(dataset.relations.NameOf(triples[0].relation), "is_a");
  std::remove(path.c_str());
}

TEST(DatasetTest, ReadSkipsBlankAndCommentLines) {
  const std::string path = TempPath("comments.txt");
  ASSERT_TRUE(
      WriteStringToFile(path, "# header\n\na\tr\tb\n   \nc\tr\td\n").ok());
  Dataset dataset;
  std::vector<Triple> triples;
  ASSERT_TRUE(ReadTripleFile(path, TripleFileFormat::kHeadRelationTail,
                             &dataset, &triples)
                  .ok());
  EXPECT_EQ(triples.size(), 2u);
  std::remove(path.c_str());
}

TEST(DatasetTest, ReadFallsBackToWhitespaceSplit) {
  const std::string path = TempPath("spaces.txt");
  ASSERT_TRUE(WriteStringToFile(path, "a r b\n").ok());
  Dataset dataset;
  std::vector<Triple> triples;
  ASSERT_TRUE(ReadTripleFile(path, TripleFileFormat::kHeadRelationTail,
                             &dataset, &triples)
                  .ok());
  EXPECT_EQ(triples.size(), 1u);
  std::remove(path.c_str());
}

TEST(DatasetTest, ReadRejectsMalformedLines) {
  const std::string path = TempPath("bad.txt");
  ASSERT_TRUE(WriteStringToFile(path, "only_two\tfields\n").ok());
  Dataset dataset;
  std::vector<Triple> triples;
  const Status status = ReadTripleFile(
      path, TripleFileFormat::kHeadRelationTail, &dataset, &triples);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetTest, ReadMissingFileFails) {
  Dataset dataset;
  std::vector<Triple> triples;
  EXPECT_FALSE(ReadTripleFile("/nonexistent/x.txt",
                              TripleFileFormat::kHeadRelationTail, &dataset,
                              &triples)
                   .ok());
}

TEST(DatasetTest, SaveLoadDirectoryRoundTrip) {
  Dataset dataset;
  const EntityId a = dataset.entities.GetOrAdd("a");
  const EntityId b = dataset.entities.GetOrAdd("b");
  const EntityId c = dataset.entities.GetOrAdd("c");
  const RelationId r = dataset.relations.GetOrAdd("r");
  dataset.train = {{a, b, r}, {b, c, r}, {c, a, r}};
  dataset.valid = {{a, c, r}};
  dataset.test = {{b, a, r}};

  const std::string dir = testing::TempDir();
  ASSERT_TRUE(SaveDatasetToDirectory(
                  dir, TripleFileFormat::kHeadRelationTail, dataset)
                  .ok());
  Result<Dataset> loaded =
      LoadDatasetFromDirectory(dir, TripleFileFormat::kHeadRelationTail);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->train.size(), 3u);
  EXPECT_EQ(loaded->valid.size(), 1u);
  EXPECT_EQ(loaded->test.size(), 1u);
  EXPECT_EQ(loaded->num_entities(), 3);
  EXPECT_EQ(loaded->num_relations(), 1);
  // Names survive.
  EXPECT_NE(loaded->entities.Find("a"), -1);
  for (const char* split : {"train.txt", "valid.txt", "test.txt"}) {
    std::remove((dir + "/" + split).c_str());
  }
}

TEST(DatasetTest, ValidatePassesOnConsistentDataset) {
  Dataset dataset;
  const EntityId a = dataset.entities.GetOrAdd("a");
  const EntityId b = dataset.entities.GetOrAdd("b");
  const RelationId r = dataset.relations.GetOrAdd("r");
  dataset.train = {{a, b, r}, {b, a, r}};
  dataset.valid = {{a, b, r}};
  dataset.test = {{b, a, r}};
  EXPECT_TRUE(dataset.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesOutOfRangeIds) {
  Dataset dataset;
  dataset.entities.GetOrAdd("a");
  dataset.relations.GetOrAdd("r");
  dataset.train = {{0, 7, 0}};  // tail id 7 does not exist
  EXPECT_EQ(dataset.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, ValidateCatchesUnseenTestEntity) {
  Dataset dataset;
  const EntityId a = dataset.entities.GetOrAdd("a");
  const EntityId b = dataset.entities.GetOrAdd("b");
  const EntityId c = dataset.entities.GetOrAdd("c");
  const RelationId r = dataset.relations.GetOrAdd("r");
  dataset.train = {{a, b, r}};
  dataset.test = {{a, c, r}};  // c never appears in train
  EXPECT_EQ(dataset.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, ValidateCatchesUnseenTestRelation) {
  Dataset dataset;
  const EntityId a = dataset.entities.GetOrAdd("a");
  const EntityId b = dataset.entities.GetOrAdd("b");
  const RelationId r0 = dataset.relations.GetOrAdd("r0");
  const RelationId r1 = dataset.relations.GetOrAdd("r1");
  dataset.train = {{a, b, r0}};
  dataset.valid = {{a, b, r1}};
  EXPECT_EQ(dataset.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, StatsStringMentionsCounts) {
  Dataset dataset;
  dataset.entities.GetOrAdd("a");
  const std::string stats = dataset.StatsString();
  EXPECT_NE(stats.find("entities=1"), std::string::npos);
  EXPECT_NE(stats.find("train=0"), std::string::npos);
}

}  // namespace
}  // namespace kge
