// Property tests on the evaluation protocol: invariants that must hold
// for ANY score function (random models included), exercised over seeded
// random score landscapes.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/evaluator.h"
#include "util/random.h"

namespace kge {
namespace {

// Random score model over a fixed entity count.
class RandomScoreModel : public KgeModel {
 public:
  RandomScoreModel(int32_t num_entities, uint64_t seed)
      : name_("Random"), num_entities_(num_entities), seed_(seed) {}

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return num_entities_; }
  int32_t num_relations() const override { return 4; }

  double Score(const Triple& t) const override {
    // Deterministic pseudo-random score per triple.
    uint64_t x = seed_ ^ (uint64_t(uint32_t(t.head)) << 40) ^
                 (uint64_t(uint32_t(t.tail)) << 16) ^ uint32_t(t.relation);
    return double(SplitMix64Next(&x) >> 11) * 0x1.0p-53;
  }
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override {
    for (EntityId t = 0; t < num_entities_; ++t) {
      out[size_t(t)] = float(Score({head, t, relation}));
    }
  }
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override {
    for (EntityId h = 0; h < num_entities_; ++h) {
      out[size_t(h)] = float(Score({h, tail, relation}));
    }
  }
  std::vector<ParameterBlock*> Blocks() override { return {}; }
  void AccumulateGradients(const Triple&, float, GradientBuffer*) override {}
  void NormalizeEntities(std::span<const EntityId>) override {}
  void InitParameters(uint64_t) override {}

 private:
  std::string name_;
  int32_t num_entities_;
  uint64_t seed_;
};

class ProtocolPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  static constexpr int32_t kEntities = 40;

  void SetUp() override {
    Rng rng(GetParam());
    for (int i = 0; i < 120; ++i) {
      triples_.push_back({EntityId(rng.NextBounded(kEntities)),
                          EntityId(rng.NextBounded(kEntities)),
                          RelationId(rng.NextBounded(4))});
    }
    // Split: first 80 "train", next 20 "valid", last 20 "test".
    train_.assign(triples_.begin(), triples_.begin() + 80);
    valid_.assign(triples_.begin() + 80, triples_.begin() + 100);
    test_.assign(triples_.begin() + 100, triples_.end());
    filter_.Build(train_, valid_, test_);
  }

  std::vector<Triple> triples_, train_, valid_, test_;
  FilterIndex filter_;
};

TEST_P(ProtocolPropertyTest, FilteredRankNeverWorseThanRaw) {
  RandomScoreModel model(kEntities, GetParam() * 31 + 7);
  Evaluator evaluator(&filter_, 4);
  std::vector<float> scores(kEntities);
  for (const Triple& triple : test_) {
    model.ScoreAllTails(triple.head, triple.relation, scores);
    EXPECT_LE(evaluator.RankTail(triple, scores, true),
              evaluator.RankTail(triple, scores, false));
    model.ScoreAllHeads(triple.tail, triple.relation, scores);
    EXPECT_LE(evaluator.RankHead(triple, scores, true),
              evaluator.RankHead(triple, scores, false));
  }
}

TEST_P(ProtocolPropertyTest, RanksAreWithinBounds) {
  RandomScoreModel model(kEntities, GetParam() * 17 + 3);
  Evaluator evaluator(&filter_, 4);
  std::vector<float> scores(kEntities);
  for (const Triple& triple : test_) {
    model.ScoreAllTails(triple.head, triple.relation, scores);
    const double rank = evaluator.RankTail(triple, scores, true);
    EXPECT_GE(rank, 1.0);
    EXPECT_LE(rank, double(kEntities));
  }
}

TEST_P(ProtocolPropertyTest, MetricsSatisfyOrderingInvariants) {
  RandomScoreModel model(kEntities, GetParam() * 13 + 1);
  Evaluator evaluator(&filter_, 4);
  const RankingMetrics metrics =
      evaluator.EvaluateOverall(model, test_, EvalOptions{});
  EXPECT_GE(metrics.Mrr(), 0.0);
  EXPECT_LE(metrics.Mrr(), 1.0);
  // Hits monotone in k; MRR dominates H@1.
  EXPECT_LE(metrics.HitsAt(1), metrics.HitsAt(3));
  EXPECT_LE(metrics.HitsAt(3), metrics.HitsAt(10));
  EXPECT_GE(metrics.Mrr() + 1e-12, metrics.HitsAt(1));
  // 2 queries per triple.
  EXPECT_EQ(metrics.count(), 2 * test_.size());
  EXPECT_GE(metrics.MeanRank(), 1.0);
}

TEST_P(ProtocolPropertyTest, EvaluationIsDeterministic) {
  RandomScoreModel model(kEntities, GetParam());
  Evaluator evaluator(&filter_, 4);
  const RankingMetrics a =
      evaluator.EvaluateOverall(model, test_, EvalOptions{});
  const RankingMetrics b =
      evaluator.EvaluateOverall(model, test_, EvalOptions{});
  EXPECT_EQ(a.Mrr(), b.Mrr());
  EXPECT_EQ(a.MeanRank(), b.MeanRank());
}

TEST_P(ProtocolPropertyTest, MonotoneScoreTransformPreservesRanks) {
  // Ranks depend only on score ordering: applying a strictly increasing
  // transform (2s + 1) must not change any rank.
  RandomScoreModel model(kEntities, GetParam() * 71 + 11);
  Evaluator evaluator(&filter_, 4);
  std::vector<float> scores(kEntities);
  std::vector<float> transformed(kEntities);
  for (const Triple& triple : test_) {
    model.ScoreAllTails(triple.head, triple.relation, scores);
    for (int32_t e = 0; e < kEntities; ++e) {
      transformed[size_t(e)] = 2.0f * scores[size_t(e)] + 1.0f;
    }
    EXPECT_EQ(evaluator.RankTail(triple, scores, true),
              evaluator.RankTail(triple, transformed, true));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace kge
