// ScoringReplica contract tests (core/scoring_replica.h): per-row
// absmax/127 quantization, the int8 saturation edge cases, and the
// generation-stamp staleness protocol that keeps the replica synced to
// its master ParameterBlock across training updates. The model-level
// tests pin PrepareForScoring + the precision-tiered batched scorers to
// the exact double tier within quantization error.
#include "core/scoring_replica.h"

#include <cmath>
#include <vector>

#include "core/parameter_block.h"
#include "gtest/gtest.h"
#include "models/trilinear_models.h"

namespace kge {
namespace {

TEST(ScorePrecisionTest, NamesAndParsingRoundTrip) {
  EXPECT_STREQ(ScorePrecisionName(ScorePrecision::kDouble), "double");
  EXPECT_STREQ(ScorePrecisionName(ScorePrecision::kFloat32), "float32");
  EXPECT_STREQ(ScorePrecisionName(ScorePrecision::kInt8), "int8");
  for (const ScorePrecision p :
       {ScorePrecision::kDouble, ScorePrecision::kFloat32,
        ScorePrecision::kInt8}) {
    ScorePrecision parsed = ScorePrecision::kDouble;
    EXPECT_TRUE(ParseScorePrecision(ScorePrecisionName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  ScorePrecision parsed = ScorePrecision::kInt8;
  EXPECT_FALSE(ParseScorePrecision("fp16", &parsed));
  EXPECT_FALSE(ParseScorePrecision("", &parsed));
  EXPECT_FALSE(ParseScorePrecision("Double", &parsed));
  // A failed parse leaves the output untouched.
  EXPECT_EQ(parsed, ScorePrecision::kInt8);
}

TEST(ScoringReplicaTest, MasterReadingTiersAreAlwaysFresh) {
  ParameterBlock block("entities", 4, 8);
  ScoringReplica replica(&block);
  EXPECT_TRUE(replica.IsFresh(ScorePrecision::kDouble));
  EXPECT_TRUE(replica.IsFresh(ScorePrecision::kFloat32));
  EXPECT_FALSE(replica.IsFresh(ScorePrecision::kInt8));
  // EnsureFresh on the master-reading tiers materializes nothing.
  replica.EnsureFresh(ScorePrecision::kDouble);
  replica.EnsureFresh(ScorePrecision::kFloat32);
  EXPECT_EQ(replica.built_generation(), 0u);
}

TEST(ScoringReplicaTest, PerRowScalesAreAbsmaxOver127) {
  ParameterBlock block("entities", 3, 4);
  {
    const std::span<float> row0 = block.Row(0);
    row0[0] = 0.5f, row0[1] = -4.0f, row0[2] = 1.0f, row0[3] = 4.0f;
    const std::span<float> row1 = block.Row(1);
    row1[0] = 1.0f, row1[1] = -1.0f, row1[2] = 0.25f, row1[3] = 0.0f;
    // Row 2 stays all-zero.
  }
  ScoringReplica replica(&block);
  replica.EnsureFresh(ScorePrecision::kInt8);

  const std::span<const float> scales = replica.Int8Scales();
  ASSERT_EQ(scales.size(), 3u);
  EXPECT_EQ(scales[0], 4.0f / 127.0f);
  EXPECT_EQ(scales[1], 1.0f / 127.0f);
  EXPECT_EQ(scales[2], 0.0f);  // all-zero row: scale 0, not NaN/inf

  const std::span<const std::int8_t> codes = replica.Int8Rows();
  ASSERT_EQ(codes.size(), 12u);
  // Saturation: the absmax elements map to exactly +/-127.
  EXPECT_EQ(codes[1], std::int8_t(-127));
  EXPECT_EQ(codes[3], std::int8_t(127));
  EXPECT_EQ(codes[4], std::int8_t(127));
  EXPECT_EQ(codes[5], std::int8_t(-127));
  // All-zero row quantizes to all-zero codes.
  for (size_t d = 8; d < 12; ++d) EXPECT_EQ(codes[d], std::int8_t(0));
  // Nothing ever leaves [-127, 127] (so negation is always exact).
  for (const std::int8_t c : codes) {
    EXPECT_GE(c, std::int8_t(-127));
    EXPECT_LE(c, std::int8_t(127));
  }
}

TEST(ScoringReplicaTest, RoundTripErrorBoundedByHalfScale) {
  ParameterBlock block("entities", 5, 16);
  Rng rng(7);
  block.InitUniform(&rng, -2.0f, 2.0f);
  ScoringReplica replica(&block);
  replica.EnsureFresh(ScorePrecision::kInt8);
  const std::span<const float> master =
      static_cast<const ParameterBlock&>(block).Flat();
  const std::span<const std::int8_t> codes = replica.Int8Rows();
  const std::span<const float> scales = replica.Int8Scales();
  for (size_t row = 0; row < 5; ++row) {
    for (size_t d = 0; d < 16; ++d) {
      const float x = master[row * 16 + d];
      const float back = scales[row] * float(codes[row * 16 + d]);
      EXPECT_LE(std::fabs(x - back), scales[row] * 0.5f + 1e-7f)
          << "row=" << row << " d=" << d;
    }
  }
}

TEST(ScoringReplicaTest, GenerationStalenessTriggersRebuild) {
  ParameterBlock block("entities", 2, 4);
  block.Row(0)[0] = 1.0f;
  ScoringReplica replica(&block);

  replica.EnsureFresh(ScorePrecision::kInt8);
  const uint64_t built = replica.built_generation();
  EXPECT_EQ(built, block.generation());
  EXPECT_TRUE(replica.IsFresh(ScorePrecision::kInt8));
  EXPECT_EQ(replica.Int8Rows()[0], std::int8_t(127));

  // EnsureFresh on a fresh replica is a stamp comparison, not a rebuild.
  replica.EnsureFresh(ScorePrecision::kInt8);
  EXPECT_EQ(replica.built_generation(), built);

  // Const reads never invalidate…
  const ParameterBlock& const_block = block;
  (void)const_block.Flat();
  (void)const_block.Row(0);
  EXPECT_TRUE(replica.IsFresh(ScorePrecision::kInt8));

  // …every mutable access does, and the rebuild sees the new values.
  block.Row(0)[1] = -2.0f;
  EXPECT_FALSE(replica.IsFresh(ScorePrecision::kInt8));
  replica.EnsureFresh(ScorePrecision::kInt8);
  EXPECT_GT(replica.built_generation(), built);
  EXPECT_EQ(replica.built_generation(), block.generation());
  EXPECT_EQ(replica.Int8Scales()[0], 2.0f / 127.0f);
  EXPECT_EQ(replica.Int8Rows()[1], std::int8_t(-127));
}

TEST(ScoringReplicaTest, InitializersInvalidateToo) {
  ParameterBlock block("entities", 2, 4);
  ScoringReplica replica(&block);
  replica.EnsureFresh(ScorePrecision::kInt8);
  EXPECT_TRUE(replica.IsFresh(ScorePrecision::kInt8));
  Rng rng(3);
  block.InitGaussian(&rng, 0.1f);
  EXPECT_FALSE(replica.IsFresh(ScorePrecision::kInt8));
  replica.EnsureFresh(ScorePrecision::kInt8);
  block.Zero();
  EXPECT_FALSE(replica.IsFresh(ScorePrecision::kInt8));
  replica.EnsureFresh(ScorePrecision::kInt8);
  EXPECT_EQ(replica.Int8Scales()[0], 0.0f);
}

// ---- Model-level integration ----------------------------------------------

TEST(ScoringReplicaTest, ModelTiersApproximateDoubleTier) {
  const int32_t num_entities = 50;
  const int32_t num_relations = 4;
  const int32_t dim = 8;
  std::unique_ptr<MultiEmbeddingModel> model =
      MakeComplEx(num_entities, num_relations, dim, /*seed=*/11);

  const std::vector<EntityId> heads = {0, 7, 13, 49};
  const size_t cells = heads.size() * size_t(num_entities);
  std::vector<float> exact(cells), f32(cells), i8(cells);

  model->PrepareForScoring(ScorePrecision::kInt8);
  model->ScoreAllTailsBatch(heads, 1, std::span<float>(exact),
                            ScorePrecision::kDouble);
  model->ScoreAllTailsBatch(heads, 1, std::span<float>(f32),
                            ScorePrecision::kFloat32);
  model->ScoreAllTailsBatch(heads, 1, std::span<float>(i8),
                            ScorePrecision::kInt8);

  for (size_t c = 0; c < cells; ++c) {
    // Xavier-initialized 8-d ComplEx scores are O(1); float accumulation
    // error is ~1e-6 relative, int8 error bounded by the absmax/254
    // per-element quantization step summed over 2*dim terms.
    EXPECT_NEAR(double(f32[c]), double(exact[c]), 1e-5) << "cell=" << c;
    EXPECT_NEAR(double(i8[c]), double(exact[c]), 0.05) << "cell=" << c;
  }

  // The head-side scorer dispatches the same way.
  std::vector<float> exact_h(cells), i8_h(cells);
  model->ScoreAllHeadsBatch(heads, 1, std::span<float>(exact_h),
                            ScorePrecision::kDouble);
  model->ScoreAllHeadsBatch(heads, 1, std::span<float>(i8_h),
                            ScorePrecision::kInt8);
  for (size_t c = 0; c < cells; ++c) {
    EXPECT_NEAR(double(i8_h[c]), double(exact_h[c]), 0.05) << "cell=" << c;
  }
}

TEST(ScoringReplicaTest, PrepareForScoringTracksTrainingUpdates) {
  std::unique_ptr<MultiEmbeddingModel> model =
      MakeComplEx(20, 2, 4, /*seed=*/5);
  const std::vector<EntityId> heads = {3};
  std::vector<float> before(20), after(20), exact(20);

  model->PrepareForScoring(ScorePrecision::kInt8);
  model->ScoreAllTailsBatch(heads, 0, std::span<float>(before),
                            ScorePrecision::kInt8);

  // Mutate the entity table the way an optimizer step would.
  ParameterBlock* entity_block = model->Blocks()[0];
  for (int64_t row = 0; row < entity_block->num_rows(); ++row) {
    for (float& x : entity_block->Row(row)) x = -x;
  }

  // Negating every entity row negates both the fold and the candidate,
  // so the exact tail scores are unchanged — but a STALE replica would
  // pair the negated fold with the old candidate codes and produce the
  // negated scores. Tracking `exact` after the refresh therefore fails
  // unless PrepareForScoring actually requantized.
  model->PrepareForScoring(ScorePrecision::kInt8);
  model->ScoreAllTailsBatch(heads, 0, std::span<float>(after),
                            ScorePrecision::kInt8);
  model->ScoreAllTailsBatch(heads, 0, std::span<float>(exact),
                            ScorePrecision::kDouble);
  for (size_t e = 0; e < 20; ++e) {
    EXPECT_NEAR(double(after[e]), double(exact[e]), 0.05) << "e=" << e;
  }

  // The model reports support for every tier; the base-class default
  // (double only) is what non-trilinear models inherit.
  EXPECT_TRUE(model->SupportsScorePrecision(ScorePrecision::kInt8));
  EXPECT_TRUE(model->SupportsScorePrecision(ScorePrecision::kFloat32));
  EXPECT_TRUE(model->SupportsScorePrecision(ScorePrecision::kDouble));
}

}  // namespace
}  // namespace kge
