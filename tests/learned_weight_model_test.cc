#include "models/learned_weight_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kge {
namespace {

constexpr int32_t kEntities = 15;
constexpr int32_t kRelations = 3;
constexpr int32_t kDim = 6;
constexpr uint64_t kSeed = 21;

LearnedWeightOptions DefaultOptions() {
  LearnedWeightOptions options;
  options.ne = 2;
  options.nr = 2;
  return options;
}

TEST(LearnedWeightModelTest, ExposesThreeBlocks) {
  LearnedWeightModel model("m", kEntities, kRelations, kDim, DefaultOptions(),
                           kSeed);
  const auto blocks = model.Blocks();
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[LearnedWeightModel::kOmegaBlock]->name(), "omega_raw");
  EXPECT_EQ(blocks[LearnedWeightModel::kOmegaBlock]->size(), 8);
}

TEST(LearnedWeightModelTest, StartsUniformUnderNoRestriction) {
  LearnedWeightModel model("m", kEntities, kRelations, kDim, DefaultOptions(),
                           kSeed);
  for (float w : model.CurrentOmega()) EXPECT_EQ(w, 1.0f);
}

TEST(LearnedWeightModelTest, SoftmaxRestrictionNormalizesOmega) {
  LearnedWeightOptions options = DefaultOptions();
  options.restriction = RestrictionKind::kSoftmax;
  LearnedWeightModel model("m", kEntities, kRelations, kDim, options, kSeed);
  const auto omega = model.CurrentOmega();
  double sum = 0.0;
  for (float w : omega) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-5);
  for (float w : omega) EXPECT_NEAR(w, 1.0 / 8.0, 1e-5);
}

TEST(LearnedWeightModelTest, TanhRestrictionBoundsOmega) {
  LearnedWeightOptions options = DefaultOptions();
  options.restriction = RestrictionKind::kTanh;
  options.initial_raw_weight = 5.0f;
  LearnedWeightModel model("m", kEntities, kRelations, kDim, options, kSeed);
  for (float w : model.CurrentOmega()) {
    EXPECT_LE(w, 1.0f);
    EXPECT_NEAR(w, std::tanh(5.0), 1e-4);
  }
}

TEST(LearnedWeightModelTest, OmegaGradientFlowsThroughFinishBatch) {
  LearnedWeightModel model("m", kEntities, kRelations, kDim, DefaultOptions(),
                           kSeed);
  GradientBuffer grads(model.Blocks());
  model.BeginBatch();
  model.AccumulateGradients({1, 2, 0}, 1.0f, &grads);
  model.FinishBatch(&grads);
  const auto omega_grad =
      grads.GradFor(LearnedWeightModel::kOmegaBlock, 0);
  double total = 0.0;
  for (float g : omega_grad) total += std::fabs(g);
  EXPECT_GT(total, 0.0);
}

TEST(LearnedWeightModelTest, FullParameterGradientFiniteDifference) {
  // End-to-end gradient check through restriction: L = dscore * S(triple)
  // as a function of the raw weights ρ.
  LearnedWeightOptions options = DefaultOptions();
  options.restriction = RestrictionKind::kSoftmax;
  LearnedWeightModel model("m", kEntities, kRelations, kDim, options, kSeed);
  const Triple triple{3, 4, 1};

  GradientBuffer grads(model.Blocks());
  model.BeginBatch();
  model.AccumulateGradients(triple, 1.0f, &grads);
  model.FinishBatch(&grads);
  const auto analytic = grads.GradFor(LearnedWeightModel::kOmegaBlock, 0);

  ParameterBlock* raw = model.Blocks()[LearnedWeightModel::kOmegaBlock];
  const double eps = 1e-3;
  for (int64_t m = 0; m < raw->size(); ++m) {
    const float saved = raw->Row(0)[size_t(m)];
    raw->Row(0)[size_t(m)] = saved + float(eps);
    model.RefreshWeights();
    const double plus = model.Score(triple);
    raw->Row(0)[size_t(m)] = saved - float(eps);
    model.RefreshWeights();
    const double minus = model.Score(triple);
    raw->Row(0)[size_t(m)] = saved;
    model.RefreshWeights();
    EXPECT_NEAR(analytic[size_t(m)], (plus - minus) / (2 * eps), 1e-2)
        << "raw weight " << m;
  }
}

TEST(LearnedWeightModelTest, DirichletAddsLossAndGradient) {
  LearnedWeightOptions options = DefaultOptions();
  DirichletOptions dirichlet;
  dirichlet.alpha = 1.0 / 16.0;
  dirichlet.lambda = 1e-2;
  options.dirichlet = dirichlet;
  LearnedWeightModel model("m", kEntities, kRelations, kDim, options, kSeed);

  GradientBuffer grads(model.Blocks());
  model.BeginBatch();
  const double extra = model.FinishBatch(&grads);
  EXPECT_GT(std::fabs(extra), 0.0);
}

TEST(LearnedWeightModelTest, NoDirichletMeansZeroExtraLoss) {
  LearnedWeightModel model("m", kEntities, kRelations, kDim, DefaultOptions(),
                           kSeed);
  GradientBuffer grads(model.Blocks());
  model.BeginBatch();
  EXPECT_EQ(model.FinishBatch(&grads), 0.0);
}

TEST(LearnedWeightModelTest, FactoryNamesDescribeConfiguration) {
  LearnedWeightOptions options = DefaultOptions();
  options.restriction = RestrictionKind::kSigmoid;
  auto plain = MakeLearnedWeightModel(kEntities, kRelations, kDim, options,
                                      kSeed);
  EXPECT_EQ(plain->name(), "AutoWeight[sigmoid]");
  options.dirichlet = DirichletOptions{};
  auto sparse = MakeLearnedWeightModel(kEntities, kRelations, kDim, options,
                                       kSeed);
  EXPECT_EQ(sparse->name(), "AutoWeight[sigmoid,sparse]");
}

TEST(LearnedWeightModelTest, UniformOmegaGivesSymmetricScores) {
  // §6.2: the uniform weight vector is symmetric — the learned-ω model at
  // its initialization scores (h,t,r) and (t,h,r) identically.
  LearnedWeightModel model("m", kEntities, kRelations, kDim, DefaultOptions(),
                           kSeed);
  EXPECT_NEAR(model.Score({1, 2, 0}), model.Score({2, 1, 0}), 1e-5);
}

}  // namespace
}  // namespace kge
