#include "models/conve.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kge {
namespace {

constexpr int32_t kEntities = 10;
constexpr int32_t kRelations = 3;
constexpr uint64_t kSeed = 71;

ConvEOptions SmallOptions() {
  ConvEOptions options;
  options.dim = 12;
  options.grid_height = 3;
  options.grid_width = 4;
  options.num_filters = 2;
  return options;
}

TEST(ConvETest, ShapeAndBlocks) {
  auto model = MakeConvE(kEntities, kRelations, SmallOptions(), kSeed);
  EXPECT_EQ(model->name(), "ConvE");
  EXPECT_EQ(model->dim(), 12);
  EXPECT_EQ(model->Blocks().size(), 7u);
  EXPECT_GT(model->NumParameters(), 0);
}

TEST(ConvETest, RejectsNonFactoringGrid) {
  ConvEOptions options = SmallOptions();
  options.grid_width = 5;  // 3*5 != 12
  EXPECT_DEATH({ MakeConvE(kEntities, kRelations, options, kSeed); },
               "KGE_CHECK");
}

TEST(ConvETest, ScoreAllTailsAgreesWithScore) {
  auto model = MakeConvE(kEntities, kRelations, SmallOptions(), kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllTails(1, 2, scores);
  for (EntityId t = 0; t < kEntities; ++t) {
    EXPECT_NEAR(scores[size_t(t)], model->Score({1, t, 2}), 1e-5);
  }
}

TEST(ConvETest, ScoreAllHeadsAgreesWithScore) {
  auto model = MakeConvE(kEntities, kRelations, SmallOptions(), kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllHeads(7, 0, scores);
  for (EntityId h = 0; h < kEntities; ++h) {
    EXPECT_NEAR(scores[size_t(h)], model->Score({h, 7, 0}), 1e-5);
  }
}

TEST(ConvETest, EntityBiasShiftsScoresAdditively) {
  auto model = MakeConvE(kEntities, kRelations, SmallOptions(), kSeed);
  const Triple triple{0, 5, 1};
  const double before = model->Score(triple);
  model->Blocks()[ConvE::kEntityBias]->Row(5)[0] += 2.5f;
  EXPECT_NEAR(model->Score(triple), before + 2.5, 1e-5);
}

TEST(ConvETest, GradientsMatchFiniteDifferences) {
  auto model = MakeConvE(kEntities, kRelations, SmallOptions(), kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{2, 6, 1};
  const float dscore = 0.9f;
  model->AccumulateGradients(triple, dscore, &grads);

  struct Case {
    size_t block;
    int64_t row;
    size_t stride;
  };
  const std::vector<Case> cases = {
      {ConvE::kEntityBlock, 2, 1},      // head
      {ConvE::kEntityBlock, 6, 1},      // tail
      {ConvE::kRelationBlock, 1, 1},    // relation
      {ConvE::kConvFilters, 0, 2},      // first filter
      {ConvE::kConvBias, 0, 1},
      {ConvE::kProjectionWeights, 0, 5},
      {ConvE::kProjectionWeights, 3, 5},
      {ConvE::kProjectionBias, 0, 3},
      {ConvE::kEntityBias, 6, 1},
  };
  const double eps = 1e-3;
  for (const Case& c : cases) {
    const auto grad = grads.GradFor(c.block, c.row);
    auto params = model->Blocks()[c.block]->Row(c.row);
    for (size_t i = 0; i < params.size(); i += c.stride) {
      const float saved = params[i];
      params[i] = saved + float(eps);
      const double plus = model->Score(triple);
      params[i] = saved - float(eps);
      const double minus = model->Score(triple);
      params[i] = saved;
      EXPECT_NEAR(grad[i], dscore * (plus - minus) / (2 * eps), 2e-2)
          << "block " << c.block << " row " << c.row << " coord " << i;
    }
  }
}

TEST(ConvETest, AsymmetricScores) {
  auto model = MakeConvE(kEntities, kRelations, SmallOptions(), kSeed);
  EXPECT_GT(std::fabs(model->Score({1, 2, 0}) - model->Score({2, 1, 0})),
            1e-9);
}

TEST(ConvETest, LearnsToSeparateOnePair) {
  auto model = MakeConvE(kEntities, kRelations, SmallOptions(), kSeed);
  const Triple positive{0, 1, 0};
  const Triple negative{0, 2, 0};
  GradientBuffer grads(model->Blocks());
  for (int step = 0; step < 150; ++step) {
    grads.Clear();
    model->AccumulateGradients(positive, -0.1f, &grads);
    model->AccumulateGradients(negative, 0.1f, &grads);
    grads.ForEach(
        [&](size_t block, int64_t row, std::span<const float> grad) {
          auto params = model->Blocks()[block]->Row(row);
          for (size_t i = 0; i < grad.size(); ++i) {
            params[i] -= 0.1f * grad[i];
          }
        });
  }
  EXPECT_GT(model->Score(positive), model->Score(negative) + 0.5);
}

}  // namespace
}  // namespace kge
