#include "models/reciprocal_wrapper.h"

#include <gtest/gtest.h>

#include "datagen/pattern_kg_generator.h"
#include "eval/evaluator.h"
#include "kg/augmentation.h"
#include "models/trilinear_models.h"
#include "train/one_vs_all.h"
#include "train/trainer.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 50;
constexpr int32_t kRelations = 2;

TEST(ReciprocalWrapperTest, PresentsOriginalRelationCount) {
  auto base = MakeCp(kEntities, 2 * kRelations, 8, 1);
  ReciprocalWrapper wrapper(base.get(), kRelations);
  EXPECT_EQ(wrapper.num_relations(), kRelations);
  EXPECT_EQ(wrapper.num_entities(), kEntities);
  EXPECT_EQ(wrapper.name(), "CP+reciprocal");
}

TEST(ReciprocalWrapperTest, RejectsNonAugmentedBase) {
  auto base = MakeCp(kEntities, 3, 8, 1);  // odd count: not augmented
  EXPECT_DEATH({ ReciprocalWrapper wrapper(base.get(), 2); }, "KGE_CHECK");
}

TEST(ReciprocalWrapperTest, TailQueriesDelegateUnchanged) {
  auto base = MakeCp(kEntities, 2 * kRelations, 8, 1);
  ReciprocalWrapper wrapper(base.get(), kRelations);
  std::vector<float> base_scores(kEntities), wrapped_scores(kEntities);
  base->ScoreAllTails(3, 1, base_scores);
  wrapper.ScoreAllTails(3, 1, wrapped_scores);
  EXPECT_EQ(base_scores, wrapped_scores);
}

TEST(ReciprocalWrapperTest, HeadQueriesUseAugmentedRelation) {
  auto base = MakeCp(kEntities, 2 * kRelations, 8, 1);
  ReciprocalWrapper wrapper(base.get(), kRelations);
  std::vector<float> expected(kEntities), actual(kEntities);
  // Head query for relation 1 == tail query for relation 1 + kRelations.
  base->ScoreAllTails(7, 1 + kRelations, expected);
  wrapper.ScoreAllHeads(7, 1, actual);
  EXPECT_EQ(expected, actual);
}

TEST(ReciprocalWrapperTest, RepairsAugmentedCpEvaluation) {
  // Train CP on inverse-augmented data with the 1-N regime — which only
  // ever issues TAIL queries, as in Lacroix et al. — then compare naive
  // evaluation (the never-trained head direction) against reciprocal
  // evaluation: the reciprocal protocol must be markedly better.
  PatternKgOptions options;
  options.num_entities = kEntities;
  options.seed = 7;
  options.relations = {{RelationPattern::kInversePair, 120, ""}};
  const auto all = GeneratePatternKg(options, nullptr);
  // The generator emits inverse pairs adjacently as [(a,b,r0), (b,a,r1)].
  // Hold out ONE direction of every 4th pair, keeping its inverse in
  // train — the WN18-style leakage that makes the task learnable.
  std::vector<Triple> train_split, test_split;
  for (size_t i = 0; i + 1 < all.size(); i += 2) {
    train_split.push_back(all[i]);
    if (i % 8 == 0) {
      test_split.push_back(all[i + 1]);
    } else {
      train_split.push_back(all[i + 1]);
    }
  }

  const AugmentedTriples augmented =
      AugmentWithInverses(train_split, kRelations);
  auto cp = MakeCp(kEntities, augmented.num_relations, 16, 3);
  OneVsAllOptions trainer_options;
  trainer_options.max_epochs = 150;
  trainer_options.learning_rate = 0.02;
  OneVsAllTrainer trainer(cp.get(), trainer_options);
  ASSERT_TRUE(trainer.Train(augmented.triples, nullptr).ok());

  FilterIndex filter;
  filter.Build(train_split, {}, test_split);
  Evaluator evaluator(&filter, kRelations);
  EvalOptions eval_options;

  const double naive =
      evaluator.EvaluateOverall(*cp, test_split, eval_options).Mrr();
  ReciprocalWrapper wrapper(cp.get(), kRelations);
  const double reciprocal =
      evaluator.EvaluateOverall(wrapper, test_split, eval_options).Mrr();
  EXPECT_GT(reciprocal, naive + 0.1)
      << "naive " << naive << " reciprocal " << reciprocal;
}

}  // namespace
}  // namespace kge
