// Property sweep for the sharded/pruned top-k and rank scans: for every
// trilinear model, scoring precision, and shard count, the pruned result
// must equal the exhaustive one EXACTLY — same entities, same float
// scores, same tie-breaks. Pruning is a work optimization (skipped
// tiles), never an answer approximation, and sharding is a partition of
// the candidate range whose merge is total-order deterministic. The
// sweep runs on norm-skewed models (where tiles actually get skipped)
// and on adversarial edge cases: all-tied scores, exclusions that leave
// fewer than k survivors, and k larger than the vocabulary.
//
// Also runs under TSan in CI (tests are built per-sanitizer), which
// checks the PrepareForPrunedScoring -> concurrent-scan handoff.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/topk_heap.h"
#include "datagen/wordnet_like_generator.h"
#include "eval/evaluator.h"
#include "eval/topk.h"
#include "kg/filter_index.h"
#include "models/trilinear_models.h"
#include "util/random.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 2000;
constexpr int32_t kRelations = 6;
constexpr int kTopK = 10;
const int kShardCounts[] = {1, 2, 7};
const ScorePrecision kPrecisions[] = {
    ScorePrecision::kDouble, ScorePrecision::kFloat32,
    ScorePrecision::kInt8};

// Decaying per-row norms, like a frequency-sorted trained vocabulary —
// the profile tile pruning exists for. Without the skew, bounds rarely
// beat the running threshold and the pruned branch would go untested.
void SkewEntityNorms(MultiEmbeddingModel* model) {
  const int32_t n = model->num_entities();
  for (int32_t e = 0; e < n; ++e) {
    const double u = double(e) / double(n);
    const float scale = 0.05f + 0.95f * float(std::exp(-8.0 * u));
    for (float& x : model->entity_store().Of(e)) x *= scale;
  }
}

struct NamedModel {
  std::string name;
  std::unique_ptr<MultiEmbeddingModel> model;
};

std::vector<NamedModel> MakeSkewedModels(uint64_t seed) {
  std::vector<NamedModel> models;
  models.push_back({"DistMult", MakeDistMult(kEntities, kRelations, 16, seed)});
  models.push_back({"ComplEx", MakeComplEx(kEntities, kRelations, 8, seed)});
  models.push_back({"CP", MakeCp(kEntities, kRelations, 8, seed)});
  models.push_back({"CPh", MakeCph(kEntities, kRelations, 8, seed)});
  for (NamedModel& m : models) SkewEntityNorms(m.model.get());
  return models;
}

using Heap = TopKHeap<float, EntityId>;

// The production sharded+pruned selection (eval/topk.cc SelectTopK,
// serve/micro_batcher.cc ReduceQuerySharded): prime a shared floor from
// an exhaustive prefix, then per-shard pruned scans merged in order.
void ShardedTopK(const MultiEmbeddingModel& model, EntityId head,
                 RelationId relation, std::span<const EntityId> excluded,
                 ScorePrecision precision, int shards, bool prune, int k,
                 Heap* merged, RankScanStats* stats) {
  const EntityId n = model.num_entities();
  Heap shard_heap(k);
  float floor = 0.0f;
  bool have_floor = false;
  if (prune && shards > 1) {
    const int64_t prime_span =
        std::max<int64_t>(k, int64_t(KgeModel::kPrunePrimePrefix)) +
        int64_t(excluded.size());
    const EntityId prime_end =
        EntityId(std::min<int64_t>(int64_t(n), prime_span));
    model.TopKTailsInRange(head, relation, 0, prime_end, excluded, precision,
                           /*prune=*/false, &shard_heap, stats);
    if (shard_heap.full()) {
      floor = shard_heap.WorstScore();
      have_floor = true;
    }
  }
  merged->ResetCapacity(k);
  for (int s = 0; s < shards; ++s) {
    Heap* heap = shards == 1 ? merged : &shard_heap;
    if (shards != 1) {
      shard_heap.ResetCapacity(k);
      if (have_floor) shard_heap.SetPruneFloor(floor);
    }
    model.TopKTailsInRange(head, relation, ShardBegin(n, shards, s),
                           ShardBegin(n, shards, s + 1), excluded, precision,
                           prune, heap, stats);
    if (shards != 1) merged->MergeFrom(shard_heap);
  }
}

void ExpectSameTopK(std::span<const Heap::Entry> expect,
                    std::span<const Heap::Entry> got,
                    const std::string& label) {
  ASSERT_EQ(expect.size(), got.size()) << label;
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].entity, got[i].entity) << label << " position " << i;
    // Exact float equality on purpose: pruning and sharding must not
    // change a single bit of any kept score.
    EXPECT_EQ(expect[i].score, got[i].score) << label << " position " << i;
  }
}

TEST(PrunedTopKProperty, AllModelsPrecisionsAndShardCountsMatchExhaustive) {
  Rng rng(1234);
  for (NamedModel& nm : MakeSkewedModels(7)) {
    const MultiEmbeddingModel& model = *nm.model;
    for (const ScorePrecision precision : kPrecisions) {
      if (!model.SupportsScorePrecision(precision)) continue;
      model.PrepareForPrunedScoring(precision);
      Heap exhaustive(kTopK);
      Heap candidate(kTopK);
      RankScanStats skip_stats;
      for (int q = 0; q < 12; ++q) {
        const EntityId head = EntityId(rng.NextBounded(kEntities));
        const RelationId relation = RelationId(rng.NextBounded(kRelations));
        exhaustive.ResetCapacity(kTopK);
        model.TopKTailsInRange(head, relation, 0, kEntities, {}, precision,
                               /*prune=*/false, &exhaustive, &skip_stats);
        const auto expect = exhaustive.TakeSorted();
        for (const int shards : kShardCounts) {
          for (const bool prune : {false, true}) {
            RankScanStats stats;
            ShardedTopK(model, head, relation, {}, precision, shards, prune,
                        kTopK, &candidate, &stats);
            ExpectSameTopK(expect, candidate.TakeSorted(),
                           nm.name + " precision=" +
                               std::string(ScorePrecisionName(precision)) +
                               " shards=" + std::to_string(shards) +
                               " prune=" + std::to_string(prune));
          }
        }
      }
    }
  }
}

TEST(PrunedTopKProperty, PruningActuallySkipsTilesOnSkewedModels) {
  // Guards against the pruning predicate silently never firing (the
  // exactness sweep above would still pass). Skewed DistMult at kDouble
  // must skip a nonzero fraction of tiles both single- and multi-shard.
  auto model = MakeDistMult(kEntities, kRelations, 16, 7);
  SkewEntityNorms(model.get());
  model->PrepareForPrunedScoring(ScorePrecision::kDouble);
  Rng rng(99);
  Heap heap(kTopK);
  for (const int shards : kShardCounts) {
    RankScanStats stats;
    for (int q = 0; q < 12; ++q) {
      const EntityId head = EntityId(rng.NextBounded(kEntities));
      const RelationId relation = RelationId(rng.NextBounded(kRelations));
      ShardedTopK(*model, head, relation, {}, ScorePrecision::kDouble,
                  shards, /*prune=*/true, kTopK, &heap, &stats);
    }
    EXPECT_GT(stats.tiles_skipped, 0u) << "shards=" << shards;
    EXPECT_LT(stats.tiles_skipped, stats.tiles_total);
  }
}

TEST(PrunedTopKProperty, AllTiedScoresKeepSmallestIds) {
  // Zeroed embeddings: every candidate scores exactly 0, every tile
  // bound is 0, and the tie-break must hand back ids 0..k-1 for every
  // shard/prune combination (equality never skips a tile).
  auto model = MakeDistMult(kEntities, kRelations, 16, 7);
  model->entity_store().block()->Zero();
  model->PrepareForPrunedScoring(ScorePrecision::kDouble);
  Heap heap(kTopK);
  for (const int shards : kShardCounts) {
    for (const bool prune : {false, true}) {
      RankScanStats stats;
      ShardedTopK(*model, 3, 1, {}, ScorePrecision::kDouble, shards, prune,
                  kTopK, &heap, &stats);
      const auto sorted = heap.TakeSorted();
      ASSERT_EQ(sorted.size(), size_t(kTopK));
      for (int i = 0; i < kTopK; ++i) {
        EXPECT_EQ(sorted[size_t(i)].entity, EntityId(i))
            << "shards=" << shards << " prune=" << prune;
        EXPECT_EQ(sorted[size_t(i)].score, 0.0f);
      }
    }
  }
}

TEST(PrunedTopKProperty, FewerSurvivorsThanKStaysExact) {
  // Exclusions leave only 3 candidates but k = 10: the heap never
  // fills, the primed floor may not exist, and every combination must
  // return exactly those 3 survivors in score order.
  auto model = MakeDistMult(kEntities, kRelations, 16, 7);
  SkewEntityNorms(model.get());
  model->PrepareForPrunedScoring(ScorePrecision::kDouble);
  std::vector<EntityId> excluded;
  for (EntityId e = 0; e < kEntities; ++e) {
    if (e != 17 && e != 901 && e != 1777) excluded.push_back(e);
  }
  Heap exhaustive(kTopK);
  Heap heap(kTopK);
  RankScanStats stats;
  exhaustive.ResetCapacity(kTopK);
  model->TopKTailsInRange(5, 2, 0, kEntities, excluded,
                          ScorePrecision::kDouble, false, &exhaustive,
                          &stats);
  const auto expect = exhaustive.TakeSorted();
  ASSERT_EQ(expect.size(), 3u);
  for (const int shards : kShardCounts) {
    for (const bool prune : {false, true}) {
      ShardedTopK(*model, 5, 2, excluded, ScorePrecision::kDouble, shards,
                  prune, kTopK, &heap, &stats);
      ExpectSameTopK(expect, heap.TakeSorted(),
                     "survivors shards=" + std::to_string(shards) +
                         " prune=" + std::to_string(prune));
    }
  }
}

TEST(PrunedTopKProperty, PredictTailsInvariantAcrossOptions) {
  // End-to-end through the public API, including the filtered mode.
  auto model = MakeComplEx(kEntities, kRelations, 8, 11);
  SkewEntityNorms(model.get());
  std::vector<Triple> known;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    known.push_back({EntityId(rng.NextBounded(kEntities)),
                     EntityId(rng.NextBounded(kEntities)),
                     RelationId(rng.NextBounded(kRelations))});
  }
  FilterIndex filter;
  filter.Build(known, {}, {});
  TopKOptions reference;
  reference.k = kTopK;
  reference.exclude_known = &filter;
  const auto expect = PredictTails(*model, known[0].head, known[0].relation,
                                   reference);
  for (const int shards : kShardCounts) {
    for (const bool prune : {false, true}) {
      TopKOptions options = reference;
      options.num_shards = shards;
      options.prune = prune;
      const auto got = PredictTails(*model, known[0].head,
                                    known[0].relation, options);
      ASSERT_EQ(expect.size(), got.size());
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(expect[i].entity, got[i].entity);
        EXPECT_EQ(expect[i].score, got[i].score);
      }
    }
  }
}

TEST(PrunedTopKProperty, EvaluatorMetricsInvariantToShardsAndPruning) {
  // The rank scans behind Evaluate share the same bound logic; filtered
  // MRR / Hits / MeanRank must be exactly invariant to both knobs.
  WordNetLikeOptions gen;
  gen.num_entities = 400;
  gen.seed = 21;
  const Dataset data = GenerateWordNetLike(gen);
  auto model = MakeDistMult(data.num_entities(), data.num_relations(), 16, 3);
  SkewEntityNorms(model.get());
  FilterIndex filter;
  filter.Build(data.train, data.valid, data.test);
  Evaluator evaluator(&filter, data.num_relations());
  EvalOptions base;
  base.max_triples = 80;
  const EvalResult expect = evaluator.Evaluate(*model, data.test, base);
  for (const int shards : kShardCounts) {
    for (const bool prune : {false, true}) {
      EvalOptions options = base;
      options.num_shards = shards;
      options.prune = prune;
      const EvalResult got = evaluator.Evaluate(*model, data.test, options);
      EXPECT_EQ(expect.overall.Mrr(), got.overall.Mrr())
          << "shards=" << shards << " prune=" << prune;
      EXPECT_EQ(expect.overall.MeanRank(), got.overall.MeanRank());
      EXPECT_EQ(expect.overall.HitsAt(10), got.overall.HitsAt(10));
      EXPECT_EQ(expect.overall.count(), got.overall.count());
    }
  }
}

}  // namespace
}  // namespace kge
