#include "models/er_mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense_layer.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 10;
constexpr int32_t kRelations = 3;
constexpr int32_t kDim = 5;
constexpr int32_t kHidden = 7;
constexpr uint64_t kSeed = 51;

// ---- DenseLayer substrate ---------------------------------------------

TEST(DenseLayerTest, LinearForwardMatchesManualComputation) {
  DenseLayer layer("l", 3, 2, Activation::kLinear);
  // W = [[1,2,3],[4,5,6]], b = [0.5, -0.5].
  float* w = layer.weights()->Flat().data();
  for (int i = 0; i < 6; ++i) w[i] = float(i + 1);
  layer.bias()->Row(0)[0] = 0.5f;
  layer.bias()->Row(0)[1] = -0.5f;
  const std::vector<float> x = {1.0f, 0.0f, -1.0f};
  std::vector<float> out(2);
  layer.Forward(x, out);
  EXPECT_NEAR(out[0], 1 * 1 + 2 * 0 + 3 * -1 + 0.5, 1e-6);
  EXPECT_NEAR(out[1], 4 * 1 + 5 * 0 + 6 * -1 - 0.5, 1e-6);
}

TEST(DenseLayerTest, TanhForwardBounded) {
  DenseLayer layer("l", 4, 3, Activation::kTanh);
  Rng rng(1);
  layer.Init(&rng);
  const std::vector<float> x = {10.0f, -10.0f, 5.0f, -5.0f};
  std::vector<float> out(3);
  layer.Forward(x, out);
  for (float y : out) {
    EXPECT_GE(y, -1.0f);
    EXPECT_LE(y, 1.0f);
  }
}

TEST(DenseLayerTest, BackwardMatchesFiniteDifferences) {
  for (Activation activation : {Activation::kLinear, Activation::kTanh}) {
    DenseLayer layer("l", 4, 3, activation);
    Rng rng(2);
    layer.Init(&rng);
    std::vector<float> x = {0.3f, -0.7f, 0.2f, 0.9f};
    std::vector<float> out(3);
    layer.Forward(x, out);
    const std::vector<float> dout = {1.0f, -0.5f, 0.25f};

    GradientBuffer grads({layer.weights(), layer.bias()});
    std::vector<float> dx(4, 0.0f);
    layer.Backward(x, out, dout, &grads, 0, 1, dx);

    // L = Σ dout_o * layer(x)_o; finite-difference every parameter.
    auto loss = [&] {
      std::vector<float> y(3);
      layer.Forward(x, y);
      double l = 0.0;
      for (int o = 0; o < 3; ++o) l += double(dout[size_t(o)]) * y[size_t(o)];
      return l;
    };
    const double eps = 1e-3;
    for (int64_t row = 0; row < 3; ++row) {
      const auto grad = grads.GradFor(0, row);
      auto w = layer.weights()->Row(row);
      for (size_t i = 0; i < w.size(); ++i) {
        const float saved = w[i];
        w[i] = saved + float(eps);
        const double plus = loss();
        w[i] = saved - float(eps);
        const double minus = loss();
        w[i] = saved;
        EXPECT_NEAR(grad[i], (plus - minus) / (2 * eps), 1e-2);
      }
    }
    // Input gradient.
    for (size_t i = 0; i < x.size(); ++i) {
      const float saved = x[i];
      x[i] = saved + float(eps);
      const double plus = loss();
      x[i] = saved - float(eps);
      const double minus = loss();
      x[i] = saved;
      EXPECT_NEAR(dx[i], (plus - minus) / (2 * eps), 1e-2);
    }
  }
}

// ---- ER-MLP model -------------------------------------------------------

TEST(ErMlpTest, ShapeAndBlocks) {
  auto model = MakeErMlp(kEntities, kRelations, kDim, kHidden, kSeed);
  EXPECT_EQ(model->name(), "ER-MLP");
  EXPECT_EQ(model->Blocks().size(), 6u);
  EXPECT_EQ(model->NumParameters(),
            kEntities * kDim + kRelations * kDim +  // embeddings
                kHidden * 3 * kDim + kHidden +      // hidden layer
                kHidden + 1);                       // output layer
}

TEST(ErMlpTest, ScoreAllTailsAgreesWithScore) {
  auto model = MakeErMlp(kEntities, kRelations, kDim, kHidden, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllTails(1, 2, scores);
  for (EntityId t = 0; t < kEntities; ++t) {
    EXPECT_NEAR(scores[size_t(t)], model->Score({1, t, 2}), 1e-5);
  }
}

TEST(ErMlpTest, ScoreAllHeadsAgreesWithScore) {
  auto model = MakeErMlp(kEntities, kRelations, kDim, kHidden, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllHeads(6, 1, scores);
  for (EntityId h = 0; h < kEntities; ++h) {
    EXPECT_NEAR(scores[size_t(h)], model->Score({h, 6, 1}), 1e-5);
  }
}

TEST(ErMlpTest, ScoreIsAsymmetricInHeadTail) {
  auto model = MakeErMlp(kEntities, kRelations, kDim, kHidden, kSeed);
  EXPECT_GT(std::fabs(model->Score({1, 2, 0}) - model->Score({2, 1, 0})),
            1e-8);
}

TEST(ErMlpTest, FullGradientMatchesFiniteDifferences) {
  auto model = MakeErMlp(kEntities, kRelations, kDim, kHidden, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{2, 7, 1};
  const float dscore = 0.9f;
  model->AccumulateGradients(triple, dscore, &grads);

  struct Case {
    size_t block;
    int64_t row;
  };
  const std::vector<Case> cases = {
      {ErMlp::kEntityBlock, 2},   {ErMlp::kEntityBlock, 7},
      {ErMlp::kRelationBlock, 1}, {ErMlp::kHiddenWeights, 0},
      {ErMlp::kHiddenWeights, 3}, {ErMlp::kHiddenBias, 0},
      {ErMlp::kOutputWeights, 0}, {ErMlp::kOutputBias, 0},
  };
  const double eps = 1e-3;
  for (const Case& c : cases) {
    const auto grad = grads.GradFor(c.block, c.row);
    auto params = model->Blocks()[c.block]->Row(c.row);
    for (size_t i = 0; i < params.size(); i += 2) {
      const float saved = params[i];
      params[i] = saved + float(eps);
      const double plus = model->Score(triple);
      params[i] = saved - float(eps);
      const double minus = model->Score(triple);
      params[i] = saved;
      EXPECT_NEAR(grad[i], dscore * (plus - minus) / (2 * eps), 1e-2)
          << "block " << c.block << " row " << c.row << " coord " << i;
    }
  }
}

TEST(ErMlpTest, CanFitATinyAsymmetricPattern) {
  // Universal-approximator sanity: a few gradient steps should separate a
  // positive triple from a negative one.
  auto model = MakeErMlp(kEntities, kRelations, kDim, kHidden, kSeed);
  const Triple positive{0, 1, 0};
  const Triple negative{1, 0, 0};
  GradientBuffer grads(model->Blocks());
  for (int step = 0; step < 200; ++step) {
    grads.Clear();
    model->AccumulateGradients(positive, -0.1f, &grads);  // raise score
    model->AccumulateGradients(negative, 0.1f, &grads);   // lower score
    grads.ForEach([&](size_t block, int64_t row,
                      std::span<const float> grad) {
      auto params = model->Blocks()[block]->Row(row);
      for (size_t i = 0; i < grad.size(); ++i) params[i] -= 0.1f * grad[i];
    });
  }
  EXPECT_GT(model->Score(positive), model->Score(negative) + 0.5);
}

}  // namespace
}  // namespace kge
