#include "train/early_stopping.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(EarlyStoppingTest, FirstObservationIsBest) {
  EarlyStopping stopping(100);
  EXPECT_FALSE(stopping.has_observation());
  EXPECT_TRUE(stopping.Observe(50, 0.5));
  EXPECT_TRUE(stopping.has_observation());
  EXPECT_EQ(stopping.best_epoch(), 50);
  EXPECT_DOUBLE_EQ(stopping.best_metric(), 0.5);
}

TEST(EarlyStoppingTest, ImprovementResetsBest) {
  EarlyStopping stopping(100);
  stopping.Observe(50, 0.5);
  EXPECT_TRUE(stopping.Observe(100, 0.6));
  EXPECT_EQ(stopping.best_epoch(), 100);
  EXPECT_FALSE(stopping.Observe(150, 0.55));
  EXPECT_EQ(stopping.best_epoch(), 100);
}

TEST(EarlyStoppingTest, PaperSchedule50EpochEval100Patience) {
  // §5.3: check every 50 epochs with 100 epochs patience.
  EarlyStopping stopping(100);
  stopping.Observe(50, 0.90);
  EXPECT_FALSE(stopping.ShouldStop(50));
  stopping.Observe(100, 0.89);
  EXPECT_FALSE(stopping.ShouldStop(100));
  stopping.Observe(150, 0.88);
  EXPECT_TRUE(stopping.ShouldStop(150));  // 150 - 50 >= 100
}

TEST(EarlyStoppingTest, NeverStopsWithoutObservation) {
  EarlyStopping stopping(10);
  EXPECT_FALSE(stopping.ShouldStop(1000));
}

TEST(EarlyStoppingTest, MinDeltaIgnoresTinyImprovements) {
  EarlyStopping stopping(100, 0.01);
  stopping.Observe(50, 0.5);
  EXPECT_FALSE(stopping.Observe(100, 0.505));  // below min_delta
  EXPECT_EQ(stopping.best_epoch(), 50);
  EXPECT_TRUE(stopping.Observe(150, 0.52));
}

TEST(EarlyStoppingTest, ContinuesAfterLateImprovement) {
  EarlyStopping stopping(100);
  stopping.Observe(50, 0.5);
  stopping.Observe(100, 0.4);
  stopping.Observe(140, 0.6);  // improvement just before deadline
  EXPECT_FALSE(stopping.ShouldStop(150));
  EXPECT_FALSE(stopping.ShouldStop(200));
  EXPECT_TRUE(stopping.ShouldStop(240));
}

}  // namespace
}  // namespace kge
