#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kge {
namespace {

TEST(ThreadPoolTest, InlineModeRunsTasks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int counter = 0;
  pool.Schedule([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter, 1);
}

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(0, touched.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(3, 4, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 3u);
    EXPECT_EQ(end, 4u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineMode) {
  ThreadPool pool(1);
  std::vector<int> values(50, 0);
  pool.ParallelFor(0, values.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) values[i] = int(i);
  });
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(values[i], int(i));
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(3);
  std::vector<int64_t> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<int64_t> parallel_sum{0};
  pool.ParallelFor(0, data.size(), [&](size_t begin, size_t end) {
    int64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += data[i];
    parallel_sum.fetch_add(local);
  });
  const int64_t expected = std::accumulate(data.begin(), data.end(), int64_t{0});
  EXPECT_EQ(parallel_sum.load(), expected);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Schedule([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

// ---- Per-stage completion groups (the pipeline primitive) ------------------

TEST(ThreadPoolTest, StageForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.StageFor(0, touched.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, StageForInlineMode) {
  ThreadPool pool(1);
  std::vector<int> values(50, 0);
  pool.StageFor(0, values.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) values[i] = int(i);
  });
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(values[i], int(i));
}

TEST(ThreadPoolTest, WaitStageJoinsExactlyThatGroup) {
  ThreadPool pool(4);
  ThreadPool::StageGroup slow_group;
  ThreadPool::StageGroup fast_group;
  std::atomic<int> slow_count{0};
  std::atomic<int> fast_count{0};
  struct Ctx {
    std::atomic<int>* counter;
  } slow_ctx{&slow_count}, fast_ctx{&fast_count};
  ThreadPool::RangeFn bump = [](void* ctx, size_t begin, size_t end) {
    static_cast<Ctx*>(ctx)->counter->fetch_add(int(end - begin));
  };
  for (size_t i = 0; i < 32; ++i) {
    pool.ScheduleRange(&slow_group, bump, &slow_ctx, i, i + 1);
    pool.ScheduleRange(&fast_group, bump, &fast_ctx, i, i + 1);
  }
  pool.WaitStage(&fast_group);
  EXPECT_EQ(fast_count.load(), 32);  // this group is complete...
  pool.WaitStage(&slow_group);       // ...the other only after its own join
  EXPECT_EQ(slow_count.load(), 32);
}

TEST(ThreadPoolTest, StageGroupIsReusableAfterWait) {
  ThreadPool pool(2);
  ThreadPool::StageGroup group;
  std::atomic<int> counter{0};
  ThreadPool::RangeFn bump = [](void* ctx, size_t, size_t) {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(1);
  };
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.ScheduleRange(&group, bump, &counter, 0, 1);
    }
    pool.WaitStage(&group);
    EXPECT_EQ(counter.load(), (round + 1) * 8);
  }
}

TEST(ThreadPoolTest, WaitStageWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  ThreadPool::StageGroup group;
  pool.WaitStage(&group);  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, StageFanOutDefersUntilWaitStage) {
  ThreadPool pool(3);
  ThreadPool::StageGroup group;
  std::vector<std::atomic<int>> touched(257);
  auto body = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  };
  pool.StageFanOut(&group, 0, touched.size(), body);
  // The caller is free to do unrelated work here; body stays alive until
  // the join below.
  pool.WaitStage(&group);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, StageTasksAreInvisibleToLegacyWait) {
  ThreadPool pool(2);
  ThreadPool::StageGroup group;
  std::atomic<int> counter{0};
  ThreadPool::RangeFn bump = [](void* ctx, size_t, size_t) {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(1);
  };
  pool.ScheduleRange(&group, bump, &counter, 0, 1);
  pool.Wait();  // counts only function tasks; must not hang on the stage
  pool.WaitStage(&group);
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, StageRingGrowsPastReservation) {
  ThreadPool pool(2);
  pool.ReserveStageTasks(4);
  ThreadPool::StageGroup group;
  std::atomic<int> counter{0};
  ThreadPool::RangeFn bump = [](void* ctx, size_t, size_t) {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(1);
  };
  for (int i = 0; i < 500; ++i) {
    pool.ScheduleRange(&group, bump, &counter, 0, 1);
  }
  pool.WaitStage(&group);
  EXPECT_EQ(counter.load(), 500);
}

TEST(ResolveNumThreadsTest, PositivePassesThroughZeroAutoDetects) {
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
  EXPECT_GE(ResolveNumThreads(0), 1u);   // auto: hardware_concurrency
  EXPECT_GE(ResolveNumThreads(-3), 1u);  // negative treated as auto
}

}  // namespace
}  // namespace kge
