#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kge {
namespace {

TEST(ThreadPoolTest, InlineModeRunsTasks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int counter = 0;
  pool.Schedule([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter, 1);
}

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(0, touched.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(3, 4, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 3u);
    EXPECT_EQ(end, 4u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineMode) {
  ThreadPool pool(1);
  std::vector<int> values(50, 0);
  pool.ParallelFor(0, values.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) values[i] = int(i);
  });
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(values[i], int(i));
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(3);
  std::vector<int64_t> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<int64_t> parallel_sum{0};
  pool.ParallelFor(0, data.size(), [&](size_t begin, size_t end) {
    int64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += data[i];
    parallel_sum.fetch_add(local);
  });
  const int64_t expected = std::accumulate(data.begin(), data.end(), int64_t{0});
  EXPECT_EQ(parallel_sum.load(), expected);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Schedule([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace kge
