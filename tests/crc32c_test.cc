#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace kge {
namespace {

TEST(Crc32cTest, KnownVector) {
  // The RFC 3720 check value for the ASCII digits "123456789".
  const char data[] = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c("x", 0), 0u);
}

TEST(Crc32cTest, AllZeros32Bytes) {
  // Another published vector: 32 bytes of 0x00.
  const std::vector<unsigned char> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, AllOnes32Bytes) {
  const std::vector<unsigned char> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposesAcrossSplits) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  std::vector<unsigned char> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(i * 7 + 3);
  }
  const uint32_t original = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), original)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<unsigned char>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace kge
