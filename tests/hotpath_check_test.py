#!/usr/bin/env python3
"""Self-test for scripts/hotpath_check.py.

Each fixture TU in tests/hotpath_fixtures/ is (a) compiled with the
project's C++ standard to prove it is real code, and (b) fed through the
analyzer, asserting the exact findings/suppressions it must produce:

  direct_alloc.cc         seeded allocating hot function -> reported
  indirect_alloc.cc       alloc behind a helper          -> reported, with path
  virtual_propagation.cc  alloc in an un-annotated override of an
                          annotated virtual               -> reported
  allow_suppression.cc    alloc with kge-hotpath: allow  -> suppressed
  clean.cc                clean root + cold allocator    -> silent
  nondet.cc               rand() + unordered_map         -> reported
  throwing.cc             throw path                     -> reported
  quantize_score.cc       cold quantize + hot int8 score -> silent
  pipeline_stage.cc       timed trampoline + hot stage   -> silent
  serve_batch.cc          cold assembler + hot batch
                          score/top-k reduce             -> silent
  pruned_scan.cc          cold tile-bound preparer + hot
                          bound-pruned top-k scan        -> silent

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(ROOT, "scripts", "hotpath_check.py")
FIXTURES = os.path.join(ROOT, "tests", "hotpath_fixtures")

_failures = []


def check(cond, label):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {label}")
    if not cond:
        _failures.append(label)


def compiler():
    for cxx in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if cxx and shutil.which(cxx):
            return cxx
    return None


def compile_fixture(cxx, path):
    proc = subprocess.run(
        [cxx, "-std=c++20", "-fsyntax-only", "-I", os.path.join(ROOT, "src"),
         path],
        capture_output=True, text=True)
    check(proc.returncode == 0,
          f"{os.path.basename(path)} compiles ({cxx})")
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)


def run_checker(paths, tmpdir, tag):
    report = os.path.join(tmpdir, tag + ".json")
    proc = subprocess.run(
        [sys.executable, CHECKER, *paths, "--report", report],
        capture_output=True, text=True)
    if proc.returncode == 2:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise RuntimeError(f"analyzer infrastructure error on {tag}")
    with open(report, encoding="utf-8") as f:
        return proc.returncode, json.load(f)


def main():
    cxx = compiler()
    fixtures = sorted(os.listdir(FIXTURES))
    check(len(fixtures) == 11, "all 11 fixtures present")

    if cxx is None:
        print("  [skip] no C++ compiler found; skipping syntax checks")
    else:
        for name in fixtures:
            compile_fixture(cxx, os.path.join(FIXTURES, name))

    tmpdir = tempfile.mkdtemp(prefix="hotpath_check_test.")
    try:
        fx = lambda name: os.path.join(FIXTURES, name)

        print("direct_alloc: a seeded allocating hot function is caught")
        rc, rep = run_checker([fx("direct_alloc.cc")], tmpdir, "direct")
        check(rc == 1, "exit code 1")
        check(len(rep["findings"]) == 1, "exactly one finding")
        f = rep["findings"][0]
        check(f["kind"] == "alloc", "kind is alloc")
        check(f["function"].endswith("HotDirectAlloc"),
              "reported in HotDirectAlloc")

        print("indirect_alloc: alloc behind a helper, with a witness path")
        rc, rep = run_checker([fx("indirect_alloc.cc")], tmpdir, "indirect")
        check(rc == 1, "exit code 1")
        check(len(rep["findings"]) == 1, "exactly one finding")
        f = rep["findings"][0]
        check(f["function"].endswith("AppendScore"),
              "reported in the helper")
        check(f["path"] == ["fixture::HotIndirect", "fixture::AppendScore"],
              "path is root -> helper")

        print("virtual_propagation: un-annotated override inherits the root")
        rc, rep = run_checker([fx("virtual_propagation.cc")], tmpdir,
                              "virtual")
        check(rc == 1, "exit code 1")
        check(any(f["kind"] == "alloc" and
                  f["function"] == "fixture::AllocatingScorer::ScoreBatch"
                  for f in rep["findings"]),
              "override's alloc reported")
        check("fixture::AllocatingScorer::ScoreBatch" in rep["roots"],
              "override became a root by propagation")

        print("allow_suppression: escape hatch suppresses, with a reason")
        rc, rep = run_checker([fx("allow_suppression.cc")], tmpdir, "allow")
        check(rc == 0, "exit code 0")
        check(len(rep["findings"]) == 0, "no findings")
        check(len(rep["suppressions"]) == 1, "one suppression")
        check(rep["suppressions"][0]["allow"] == "high-water growth",
              "suppression reason recorded")

        print("clean: clean root passes; cold allocations are not reported")
        rc, rep = run_checker([fx("clean.cc")], tmpdir, "clean")
        check(rc == 0, "exit code 0")
        check(len(rep["findings"]) == 0, "no findings")
        check(len(rep["suppressions"]) == 0, "no suppressions")
        check("fixture::HotClean" in rep["roots"], "root was recognized")

        print("nondet: clocks/rand/unordered iteration are flagged")
        rc, rep = run_checker([fx("nondet.cc")], tmpdir, "nondet")
        check(rc == 1, "exit code 1")
        kinds = {f["kind"] for f in rep["findings"]}
        check(kinds == {"nondet"}, "all findings are nondet")
        details = " ".join(f["detail"] for f in rep["findings"])
        check("rand" in details, "rand() flagged")
        check("unordered" in details, "unordered container flagged")

        print("throwing: throw expressions are flagged")
        rc, rep = run_checker([fx("throwing.cc")], tmpdir, "throw")
        check(rc == 1, "exit code 1")
        check(any(f["kind"] == "throw" for f in rep["findings"]),
              "throw finding present")

        print("quantize_score: cold quantize allocs OK, hot int8 root clean")
        rc, rep = run_checker([fx("quantize_score.cc")], tmpdir, "quantize")
        check(rc == 0, "exit code 0")
        check(len(rep["findings"]) == 0, "no findings")
        check("fixture::HotQuantizedScore" in rep["roots"],
              "hot scoring root was recognized")

        print("pipeline_stage: clock in trampoline OK, hot stage body clean")
        rc, rep = run_checker([fx("pipeline_stage.cc")], tmpdir, "pipeline")
        check(rc == 0, "exit code 0")
        check(len(rep["findings"]) == 0, "no findings")
        check("fixture::PipelineStageBody" in rep["roots"],
              "stage root was recognized")
        check("fixture::PipelineStageTrampoline" not in rep["roots"],
              "timed trampoline stays outside the hot set")

        print("serve_batch: alloc in assembler OK, hot batch root clean")
        rc, rep = run_checker([fx("serve_batch.cc")], tmpdir, "serve")
        check(rc == 0, "exit code 0")
        check(len(rep["findings"]) == 0, "no findings")
        check("fixture::ServeBatchScoreAndReduce" in rep["roots"],
              "batch score/reduce root was recognized")
        check("fixture::AssembleAndDispatch" not in rep["roots"],
              "allocating assembler stays outside the hot set")

        print("pruned_scan: bound preparer allocs OK, pruned scan root clean")
        rc, rep = run_checker([fx("pruned_scan.cc")], tmpdir, "pruned")
        check(rc == 0, "exit code 0")
        check(len(rep["findings"]) == 0, "no findings")
        check("fixture::PrunedTopKScanRoot" in rep["roots"],
              "pruned scan root was recognized")
        check("fixture::PrepareTileBounds" not in rep["roots"],
              "allocating bound preparer stays outside the hot set")

        print("multi-file: helper alloc found across TU boundary")
        rc, rep = run_checker([fx("indirect_alloc.cc"), fx("clean.cc")],
                              tmpdir, "multi")
        check(rc == 1, "exit code 1")
        check(len(rep["findings"]) == 1, "still exactly one finding")
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    if _failures:
        print(f"\nhotpath_check_test: {len(_failures)} FAILURE(S)")
        for label in _failures:
            print(f"  - {label}")
        return 1
    print("\nhotpath_check_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
