#include "models/transe.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/vec_ops.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 12;
constexpr int32_t kRelations = 3;
constexpr int32_t kDim = 6;
constexpr uint64_t kSeed = 31;

TEST(TransETest, NamesIncludeNorm) {
  EXPECT_EQ(MakeTransE(kEntities, kRelations, kDim, 1, kSeed)->name(),
            "TransE-L1");
  EXPECT_EQ(MakeTransE(kEntities, kRelations, kDim, 2, kSeed)->name(),
            "TransE-L2");
}

TEST(TransETest, ScoreIsNegativeDistance) {
  auto model = MakeTransE(kEntities, kRelations, kDim, 2, kSeed);
  // All scores must be <= 0 and equal to -||h + r - t||².
  for (EntityId h = 0; h < 3; ++h) {
    const double score = model->Score({h, 5, 1});
    EXPECT_LE(score, 0.0);
  }
}

TEST(TransETest, PerfectTranslationScoresZero) {
  auto model = MakeTransE(kEntities, kRelations, kDim, 2, kSeed);
  // Force t = h + r exactly.
  auto h = model->Score({0, 1, 0});
  (void)h;
  auto& store = *model;
  (void)store;
  // Manually: copy embeddings so that tail = head + relation.
  auto head = model->Blocks()[TransE::kEntityBlock]->Row(0);
  auto tail = model->Blocks()[TransE::kEntityBlock]->Row(1);
  auto rel = model->Blocks()[TransE::kRelationBlock]->Row(0);
  for (size_t d = 0; d < head.size(); ++d) tail[d] = head[d] + rel[d];
  EXPECT_NEAR(model->Score({0, 1, 0}), 0.0, 1e-9);
}

TEST(TransETest, ScoreAllTailsAgreesWithScore) {
  for (int p : {1, 2}) {
    auto model = MakeTransE(kEntities, kRelations, kDim, p, kSeed);
    std::vector<float> scores(kEntities);
    model->ScoreAllTails(2, 1, scores);
    for (EntityId t = 0; t < kEntities; ++t) {
      EXPECT_NEAR(scores[size_t(t)], model->Score({2, t, 1}), 1e-4)
          << "p=" << p;
    }
  }
}

TEST(TransETest, ScoreAllHeadsAgreesWithScore) {
  for (int p : {1, 2}) {
    auto model = MakeTransE(kEntities, kRelations, kDim, p, kSeed);
    std::vector<float> scores(kEntities);
    model->ScoreAllHeads(4, 0, scores);
    for (EntityId h = 0; h < kEntities; ++h) {
      EXPECT_NEAR(scores[size_t(h)], model->Score({h, 4, 0}), 1e-4)
          << "p=" << p;
    }
  }
}

TEST(TransETest, L2GradientsMatchFiniteDifferences) {
  auto model = MakeTransE(kEntities, kRelations, kDim, 2, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{1, 7, 2};
  const float dscore = 1.3f;
  model->AccumulateGradients(triple, dscore, &grads);

  struct Case {
    size_t block;
    int64_t row;
  };
  for (const Case& c : {Case{TransE::kEntityBlock, 1},
                        Case{TransE::kEntityBlock, 7},
                        Case{TransE::kRelationBlock, 2}}) {
    const auto grad = grads.GradFor(c.block, c.row);
    auto params = model->Blocks()[c.block]->Row(c.row);
    const double eps = 1e-3;
    for (size_t d = 0; d < params.size(); ++d) {
      const float saved = params[d];
      params[d] = saved + float(eps);
      const double plus = model->Score(triple);
      params[d] = saved - float(eps);
      const double minus = model->Score(triple);
      params[d] = saved;
      EXPECT_NEAR(grad[d], dscore * (plus - minus) / (2 * eps), 1e-2);
    }
  }
}

TEST(TransETest, L1GradientSignsAreCorrect) {
  auto model = MakeTransE(kEntities, kRelations, kDim, 1, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{0, 1, 0};
  model->AccumulateGradients(triple, 1.0f, &grads);
  const auto gh = grads.GradFor(TransE::kEntityBlock, 0);
  const auto h = model->Blocks()[TransE::kEntityBlock]->Row(0);
  const auto t = model->Blocks()[TransE::kEntityBlock]->Row(1);
  const auto r = model->Blocks()[TransE::kRelationBlock]->Row(0);
  for (size_t d = 0; d < h.size(); ++d) {
    const double diff = double(h[d]) + double(r[d]) - double(t[d]);
    if (diff > 0) {
      EXPECT_EQ(gh[d], -1.0f);
    }
    if (diff < 0) {
      EXPECT_EQ(gh[d], 1.0f);
    }
  }
}

TEST(TransETest, SymmetricRelationForcesZeroRelationVector) {
  // Structural limitation (paper §2.2.1): if both (a,b,r) and (b,a,r)
  // score perfectly, then r must be the zero vector.
  // Check the algebra: ||h + r - t|| = 0 and ||t + r - h|| = 0 implies
  // r = t - h = h - t, hence r = 0.
  auto model = MakeTransE(kEntities, kRelations, kDim, 2, kSeed);
  auto h = model->Blocks()[TransE::kEntityBlock]->Row(0);
  auto t = model->Blocks()[TransE::kEntityBlock]->Row(1);
  auto r = model->Blocks()[TransE::kRelationBlock]->Row(0);
  // Force both directions perfect.
  for (size_t d = 0; d < r.size(); ++d) {
    r[d] = 0.0f;
    t[d] = h[d];
  }
  EXPECT_NEAR(model->Score({0, 1, 0}), 0.0, 1e-9);
  EXPECT_NEAR(model->Score({1, 0, 0}), 0.0, 1e-9);
}

TEST(TransETest, NormalizeEntitiesWorks) {
  auto model = MakeTransE(kEntities, kRelations, kDim, 2, kSeed);
  const std::vector<EntityId> ids = {0, 5};
  model->NormalizeEntities(ids);
  EXPECT_NEAR(Norm(model->Blocks()[TransE::kEntityBlock]->Row(0)), 1.0, 1e-5);
  EXPECT_NEAR(Norm(model->Blocks()[TransE::kEntityBlock]->Row(5)), 1.0, 1e-5);
}

TEST(TransETest, RejectsBadNorm) {
  EXPECT_DEATH({ MakeTransE(kEntities, kRelations, kDim, 3, kSeed); },
               "KGE_CHECK");
}

}  // namespace
}  // namespace kge
