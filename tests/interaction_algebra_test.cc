// The executable version of the paper's Table 1 / Eq. (9)–(14)
// derivations: each trilinear-product model's native algebraic score
// function must agree exactly with the multi-embedding weighted sum under
// the derived weight vector.
#include <gtest/gtest.h>

#include <vector>

#include "core/interaction.h"
#include "core/weight_table.h"
#include "math/complex_ops.h"
#include "math/quaternion.h"
#include "math/vec_ops.h"
#include "models/quaternion_model.h"
#include "util/random.h"

namespace kge {
namespace {

constexpr int32_t kDim = 10;

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->NextUniform(-1, 1);
  return v;
}

std::span<const float> Part(const std::vector<float>& v, int32_t index) {
  return std::span<const float>(v).subspan(size_t(index) * kDim, kDim);
}

class AlgebraTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2024);
    h2_ = RandomVec(2 * kDim, &rng);
    t2_ = RandomVec(2 * kDim, &rng);
    r2_ = RandomVec(2 * kDim, &rng);
    h4_ = RandomVec(4 * kDim, &rng);
    t4_ = RandomVec(4 * kDim, &rng);
    r4_ = RandomVec(4 * kDim, &rng);
  }

  // Two-embedding vectors (used as {real, imaginary} for ComplEx).
  std::vector<float> h2_, t2_, r2_;
  // Four-embedding vectors (quaternion components).
  std::vector<float> h4_, t4_, r4_;
};

TEST_F(AlgebraTest, DistMultWeightVectorEqualsPlainTrilinearProduct) {
  const WeightTable table = WeightTable::DistMult();
  const auto h = Part(h2_, 0);
  const auto t = Part(t2_, 0);
  const auto r = Part(r2_, 0);
  EXPECT_NEAR(ScoreTriple(table, kDim, h, t, r), TrilinearDot(h, t, r),
              1e-6);
}

TEST_F(AlgebraTest, ComplExWeightVectorEqualsNativeComplexAlgebra) {
  // Eq. (9)/(10): Re<h, conj(t), r> over C^D with h(1)=Re(h), h(2)=Im(h).
  const ComplexVectorView h{Part(h2_, 0), Part(h2_, 1)};
  const ComplexVectorView t{Part(t2_, 0), Part(t2_, 1)};
  const ComplexVectorView r{Part(r2_, 0), Part(r2_, 1)};
  EXPECT_NEAR(ScoreTriple(WeightTable::ComplEx(), kDim, h2_, t2_, r2_),
              ComplexScore(h, t, r), 1e-5);
}

TEST_F(AlgebraTest, ComplExEquiv1IsHeadTailSwapOfComplEx) {
  // Table 1 note: "by the symmetry between h and t".
  EXPECT_NEAR(ScoreTriple(WeightTable::ComplExEquiv1(), kDim, h2_, t2_, r2_),
              ScoreTriple(WeightTable::ComplEx(), kDim, t2_, h2_, r2_),
              1e-5);
}

TEST_F(AlgebraTest, ComplExEquiv3IsRelationComponentSwapOfComplEx) {
  // Table 1 note: "by symmetry between embedding vectors of the same
  // relation": swap r(1) and r(2).
  std::vector<float> r_swapped(r2_.size());
  std::copy(r2_.begin() + kDim, r2_.end(), r_swapped.begin());
  std::copy(r2_.begin(), r2_.begin() + kDim, r_swapped.begin() + kDim);
  EXPECT_NEAR(ScoreTriple(WeightTable::ComplExEquiv3(), kDim, h2_, t2_, r2_),
              ScoreTriple(WeightTable::ComplEx(), kDim, h2_, t2_, r_swapped),
              1e-5);
}

TEST_F(AlgebraTest, ComplExEquiv2IsHeadTailSwapOfEquiv3) {
  EXPECT_NEAR(ScoreTriple(WeightTable::ComplExEquiv2(), kDim, h2_, t2_, r2_),
              ScoreTriple(WeightTable::ComplExEquiv3(), kDim, t2_, h2_, r2_),
              1e-5);
}

TEST_F(AlgebraTest, AllComplExVariantsAreAntisymmetricCapable) {
  // Every variant must change its score under a head/tail swap for
  // generic embeddings (unlike DistMult).
  for (const WeightTable& table :
       {WeightTable::ComplEx(), WeightTable::ComplExEquiv1(),
        WeightTable::ComplExEquiv2(), WeightTable::ComplExEquiv3()}) {
    const double forward = ScoreTriple(table, kDim, h2_, t2_, r2_);
    const double backward = ScoreTriple(table, kDim, t2_, h2_, r2_);
    EXPECT_GT(std::abs(forward - backward), 1e-6);
  }
}

TEST_F(AlgebraTest, DistMultIsSymmetric) {
  const WeightTable table = WeightTable::DistMult();
  EXPECT_NEAR(
      ScoreTriple(table, kDim, Part(h2_, 0), Part(t2_, 0), Part(r2_, 0)),
      ScoreTriple(table, kDim, Part(t2_, 0), Part(h2_, 0), Part(r2_, 0)),
      1e-6);
}

TEST_F(AlgebraTest, UniformWeightsAreSymmetricToo) {
  // §6.2: the uniform weighted-sum matching score is symmetric, which is
  // why it behaves like DistMult.
  const WeightTable table = WeightTable::Uniform(2, 2);
  EXPECT_NEAR(ScoreTriple(table, kDim, h2_, t2_, r2_),
              ScoreTriple(table, kDim, t2_, h2_, r2_), 1e-5);
}

TEST_F(AlgebraTest, CpWeightVectorEqualsRoleBasedTrilinearProduct) {
  // Eq. (6): S = <h, t(2), r> where h uses the head-role vector h(1).
  const double native =
      TrilinearDot(Part(h2_, 0), Part(t2_, 1), Part(r2_, 0));
  EXPECT_NEAR(
      ScoreTriple(WeightTable::Cp(), kDim, h2_, t2_,
                  std::span<const float>(r2_).subspan(0, kDim)),
      native, 1e-6);
}

TEST_F(AlgebraTest, CphWeightVectorEqualsAugmentedSum) {
  // Eq. (11): S = <h, t(2), r> + <t, h(2), r_a> with r_a mapped to r(2).
  const double original =
      TrilinearDot(Part(h2_, 0), Part(t2_, 1), Part(r2_, 0));
  const double inverse =
      TrilinearDot(Part(t2_, 0), Part(h2_, 1), Part(r2_, 1));
  EXPECT_NEAR(ScoreTriple(WeightTable::Cph(), kDim, h2_, t2_, r2_),
              original + inverse, 1e-5);
}

TEST_F(AlgebraTest, QuaternionTableEqualsNativeQuaternionAlgebra) {
  // Eq. (13)/(14): Re<h, conj(t), r> over H^D.
  const QuaternionVectorView h{Part(h4_, 0), Part(h4_, 1), Part(h4_, 2),
                               Part(h4_, 3)};
  const QuaternionVectorView t{Part(t4_, 0), Part(t4_, 1), Part(t4_, 2),
                               Part(t4_, 3)};
  const QuaternionVectorView r{Part(r4_, 0), Part(r4_, 1), Part(r4_, 2),
                               Part(r4_, 3)};
  EXPECT_NEAR(ScoreTriple(WeightTable::Quaternion(), kDim, h4_, t4_, r4_),
              QuaternionScoreHConjTR(h, t, r), 1e-5);
}

TEST_F(AlgebraTest, HardcodedEq14TableMatchesAlgebraicDerivation) {
  // The paper's hand-expanded Eq. (14) vs mechanical expansion of
  // Re(e_i * conj(e_j) * e_k) over the quaternion basis.
  const WeightTable hardcoded = WeightTable::Quaternion();
  const WeightTable derived =
      DeriveQuaternionWeightTable(QuaternionProductOrder::kHConjTR);
  const auto a = hardcoded.Flat();
  const auto b = derived.Flat();
  ASSERT_EQ(a.size(), b.size());
  for (size_t m = 0; m < a.size(); ++m) EXPECT_EQ(a[m], b[m]) << "m=" << m;
}

TEST_F(AlgebraTest, AlternativeQuaternionOrderMatchesItsAlgebra) {
  const WeightTable derived =
      DeriveQuaternionWeightTable(QuaternionProductOrder::kHRConjT);
  const QuaternionVectorView h{Part(h4_, 0), Part(h4_, 1), Part(h4_, 2),
                               Part(h4_, 3)};
  const QuaternionVectorView t{Part(t4_, 0), Part(t4_, 1), Part(t4_, 2),
                               Part(t4_, 3)};
  const QuaternionVectorView r{Part(r4_, 0), Part(r4_, 1), Part(r4_, 2),
                               Part(r4_, 3)};
  EXPECT_NEAR(ScoreTriple(derived, kDim, h4_, t4_, r4_),
              QuaternionScoreHRConjT(h, t, r), 1e-5);
}

TEST_F(AlgebraTest, CyclicOrderCollapsesToPaperOrder) {
  // Re(r·h·t̄) = Re(h·t̄·r) because Re(xy) = Re(yx) in H: the "third"
  // product order is not a distinct score function.
  const WeightTable a =
      DeriveQuaternionWeightTable(QuaternionProductOrder::kHConjTR);
  const WeightTable b =
      DeriveQuaternionWeightTable(QuaternionProductOrder::kRHConjT);
  const auto fa = a.Flat();
  const auto fb = b.Flat();
  for (size_t m = 0; m < fa.size(); ++m) EXPECT_EQ(fa[m], fb[m]);
}

TEST_F(AlgebraTest, ComplExEmbedsInQuaternionModel) {
  // A quaternion with zero j, k components is a complex number, so the
  // quaternion model restricted to two components must reproduce ComplEx
  // (the paper's motivation for the four-embedding extension).
  std::vector<float> h4(4 * kDim, 0.0f), t4(4 * kDim, 0.0f),
      r4(4 * kDim, 0.0f);
  std::copy(h2_.begin(), h2_.end(), h4.begin());
  std::copy(t2_.begin(), t2_.end(), t4.begin());
  std::copy(r2_.begin(), r2_.end(), r4.begin());
  EXPECT_NEAR(ScoreTriple(WeightTable::Quaternion(), kDim, h4, t4, r4),
              ScoreTriple(WeightTable::ComplEx(), kDim, h2_, t2_, r2_),
              1e-5);
}

}  // namespace
}  // namespace kge
