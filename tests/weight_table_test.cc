#include "core/weight_table.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(WeightTableTest, StartsAllZero) {
  WeightTable table(2, 2);
  EXPECT_EQ(table.size(), 8);
  EXPECT_TRUE(table.terms().empty());
  for (float w : table.Flat()) EXPECT_EQ(w, 0.0f);
}

TEST(WeightTableTest, IndexUsesPaperRowMajorOrder) {
  WeightTable table(2, 2);
  // Paper ordering: (111),(112),(121),(122),(211),(212),(221),(222).
  EXPECT_EQ(table.Index(0, 0, 0), 0);
  EXPECT_EQ(table.Index(0, 0, 1), 1);
  EXPECT_EQ(table.Index(0, 1, 0), 2);
  EXPECT_EQ(table.Index(0, 1, 1), 3);
  EXPECT_EQ(table.Index(1, 0, 0), 4);
  EXPECT_EQ(table.Index(1, 0, 1), 5);
  EXPECT_EQ(table.Index(1, 1, 0), 6);
  EXPECT_EQ(table.Index(1, 1, 1), 7);
}

TEST(WeightTableTest, SetRebuildsTerms) {
  WeightTable table(2, 2);
  table.Set(0, 1, 0, 2.0f);
  ASSERT_EQ(table.terms().size(), 1u);
  EXPECT_EQ(table.terms()[0].i, 0);
  EXPECT_EQ(table.terms()[0].j, 1);
  EXPECT_EQ(table.terms()[0].k, 0);
  EXPECT_EQ(table.terms()[0].weight, 2.0f);
  table.Set(0, 1, 0, 0.0f);
  EXPECT_TRUE(table.terms().empty());
}

TEST(WeightTableTest, DistMultPreset) {
  const WeightTable table = WeightTable::DistMult();
  EXPECT_EQ(table.ne(), 1);
  EXPECT_EQ(table.nr(), 1);
  ASSERT_EQ(table.terms().size(), 1u);
  EXPECT_EQ(table.At(0, 0, 0), 1.0f);
}

TEST(WeightTableTest, ComplExPresetMatchesPaperTable1) {
  const WeightTable table = WeightTable::ComplEx();
  // Paper column: (1, 0, 0, 1, 0, -1, 1, 0).
  const float expected[8] = {1, 0, 0, 1, 0, -1, 1, 0};
  const auto flat = table.Flat();
  for (size_t m = 0; m < 8; ++m)
    EXPECT_EQ(flat[m], expected[m]) << "m=" << m;
}

TEST(WeightTableTest, ComplExEquivalentsMatchPaperTable1) {
  const float equiv1[8] = {1, 0, 0, -1, 0, 1, 1, 0};
  const float equiv2[8] = {0, 1, -1, 0, 1, 0, 0, 1};
  const float equiv3[8] = {0, 1, 1, 0, -1, 0, 0, 1};
  const WeightTable t1 = WeightTable::ComplExEquiv1();
  const WeightTable t2 = WeightTable::ComplExEquiv2();
  const WeightTable t3 = WeightTable::ComplExEquiv3();
  const auto f1 = t1.Flat();
  const auto f2 = t2.Flat();
  const auto f3 = t3.Flat();
  for (size_t m = 0; m < 8; ++m) {
    EXPECT_EQ(f1[m], equiv1[m]) << "equiv1 m=" << m;
    EXPECT_EQ(f2[m], equiv2[m]) << "equiv2 m=" << m;
    EXPECT_EQ(f3[m], equiv3[m]) << "equiv3 m=" << m;
  }
}

TEST(WeightTableTest, CpPresetUsesSingleRelationVector) {
  const WeightTable table = WeightTable::Cp();
  EXPECT_EQ(table.ne(), 2);
  EXPECT_EQ(table.nr(), 1);
  ASSERT_EQ(table.terms().size(), 1u);
  EXPECT_EQ(table.At(0, 1, 0), 1.0f);  // <h(1), t(2), r(1)>
}

TEST(WeightTableTest, CphPresetMatchesPaperTable1) {
  const WeightTable table = WeightTable::Cph();
  ASSERT_EQ(table.terms().size(), 2u);
  EXPECT_EQ(table.At(0, 1, 0), 1.0f);  // <h(1), t(2), r(1)>
  EXPECT_EQ(table.At(1, 0, 1), 1.0f);  // <h(2), t(1), r(2)>
  const WeightTable equiv = WeightTable::CphEquiv();
  EXPECT_EQ(equiv.At(0, 1, 1), 1.0f);
  EXPECT_EQ(equiv.At(1, 0, 0), 1.0f);
}

TEST(WeightTableTest, QuaternionPresetHasSixteenSignedUnitTerms) {
  const WeightTable table = WeightTable::Quaternion();
  EXPECT_EQ(table.ne(), 4);
  EXPECT_EQ(table.nr(), 4);
  EXPECT_EQ(table.terms().size(), 16u);
  int positive = 0, negative = 0;
  for (const auto& term : table.terms()) {
    if (term.weight == 1.0f) ++positive;
    if (term.weight == -1.0f) ++negative;
  }
  EXPECT_EQ(positive, 10);  // Eq. (14): 10 plus terms, 6 minus terms
  EXPECT_EQ(negative, 6);
}

TEST(WeightTableTest, UniformPreset) {
  const WeightTable table = WeightTable::Uniform(2, 2);
  EXPECT_EQ(table.terms().size(), 8u);
  for (float w : table.Flat()) EXPECT_EQ(w, 1.0f);
}

TEST(WeightTableTest, FromPaperVectorRoundTrips) {
  const std::array<float, 8> w = {0, 0, 20, 0, 0, 1, 0, 0};
  const WeightTable table = WeightTable::FromPaperVector(w);
  EXPECT_EQ(table.At(0, 1, 0), 20.0f);
  EXPECT_EQ(table.At(1, 0, 1), 1.0f);
  EXPECT_EQ(table.terms().size(), 2u);
}

TEST(WeightTableTest, Table2ExamplePresets) {
  EXPECT_EQ(WeightTable::BadExample1().terms().size(), 2u);
  EXPECT_EQ(WeightTable::BadExample2().terms().size(), 4u);
  EXPECT_EQ(WeightTable::GoodExample1().terms().size(), 4u);
  EXPECT_EQ(WeightTable::GoodExample2().terms().size(), 8u);
}

TEST(WeightTableTest, HeadTailTransposed) {
  WeightTable table(2, 2);
  table.Set(0, 1, 0, 3.0f);
  const WeightTable transposed = table.HeadTailTransposed();
  EXPECT_EQ(transposed.At(1, 0, 0), 3.0f);
  EXPECT_EQ(transposed.At(0, 1, 0), 0.0f);
}

TEST(WeightTableTest, TransposeIsInvolution) {
  const WeightTable table = WeightTable::ComplEx();
  const WeightTable twice = table.HeadTailTransposed().HeadTailTransposed();
  const auto a = table.Flat();
  const auto b = twice.Flat();
  for (size_t m = 0; m < a.size(); ++m) EXPECT_EQ(a[m], b[m]);
}

TEST(WeightTableTest, SetFlatRejectsWrongSize) {
  WeightTable table(2, 2);
  const std::vector<float> wrong(7, 1.0f);
  EXPECT_DEATH({ table.SetFlat(wrong); }, "KGE_CHECK");
}

TEST(WeightTableTest, ToStringListsTerms) {
  const std::string s = WeightTable::Cph().ToString();
  EXPECT_NE(s.find("<h1,t2,r1>"), std::string::npos);
  EXPECT_NE(s.find("<h2,t1,r2>"), std::string::npos);
}

}  // namespace
}  // namespace kge
