#include "core/restriction.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace kge {
namespace {

const RestrictionKind kAllKinds[] = {
    RestrictionKind::kNone, RestrictionKind::kTanh, RestrictionKind::kSigmoid,
    RestrictionKind::kSoftmax};

TEST(RestrictionTest, NameRoundTrip) {
  for (RestrictionKind kind : kAllKinds) {
    const Result<RestrictionKind> parsed =
        RestrictionKindFromString(RestrictionKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(RestrictionKindFromString("relu").ok());
}

TEST(RestrictionTest, NoneIsIdentity) {
  const std::vector<float> raw = {-2.0f, 0.0f, 3.5f};
  std::vector<float> omega(3);
  ApplyRestriction(RestrictionKind::kNone, raw, omega);
  EXPECT_EQ(omega, raw);
}

TEST(RestrictionTest, TanhRangeIsOpenMinusOneOne) {
  const std::vector<float> raw = {-100.0f, -1.0f, 0.0f, 1.0f, 100.0f};
  std::vector<float> omega(raw.size());
  ApplyRestriction(RestrictionKind::kTanh, raw, omega);
  for (float w : omega) {
    EXPECT_GE(w, -1.0f);
    EXPECT_LE(w, 1.0f);
  }
  EXPECT_EQ(omega[2], 0.0f);
  EXPECT_NEAR(omega[1], std::tanh(-1.0), 1e-6);
}

TEST(RestrictionTest, SigmoidRangeIsZeroOne) {
  const std::vector<float> raw = {-100.0f, 0.0f, 100.0f};
  std::vector<float> omega(3);
  ApplyRestriction(RestrictionKind::kSigmoid, raw, omega);
  EXPECT_GT(omega[0], 0.0f - 1e-9);
  EXPECT_NEAR(omega[1], 0.5f, 1e-6);
  EXPECT_LE(omega[2], 1.0f);
}

TEST(RestrictionTest, SoftmaxSumsToOne) {
  const std::vector<float> raw = {1.0f, 2.0f, 0.0f, -1.0f};
  std::vector<float> omega(4);
  ApplyRestriction(RestrictionKind::kSoftmax, raw, omega);
  float sum = 0.0f;
  for (float w : omega) {
    EXPECT_GT(w, 0.0f);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6);
}

// Finite-difference check of RestrictionBackward for every kind.
class RestrictionBackwardTest
    : public testing::TestWithParam<RestrictionKind> {};

TEST_P(RestrictionBackwardTest, MatchesFiniteDifference) {
  const RestrictionKind kind = GetParam();
  Rng rng(uint64_t(kind) + 1);
  const size_t n = 8;
  std::vector<float> raw(n), upstream(n);
  for (size_t m = 0; m < n; ++m) {
    raw[m] = rng.NextUniform(-1.5f, 1.5f);
    upstream[m] = rng.NextUniform(-1.0f, 1.0f);
  }
  std::vector<float> omega(n);
  ApplyRestriction(kind, raw, omega);
  std::vector<float> analytic(n, 0.0f);
  RestrictionBackward(kind, omega, upstream, analytic);

  // L(raw) = Σ upstream_m * f(raw)_m.
  const double eps = 1e-4;
  for (size_t m = 0; m < n; ++m) {
    std::vector<float> plus = raw, minus = raw;
    plus[m] += float(eps);
    minus[m] -= float(eps);
    std::vector<float> omega_plus(n), omega_minus(n);
    ApplyRestriction(kind, plus, omega_plus);
    ApplyRestriction(kind, minus, omega_minus);
    double l_plus = 0.0, l_minus = 0.0;
    for (size_t q = 0; q < n; ++q) {
      l_plus += double(upstream[q]) * omega_plus[q];
      l_minus += double(upstream[q]) * omega_minus[q];
    }
    const double numeric = (l_plus - l_minus) / (2 * eps);
    EXPECT_NEAR(analytic[m], numeric, 2e-3) << "component " << m;
  }
}

TEST_P(RestrictionBackwardTest, AccumulatesIntoExistingGradient) {
  const RestrictionKind kind = GetParam();
  const std::vector<float> raw = {0.5f, -0.5f};
  std::vector<float> omega(2);
  ApplyRestriction(kind, raw, omega);
  const std::vector<float> upstream = {1.0f, 1.0f};
  std::vector<float> grad_a(2, 0.0f), grad_b(2, 10.0f);
  RestrictionBackward(kind, omega, upstream, grad_a);
  RestrictionBackward(kind, omega, upstream, grad_b);
  for (size_t m = 0; m < 2; ++m)
    EXPECT_NEAR(grad_b[m], grad_a[m] + 10.0f, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RestrictionBackwardTest,
                         testing::ValuesIn(kAllKinds));

}  // namespace
}  // namespace kge
