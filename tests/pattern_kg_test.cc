#include "datagen/pattern_kg_generator.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "kg/relation_analysis.h"

namespace kge {
namespace {

std::unordered_set<uint64_t> PairsOf(const std::vector<Triple>& triples,
                                     RelationId relation) {
  std::unordered_set<uint64_t> pairs;
  for (const Triple& t : triples) {
    if (t.relation == relation) {
      pairs.insert((uint64_t(uint32_t(t.head)) << 32) | uint32_t(t.tail));
    }
  }
  return pairs;
}

uint64_t Key(EntityId h, EntityId t) {
  return (uint64_t(uint32_t(h)) << 32) | uint32_t(t);
}

TEST(PatternKgTest, CountPatternRelations) {
  std::vector<PatternRelationSpec> specs = {
      {RelationPattern::kSymmetric, 10, ""},
      {RelationPattern::kAntisymmetric, 10, ""},
      {RelationPattern::kInversePair, 10, ""},
      {RelationPattern::kComposition, 10, ""},
  };
  EXPECT_EQ(CountPatternRelations(specs), 6);
}

TEST(PatternKgTest, SymmetricRelationHasBothDirections) {
  PatternKgOptions options;
  options.num_entities = 100;
  options.relations = {{RelationPattern::kSymmetric, 50, "sym"}};
  const auto triples = GeneratePatternKg(options, nullptr);
  EXPECT_EQ(triples.size(), 100u);  // 50 pairs x 2 directions
  const auto pairs = PairsOf(triples, 0);
  for (const Triple& t : triples) {
    EXPECT_TRUE(pairs.contains(Key(t.tail, t.head)));
  }
}

TEST(PatternKgTest, AntisymmetricRelationHasNoReverses) {
  PatternKgOptions options;
  options.num_entities = 100;
  options.relations = {{RelationPattern::kAntisymmetric, 80, "anti"}};
  const auto triples = GeneratePatternKg(options, nullptr);
  EXPECT_EQ(triples.size(), 80u);
  const auto pairs = PairsOf(triples, 0);
  for (const Triple& t : triples) {
    EXPECT_FALSE(pairs.contains(Key(t.tail, t.head)));
  }
}

TEST(PatternKgTest, InversePairHoldsExactly) {
  PatternKgOptions options;
  options.num_entities = 100;
  options.relations = {{RelationPattern::kInversePair, 60, "inv"}};
  const auto triples = GeneratePatternKg(options, nullptr);
  EXPECT_EQ(triples.size(), 120u);
  const auto forward = PairsOf(triples, 0);
  const auto backward = PairsOf(triples, 1);
  EXPECT_EQ(forward.size(), 60u);
  EXPECT_EQ(backward.size(), 60u);
  for (uint64_t key : forward) {
    const EntityId h = EntityId(key >> 32);
    const EntityId t = EntityId(key & 0xFFFFFFFF);
    EXPECT_TRUE(backward.contains(Key(t, h)));
  }
}

TEST(PatternKgTest, CompositionEdgesAreImpliedByStepPairs) {
  PatternKgOptions options;
  options.num_entities = 200;
  options.relations = {{RelationPattern::kComposition, 40, "comp"}};
  const auto triples = GeneratePatternKg(options, nullptr);
  const auto steps = PairsOf(triples, 0);
  const auto composed = PairsOf(triples, 1);
  EXPECT_EQ(composed.size(), 40u);
  // For every composed (x, z) there exist step (x, y) and (y, z).
  for (uint64_t key : composed) {
    const EntityId x = EntityId(key >> 32);
    const EntityId z = EntityId(key & 0xFFFFFFFF);
    bool found = false;
    for (uint64_t step_key : steps) {
      const EntityId sx = EntityId(step_key >> 32);
      const EntityId sy = EntityId(step_key & 0xFFFFFFFF);
      if (sx == x && steps.contains(Key(sy, z))) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "composed edge (" << x << "," << z
                       << ") lacks a step path";
  }
}

TEST(PatternKgTest, PopulatesDatasetVocabularies) {
  PatternKgOptions options;
  options.num_entities = 20;
  options.relations = {{RelationPattern::kSymmetric, 5, "likes"},
                       {RelationPattern::kInversePair, 5, "owns"}};
  Dataset dataset;
  const auto triples = GeneratePatternKg(options, &dataset);
  EXPECT_EQ(dataset.num_entities(), 20);
  EXPECT_EQ(dataset.num_relations(), 3);
  EXPECT_NE(dataset.relations.Find("likes"), -1);
  EXPECT_NE(dataset.relations.Find("owns"), -1);
  EXPECT_NE(dataset.relations.Find("owns_inv"), -1);
  (void)triples;
}

TEST(PatternKgTest, DeterministicForSameSeed) {
  PatternKgOptions options;
  options.num_entities = 50;
  options.seed = 77;
  options.relations = {{RelationPattern::kSymmetric, 20, ""},
                       {RelationPattern::kAntisymmetric, 20, ""}};
  const auto a = GeneratePatternKg(options, nullptr);
  const auto b = GeneratePatternKg(options, nullptr);
  EXPECT_EQ(a, b);
}

TEST(PatternKgTest, AnalysisAgreesWithConstruction) {
  PatternKgOptions options;
  options.num_entities = 120;
  options.relations = {{RelationPattern::kSymmetric, 60, ""},
                       {RelationPattern::kAntisymmetric, 60, ""},
                       {RelationPattern::kInversePair, 60, ""}};
  const auto triples = GeneratePatternKg(options, nullptr);
  const auto stats = AnalyzeRelations(triples, options.num_entities, 4);
  EXPECT_NEAR(stats[0].symmetry, 1.0, 1e-9);   // symmetric
  EXPECT_NEAR(stats[1].symmetry, 0.0, 1e-9);   // antisymmetric
  EXPECT_EQ(stats[2].best_inverse, 3);         // inverse pair forward
  EXPECT_NEAR(stats[2].best_inverse_score, 1.0, 1e-9);
  EXPECT_EQ(stats[3].best_inverse, 2);
}

TEST(PatternKgTest, NoDuplicateTriples) {
  PatternKgOptions options;
  options.num_entities = 60;
  options.relations = {{RelationPattern::kAntisymmetric, 100, ""}};
  const auto triples = GeneratePatternKg(options, nullptr);
  std::unordered_set<Triple, TripleHash> seen(triples.begin(), triples.end());
  EXPECT_EQ(seen.size(), triples.size());
}

}  // namespace
}  // namespace kge
