#include "core/weight_analysis.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(WeightAnalysisTest, ComplExSatisfiesAllThreeProperties) {
  const WeightProperties props = AnalyzeWeightTable(WeightTable::ComplEx());
  EXPECT_DOUBLE_EQ(props.completeness, 1.0);
  EXPECT_DOUBLE_EQ(props.stability, 1.0);
  EXPECT_GT(props.distinguishability, 0.0);
}

TEST(WeightAnalysisTest, CphSatisfiesAllThreeProperties) {
  const WeightProperties props = AnalyzeWeightTable(WeightTable::Cph());
  EXPECT_DOUBLE_EQ(props.completeness, 1.0);
  EXPECT_DOUBLE_EQ(props.stability, 1.0);
  EXPECT_DOUBLE_EQ(props.distinguishability, 1.0);
}

TEST(WeightAnalysisTest, QuaternionSatisfiesAllThreeProperties) {
  const WeightProperties props =
      AnalyzeWeightTable(WeightTable::Quaternion());
  EXPECT_DOUBLE_EQ(props.completeness, 1.0);
  EXPECT_DOUBLE_EQ(props.stability, 1.0);
  EXPECT_GT(props.distinguishability, 0.0);
}

TEST(WeightAnalysisTest, CpIsIncomplete) {
  // CP within the two-embedding view uses only h(1), t(2), r(1):
  // 3 of 5 slots (ne=2, ne=2, nr=1).
  const WeightProperties props = AnalyzeWeightTable(WeightTable::Cp());
  EXPECT_LT(props.completeness, 1.0);
  EXPECT_DOUBLE_EQ(props.stability, 0.0);  // h(2), t(1) carry no mass
}

TEST(WeightAnalysisTest, DistMultIsNotDistinguishable) {
  // Symmetric table: swapping h and t leaves ω unchanged.
  const WeightProperties props = AnalyzeWeightTable(WeightTable::DistMult());
  EXPECT_DOUBLE_EQ(props.distinguishability, 0.0);
  EXPECT_DOUBLE_EQ(props.completeness, 1.0);
}

TEST(WeightAnalysisTest, UniformIsNotDistinguishable) {
  const WeightProperties props =
      AnalyzeWeightTable(WeightTable::Uniform(2, 2));
  EXPECT_DOUBLE_EQ(props.distinguishability, 0.0);
  EXPECT_DOUBLE_EQ(props.completeness, 1.0);
  EXPECT_DOUBLE_EQ(props.stability, 1.0);
}

TEST(WeightAnalysisTest, BadExamplesScoreBelowGoodExamples) {
  // §6.1.2: the paper's good examples satisfy the properties, the bad
  // ones violate at least one.
  const double bad1 =
      AnalyzeWeightTable(WeightTable::BadExample1()).Overall();
  const double bad2 =
      AnalyzeWeightTable(WeightTable::BadExample2()).Overall();
  const double good1 =
      AnalyzeWeightTable(WeightTable::GoodExample1()).Overall();
  const double good2 =
      AnalyzeWeightTable(WeightTable::GoodExample2()).Overall();
  EXPECT_GT(good1, bad1);
  EXPECT_GT(good1, bad2);
  EXPECT_GT(good2, bad1);
  EXPECT_GT(good2, bad2);
}

TEST(WeightAnalysisTest, BadExample1IsUnstable) {
  // (0,0,20,0,0,1,0,0): h(1) carries 20, h(2) carries 1.
  const WeightProperties props =
      AnalyzeWeightTable(WeightTable::BadExample1());
  EXPECT_LT(props.stability, 0.1);
}

TEST(WeightAnalysisTest, BadExample2IsIndistinguishable) {
  // (0,0,1,1,1,1,0,0) is symmetric under the h/t swap.
  const WeightProperties props =
      AnalyzeWeightTable(WeightTable::BadExample2());
  EXPECT_DOUBLE_EQ(props.distinguishability, 0.0);
}

TEST(WeightAnalysisTest, ZeroTableScoresZero) {
  const WeightProperties props = AnalyzeWeightTable(WeightTable(2, 2));
  EXPECT_DOUBLE_EQ(props.completeness, 0.0);
  EXPECT_DOUBLE_EQ(props.stability, 0.0);
  EXPECT_DOUBLE_EQ(props.distinguishability, 0.0);
  EXPECT_DOUBLE_EQ(props.Overall(), 0.0);
}

TEST(WeightAnalysisTest, ToStringListsMetrics) {
  const std::string s =
      AnalyzeWeightTable(WeightTable::ComplEx()).ToString();
  EXPECT_NE(s.find("completeness"), std::string::npos);
  EXPECT_NE(s.find("stability"), std::string::npos);
  EXPECT_NE(s.find("distinguishability"), std::string::npos);
}

}  // namespace
}  // namespace kge
