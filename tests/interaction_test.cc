#include "core/interaction.h"

#include <gtest/gtest.h>

#include <vector>

#include "math/vec_ops.h"
#include "util/random.h"

namespace kge {
namespace {

// Naive reference implementation of Eq. (8).
double NaiveScore(const WeightTable& w, int32_t dim,
                  std::span<const float> h, std::span<const float> t,
                  std::span<const float> r) {
  double score = 0.0;
  for (int32_t i = 0; i < w.ne(); ++i) {
    for (int32_t j = 0; j < w.ne(); ++j) {
      for (int32_t k = 0; k < w.nr(); ++k) {
        double term = 0.0;
        for (int32_t d = 0; d < dim; ++d) {
          term += double(h[size_t(i * dim + d)]) *
                  double(t[size_t(j * dim + d)]) *
                  double(r[size_t(k * dim + d)]);
        }
        score += double(w.At(i, j, k)) * term;
      }
    }
  }
  return score;
}

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->NextUniform(-1, 1);
  return v;
}

struct Preset {
  const char* name;
  WeightTable table;
};

std::vector<Preset> AllPresets() {
  std::vector<Preset> presets;
  presets.push_back({"DistMult", WeightTable::DistMult()});
  presets.push_back({"ComplEx", WeightTable::ComplEx()});
  presets.push_back({"CP", WeightTable::Cp()});
  presets.push_back({"CPh", WeightTable::Cph()});
  presets.push_back({"Quaternion", WeightTable::Quaternion()});
  presets.push_back({"Uniform22", WeightTable::Uniform(2, 2)});
  presets.push_back({"Good2", WeightTable::GoodExample2()});
  presets.push_back({"Bad1", WeightTable::BadExample1()});
  return presets;
}

class InteractionPresetTest : public testing::TestWithParam<size_t> {
 protected:
  static constexpr int32_t kDim = 6;

  void SetUp() override {
    preset_ = AllPresets()[GetParam()];
    Rng rng(GetParam() + 1);
    h_ = RandomVec(size_t(preset_.table.ne()) * kDim, &rng);
    t_ = RandomVec(size_t(preset_.table.ne()) * kDim, &rng);
    r_ = RandomVec(size_t(preset_.table.nr()) * kDim, &rng);
  }

  Preset preset_{"", WeightTable(1, 1)};
  std::vector<float> h_, t_, r_;
};

TEST_P(InteractionPresetTest, ScoreMatchesNaiveReference) {
  EXPECT_NEAR(ScoreTriple(preset_.table, kDim, h_, t_, r_),
              NaiveScore(preset_.table, kDim, h_, t_, r_), 1e-6)
      << preset_.name;
}

TEST_P(InteractionPresetTest, FoldForTailReproducesScore) {
  std::vector<float> fold(h_.size());
  FoldForTail(preset_.table, kDim, h_, r_, fold);
  EXPECT_NEAR(Dot(fold, t_), ScoreTriple(preset_.table, kDim, h_, t_, r_),
              1e-5)
      << preset_.name;
}

TEST_P(InteractionPresetTest, FoldForHeadReproducesScore) {
  std::vector<float> fold(t_.size());
  FoldForHead(preset_.table, kDim, t_, r_, fold);
  EXPECT_NEAR(Dot(fold, h_), ScoreTriple(preset_.table, kDim, h_, t_, r_),
              1e-5)
      << preset_.name;
}

TEST_P(InteractionPresetTest, FoldForRelationReproducesScore) {
  std::vector<float> fold(r_.size());
  FoldForRelation(preset_.table, kDim, h_, t_, fold);
  EXPECT_NEAR(Dot(fold, r_), ScoreTriple(preset_.table, kDim, h_, t_, r_),
              1e-5)
      << preset_.name;
}

TEST_P(InteractionPresetTest, GradientsMatchFiniteDifferences) {
  std::vector<float> gh(h_.size(), 0.0f), gt(t_.size(), 0.0f),
      gr(r_.size(), 0.0f);
  const float dscore = 1.7f;
  AccumulateTripleGradients(preset_.table, kDim, h_, t_, r_, dscore, gh, gt,
                            gr);

  const double eps = 1e-3;
  auto check = [&](std::vector<float>& param, std::span<const float> grad) {
    for (size_t d = 0; d < param.size(); ++d) {
      const float saved = param[d];
      param[d] = saved + float(eps);
      const double plus = ScoreTriple(preset_.table, kDim, h_, t_, r_);
      param[d] = saved - float(eps);
      const double minus = ScoreTriple(preset_.table, kDim, h_, t_, r_);
      param[d] = saved;
      const double numeric = double(dscore) * (plus - minus) / (2 * eps);
      EXPECT_NEAR(grad[d], numeric, 1e-2) << preset_.name << " dim " << d;
    }
  };
  check(h_, gh);
  check(t_, gt);
  check(r_, gr);
}

TEST_P(InteractionPresetTest, OmegaGradientsAreTrilinearProducts) {
  std::vector<float> omega_grad(size_t(preset_.table.size()), 0.0f);
  AccumulateOmegaGradients(preset_.table, kDim, h_, t_, r_, 2.0f, omega_grad);
  for (int32_t i = 0; i < preset_.table.ne(); ++i) {
    for (int32_t j = 0; j < preset_.table.ne(); ++j) {
      for (int32_t k = 0; k < preset_.table.nr(); ++k) {
        const double expected =
            2.0 *
            TrilinearDot(
                std::span<const float>(h_).subspan(size_t(i * kDim), kDim),
                std::span<const float>(t_).subspan(size_t(j * kDim), kDim),
                std::span<const float>(r_).subspan(size_t(k * kDim), kDim));
        EXPECT_NEAR(omega_grad[size_t(preset_.table.Index(i, j, k))],
                    expected, 1e-5);
      }
    }
  }
}

TEST_P(InteractionPresetTest, GradientsAccumulateRatherThanOverwrite) {
  std::vector<float> gh(h_.size(), 1.0f), gt(t_.size(), 1.0f),
      gr(r_.size(), 1.0f);
  std::vector<float> gh2(h_.size(), 0.0f), gt2(t_.size(), 0.0f),
      gr2(r_.size(), 0.0f);
  AccumulateTripleGradients(preset_.table, kDim, h_, t_, r_, 1.0f, gh, gt,
                            gr);
  AccumulateTripleGradients(preset_.table, kDim, h_, t_, r_, 1.0f, gh2, gt2,
                            gr2);
  for (size_t d = 0; d < gh.size(); ++d) {
    EXPECT_NEAR(gh[d], gh2[d] + 1.0f, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, InteractionPresetTest,
                         testing::Range<size_t>(0, 8));

TEST(InteractionTest, ZeroWeightTableGivesZeroScore) {
  WeightTable table(2, 2);
  Rng rng(5);
  const auto h = RandomVec(8, &rng);
  const auto t = RandomVec(8, &rng);
  const auto r = RandomVec(8, &rng);
  EXPECT_EQ(ScoreTriple(table, 4, h, t, r), 0.0);
}

TEST(InteractionTest, ScoreIsLinearInWeights) {
  Rng rng(6);
  const auto h = RandomVec(8, &rng);
  const auto t = RandomVec(8, &rng);
  const auto r = RandomVec(8, &rng);
  WeightTable base = WeightTable::ComplEx();
  std::vector<float> doubled(base.Flat().begin(), base.Flat().end());
  for (float& w : doubled) w *= 2.0f;
  WeightTable twice(2, 2);
  twice.SetFlat(doubled);
  EXPECT_NEAR(ScoreTriple(twice, 4, h, t, r),
              2.0 * ScoreTriple(base, 4, h, t, r), 1e-6);
}

}  // namespace
}  // namespace kge
