// Concurrency contract of Evaluator::Evaluate: the ranking protocol is
// pure per-triple work plus an order-insensitive reduction, so an N-thread
// evaluation must reproduce the single-thread result. Hits@k, counts, and
// rank sums are exact (tie-averaged ranks are multiples of 0.5, summed
// exactly in double for these sizes); MRR is compared to a tight tolerance
// because merge order may reassociate the reciprocal sum. Run under
// -DKGE_SANITIZE=thread to turn this into a race regression test.
#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kg/filter_index.h"
#include "kg/triple.h"
#include "math/simd.h"
#include "models/model_factory.h"
#include "models/trilinear_models.h"

namespace kge {
namespace {

// Deterministic synthetic KG: a few interlocking relation patterns over a
// small entity set, sized so the filtered protocol has non-trivial
// filtering and several score ties.
std::vector<Triple> MakeTriples(int32_t num_entities) {
  std::vector<Triple> triples;
  for (EntityId e = 0; e < num_entities; ++e) {
    triples.push_back({e, (e * 7 + 3) % num_entities, 0});
    triples.push_back({e, (e * 5 + 11) % num_entities, 1});
    if (e % 3 == 0) triples.push_back({e, (e + 1) % num_entities, 2});
  }
  return triples;
}

class EvaluatorConcurrencyTest : public ::testing::Test {
 protected:
  static constexpr int32_t kEntities = 60;
  static constexpr int32_t kRelations = 3;

  void SetUp() override {
    triples_ = MakeTriples(kEntities);
    filter_.Build(triples_, {}, {});
    Result<std::unique_ptr<KgeModel>> model = MakeModelByName(
        "complex", kEntities, kRelations, /*dim_budget=*/32, /*seed=*/1234);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = std::move(*model);
  }

  static void ExpectSameMetrics(const RankingMetrics& a,
                                const RankingMetrics& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_DOUBLE_EQ(a.MeanRank(), b.MeanRank());
    EXPECT_DOUBLE_EQ(a.HitsAt(1), b.HitsAt(1));
    EXPECT_DOUBLE_EQ(a.HitsAt(3), b.HitsAt(3));
    EXPECT_DOUBLE_EQ(a.HitsAt(10), b.HitsAt(10));
    EXPECT_NEAR(a.Mrr(), b.Mrr(), 1e-12);
    EXPECT_NEAR(a.AdjustedMeanRankIndex(), b.AdjustedMeanRankIndex(), 1e-12);
  }

  std::vector<Triple> triples_;
  FilterIndex filter_;
  std::unique_ptr<KgeModel> model_;
};

TEST_F(EvaluatorConcurrencyTest, MultiThreadMatchesSingleThreadFiltered) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions serial;
  serial.num_threads = 1;
  const EvalResult expected = evaluator.Evaluate(*model_, triples_, serial);

  for (int threads : {2, 4, 8}) {
    EvalOptions parallel;
    parallel.num_threads = threads;
    const EvalResult got = evaluator.Evaluate(*model_, triples_, parallel);
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectSameMetrics(expected.overall, got.overall);
    ASSERT_EQ(expected.per_relation.size(), got.per_relation.size());
    for (size_t r = 0; r < expected.per_relation.size(); ++r) {
      SCOPED_TRACE("relation=" + std::to_string(r));
      ExpectSameMetrics(expected.per_relation[r].tail_queries,
                        got.per_relation[r].tail_queries);
      ExpectSameMetrics(expected.per_relation[r].head_queries,
                        got.per_relation[r].head_queries);
    }
  }
}

TEST_F(EvaluatorConcurrencyTest, MultiThreadMatchesSingleThreadRaw) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions serial;
  serial.num_threads = 1;
  serial.filtered = false;
  EvalOptions parallel = serial;
  parallel.num_threads = 4;
  ExpectSameMetrics(evaluator.Evaluate(*model_, triples_, serial).overall,
                    evaluator.Evaluate(*model_, triples_, parallel).overall);
}

TEST_F(EvaluatorConcurrencyTest, SubsampledEvaluationIsThreadInvariant) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions serial;
  serial.num_threads = 1;
  serial.max_triples = 37;  // exercises the stride subsample + sharding
  EvalOptions parallel = serial;
  parallel.num_threads = 3;
  ExpectSameMetrics(evaluator.Evaluate(*model_, triples_, serial).overall,
                    evaluator.Evaluate(*model_, triples_, parallel).overall);
}

TEST_F(EvaluatorConcurrencyTest, RepeatedParallelRunsAreStable) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions options;
  options.num_threads = 4;
  const EvalResult first = evaluator.Evaluate(*model_, triples_, options);
  for (int run = 0; run < 3; ++run) {
    ExpectSameMetrics(first.overall,
                      evaluator.Evaluate(*model_, triples_, options).overall);
  }
}

// The batched GEMM ranking path regroups queries by (relation, side) and
// scores whole batches with ScoreAllTailsBatch/ScoreAllHeadsBatch, but by
// the DotBatchMulti contract every score — and therefore every rank — is
// bit-identical to the per-query path, so the metrics must match exactly
// for every batch size and thread count, filtered and raw.
TEST_F(EvaluatorConcurrencyTest, BatchedRankingMatchesPerQueryExactly) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions per_query;
  per_query.batch_queries = 1;
  per_query.num_threads = 1;
  const EvalResult expected = evaluator.Evaluate(*model_, triples_, per_query);

  for (int batch : {2, 8, 32, 0 /* auto */}) {
    for (int threads : {1, 4}) {
      EvalOptions batched;
      batched.batch_queries = batch;
      batched.num_threads = threads;
      SCOPED_TRACE("batch_queries=" + std::to_string(batch) +
                   " num_threads=" + std::to_string(threads));
      const EvalResult got = evaluator.Evaluate(*model_, triples_, batched);
      ExpectSameMetrics(expected.overall, got.overall);
      ASSERT_EQ(expected.per_relation.size(), got.per_relation.size());
      for (size_t r = 0; r < expected.per_relation.size(); ++r) {
        SCOPED_TRACE("relation=" + std::to_string(r));
        ExpectSameMetrics(expected.per_relation[r].tail_queries,
                          got.per_relation[r].tail_queries);
        ExpectSameMetrics(expected.per_relation[r].head_queries,
                          got.per_relation[r].head_queries);
      }
    }
  }
}

TEST_F(EvaluatorConcurrencyTest, BatchedRankingMatchesPerQueryRaw) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions per_query;
  per_query.batch_queries = 1;
  per_query.filtered = false;
  EvalOptions batched = per_query;
  batched.batch_queries = 8;
  batched.num_threads = 4;
  ExpectSameMetrics(evaluator.Evaluate(*model_, triples_, per_query).overall,
                    evaluator.Evaluate(*model_, triples_, batched).overall);
}

TEST_F(EvaluatorConcurrencyTest, BatchedRankingHonorsSubsampling) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions per_query;
  per_query.batch_queries = 1;
  per_query.max_triples = 37;
  EvalOptions batched = per_query;
  batched.batch_queries = 4;
  batched.num_threads = 3;
  ExpectSameMetrics(evaluator.Evaluate(*model_, triples_, per_query).overall,
                    evaluator.Evaluate(*model_, triples_, batched).overall);
}

TEST(ResolveEvalBatchQueriesTest, AutoSizesToScoreMatrixBudget) {
  // Explicit requests pass through untouched.
  EXPECT_EQ(ResolveEvalBatchQueries(1, 1000), 1);
  EXPECT_EQ(ResolveEvalBatchQueries(7, 1000), 7);
  // Auto starts at 32 and halves while 32 x E x bytes-per-score exceeds
  // the 64 MiB budget, where a score is charged at the precision tier's
  // streamed-candidate width (8 bytes at kDouble).
  EXPECT_EQ(ResolveEvalBatchQueries(0, 1000), 32);
  EXPECT_EQ(ResolveEvalBatchQueries(0, 1 << 20), 8);
  EXPECT_EQ(ResolveEvalBatchQueries(0, 1 << 22), 2);
}

TEST(ResolveEvalBatchQueriesTest, NarrowTiersKeepLargerBatches) {
  // 4 bytes per score at float32, 1 at int8: the same entity count
  // admits 2x/8x more queries per batch than the double tier.
  EXPECT_EQ(ResolveEvalBatchQueries(0, 1 << 20, ScorePrecision::kFloat32),
            16);
  EXPECT_EQ(ResolveEvalBatchQueries(0, 1 << 22, ScorePrecision::kFloat32),
            4);
  EXPECT_EQ(ResolveEvalBatchQueries(0, 1 << 20, ScorePrecision::kInt8), 32);
  EXPECT_EQ(ResolveEvalBatchQueries(0, 1 << 22, ScorePrecision::kInt8), 16);
  // Explicit requests still pass through at every tier.
  EXPECT_EQ(ResolveEvalBatchQueries(5, 1 << 22, ScorePrecision::kInt8), 5);
}

// A read-only twin of a MultiEmbeddingModel that bypasses the SIMD
// dispatch layer entirely: folds and dots are computed with the naive
// sequential references in simd::ref against the *same* parameters.
// Only the scoring interface the evaluator uses is implemented.
class NaiveReferenceModel : public KgeModel {
 public:
  explicit NaiveReferenceModel(const MultiEmbeddingModel* base)
      : name_("NaiveRef-" + base->name()), base_(base) {}

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return base_->num_entities(); }
  int32_t num_relations() const override { return base_->num_relations(); }

  double Score(const Triple& triple) const override {
    const WeightTable& w = base_->weights();
    const size_t d = size_t(base_->dim());
    const auto h = base_->entity_store().Of(triple.head);
    const auto t = base_->entity_store().Of(triple.tail);
    const auto r = base_->relation_store().Of(triple.relation);
    double score = 0.0;
    for (const WeightTable::Term& term : w.terms()) {
      score += double(term.weight) *
               simd::ref::TrilinearDot(h.data() + size_t(term.i) * d,
                                       t.data() + size_t(term.j) * d,
                                       r.data() + size_t(term.k) * d, d);
    }
    return score;
  }

  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override {
    NaiveFold(base_->entity_store().Of(head),
              base_->relation_store().Of(relation), /*fold_for_tail=*/true,
              out);
  }

  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override {
    NaiveFold(base_->entity_store().Of(tail),
              base_->relation_store().Of(relation), /*fold_for_tail=*/false,
              out);
  }

  std::vector<ParameterBlock*> Blocks() override { return {}; }
  void AccumulateGradients(const Triple&, float, GradientBuffer*) override {}
  void NormalizeEntities(std::span<const EntityId>) override {}
  void InitParameters(uint64_t) override {}

 private:
  void NaiveFold(std::span<const float> e, std::span<const float> r,
                 bool fold_for_tail, std::span<float> out) const {
    const WeightTable& w = base_->weights();
    const size_t d = size_t(base_->dim());
    std::vector<float> fold(size_t(w.ne()) * d, 0.0f);
    for (const WeightTable::Term& term : w.terms()) {
      const size_t e_at = size_t(fold_for_tail ? term.i : term.j) * d;
      const size_t out_at = size_t(fold_for_tail ? term.j : term.i) * d;
      simd::ref::HadamardAxpy(term.weight, e.data() + e_at,
                              r.data() + size_t(term.k) * d,
                              fold.data() + out_at, d);
    }
    for (int32_t c = 0; c < base_->num_entities(); ++c) {
      const auto cand = base_->entity_store().Of(c);
      out[size_t(c)] =
          float(simd::ref::Dot(fold.data(), cand.data(), fold.size()));
    }
  }

  std::string name_;
  const MultiEmbeddingModel* base_;
};

// The acceptance check for the SIMD layer: ranking with the dispatch
// kernels (whatever ISA this binary targets) must produce the same
// filtered metrics as a naive scalar re-implementation sharing the same
// parameters. Scores may differ by reassociation ulps, but never enough
// to move a rank on this workload.
TEST_F(EvaluatorConcurrencyTest, SimdAndNaiveScalarScoringAgreeOnMetrics) {
  std::unique_ptr<MultiEmbeddingModel> complex_model =
      MakeComplEx(kEntities, kRelations, /*dim=*/16, /*seed=*/1234);
  NaiveReferenceModel reference(complex_model.get());

  Evaluator evaluator(&filter_, kRelations);
  for (const bool filtered : {true, false}) {
    EvalOptions options;
    options.filtered = filtered;
    options.num_threads = 2;
    SCOPED_TRACE(filtered ? "filtered" : "raw");
    const EvalResult simd_result =
        evaluator.Evaluate(*complex_model, triples_, options);
    const EvalResult ref_result =
        evaluator.Evaluate(reference, triples_, options);
    ExpectSameMetrics(simd_result.overall, ref_result.overall);
  }
}

}  // namespace
}  // namespace kge
