// Concurrency contract of Evaluator::Evaluate: the ranking protocol is
// pure per-triple work plus an order-insensitive reduction, so an N-thread
// evaluation must reproduce the single-thread result. Hits@k, counts, and
// rank sums are exact (tie-averaged ranks are multiples of 0.5, summed
// exactly in double for these sizes); MRR is compared to a tight tolerance
// because merge order may reassociate the reciprocal sum. Run under
// -DKGE_SANITIZE=thread to turn this into a race regression test.
#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kg/filter_index.h"
#include "kg/triple.h"
#include "models/model_factory.h"

namespace kge {
namespace {

// Deterministic synthetic KG: a few interlocking relation patterns over a
// small entity set, sized so the filtered protocol has non-trivial
// filtering and several score ties.
std::vector<Triple> MakeTriples(int32_t num_entities) {
  std::vector<Triple> triples;
  for (EntityId e = 0; e < num_entities; ++e) {
    triples.push_back({e, (e * 7 + 3) % num_entities, 0});
    triples.push_back({e, (e * 5 + 11) % num_entities, 1});
    if (e % 3 == 0) triples.push_back({e, (e + 1) % num_entities, 2});
  }
  return triples;
}

class EvaluatorConcurrencyTest : public ::testing::Test {
 protected:
  static constexpr int32_t kEntities = 60;
  static constexpr int32_t kRelations = 3;

  void SetUp() override {
    triples_ = MakeTriples(kEntities);
    filter_.Build(triples_, {}, {});
    Result<std::unique_ptr<KgeModel>> model = MakeModelByName(
        "complex", kEntities, kRelations, /*dim_budget=*/32, /*seed=*/1234);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = std::move(*model);
  }

  static void ExpectSameMetrics(const RankingMetrics& a,
                                const RankingMetrics& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_DOUBLE_EQ(a.MeanRank(), b.MeanRank());
    EXPECT_DOUBLE_EQ(a.HitsAt(1), b.HitsAt(1));
    EXPECT_DOUBLE_EQ(a.HitsAt(3), b.HitsAt(3));
    EXPECT_DOUBLE_EQ(a.HitsAt(10), b.HitsAt(10));
    EXPECT_NEAR(a.Mrr(), b.Mrr(), 1e-12);
    EXPECT_NEAR(a.AdjustedMeanRankIndex(), b.AdjustedMeanRankIndex(), 1e-12);
  }

  std::vector<Triple> triples_;
  FilterIndex filter_;
  std::unique_ptr<KgeModel> model_;
};

TEST_F(EvaluatorConcurrencyTest, MultiThreadMatchesSingleThreadFiltered) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions serial;
  serial.num_threads = 1;
  const EvalResult expected = evaluator.Evaluate(*model_, triples_, serial);

  for (int threads : {2, 4, 8}) {
    EvalOptions parallel;
    parallel.num_threads = threads;
    const EvalResult got = evaluator.Evaluate(*model_, triples_, parallel);
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectSameMetrics(expected.overall, got.overall);
    ASSERT_EQ(expected.per_relation.size(), got.per_relation.size());
    for (size_t r = 0; r < expected.per_relation.size(); ++r) {
      SCOPED_TRACE("relation=" + std::to_string(r));
      ExpectSameMetrics(expected.per_relation[r].tail_queries,
                        got.per_relation[r].tail_queries);
      ExpectSameMetrics(expected.per_relation[r].head_queries,
                        got.per_relation[r].head_queries);
    }
  }
}

TEST_F(EvaluatorConcurrencyTest, MultiThreadMatchesSingleThreadRaw) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions serial;
  serial.num_threads = 1;
  serial.filtered = false;
  EvalOptions parallel = serial;
  parallel.num_threads = 4;
  ExpectSameMetrics(evaluator.Evaluate(*model_, triples_, serial).overall,
                    evaluator.Evaluate(*model_, triples_, parallel).overall);
}

TEST_F(EvaluatorConcurrencyTest, SubsampledEvaluationIsThreadInvariant) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions serial;
  serial.num_threads = 1;
  serial.max_triples = 37;  // exercises the stride subsample + sharding
  EvalOptions parallel = serial;
  parallel.num_threads = 3;
  ExpectSameMetrics(evaluator.Evaluate(*model_, triples_, serial).overall,
                    evaluator.Evaluate(*model_, triples_, parallel).overall);
}

TEST_F(EvaluatorConcurrencyTest, RepeatedParallelRunsAreStable) {
  Evaluator evaluator(&filter_, kRelations);
  EvalOptions options;
  options.num_threads = 4;
  const EvalResult first = evaluator.Evaluate(*model_, triples_, options);
  for (int run = 0; run < 3; ++run) {
    ExpectSameMetrics(first.overall,
                      evaluator.Evaluate(*model_, triples_, options).overall);
  }
}

}  // namespace
}  // namespace kge
