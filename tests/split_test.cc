#include "datagen/split.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "kg/triple.h"

namespace kge {
namespace {

std::vector<Triple> MakeDenseGraph(int num_entities, int num_relations,
                                   int triples_per_relation, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triple> triples;
  for (RelationId r = 0; r < num_relations; ++r) {
    for (int i = 0; i < triples_per_relation; ++i) {
      triples.push_back(
          {EntityId(rng.NextBounded(uint64_t(num_entities))),
           EntityId(rng.NextBounded(uint64_t(num_entities))), r});
    }
  }
  return triples;
}

TEST(SplitTest, FractionsApproximatelyRespected) {
  const auto all = MakeDenseGraph(50, 3, 500, 1);
  SplitOptions options;
  options.valid_fraction = 0.1;
  options.test_fraction = 0.1;
  const SplitResult split = SplitTriples(all, options);
  const size_t total =
      split.train.size() + split.valid.size() + split.test.size();
  EXPECT_GT(total, 0u);
  EXPECT_NEAR(double(split.valid.size()) / double(total), 0.1, 0.02);
  EXPECT_NEAR(double(split.test.size()) / double(total), 0.1, 0.02);
}

TEST(SplitTest, EveryHoldoutEntityAndRelationAppearsInTrain) {
  const auto all = MakeDenseGraph(40, 4, 300, 2);
  SplitOptions options;
  options.valid_fraction = 0.15;
  options.test_fraction = 0.15;
  const SplitResult split = SplitTriples(all, options);

  std::unordered_set<EntityId> train_entities;
  std::unordered_set<RelationId> train_relations;
  for (const Triple& t : split.train) {
    train_entities.insert(t.head);
    train_entities.insert(t.tail);
    train_relations.insert(t.relation);
  }
  for (const auto* holdout : {&split.valid, &split.test}) {
    for (const Triple& t : *holdout) {
      EXPECT_TRUE(train_entities.contains(t.head));
      EXPECT_TRUE(train_entities.contains(t.tail));
      EXPECT_TRUE(train_relations.contains(t.relation));
    }
  }
}

TEST(SplitTest, NoTripleLostOrDuplicated) {
  auto all = MakeDenseGraph(30, 2, 200, 3);
  // Dedupe the input to compute the expected size.
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  SplitOptions options;
  const SplitResult split = SplitTriples(all, options);
  std::vector<Triple> reassembled = split.train;
  reassembled.insert(reassembled.end(), split.valid.begin(),
                     split.valid.end());
  reassembled.insert(reassembled.end(), split.test.begin(), split.test.end());
  std::sort(reassembled.begin(), reassembled.end());
  EXPECT_EQ(reassembled, all);
}

TEST(SplitTest, DeterministicForSameSeed) {
  const auto all = MakeDenseGraph(30, 2, 200, 4);
  SplitOptions options;
  options.seed = 99;
  const SplitResult a = SplitTriples(all, options);
  const SplitResult b = SplitTriples(all, options);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.test, b.test);
}

TEST(SplitTest, DifferentSeedsShuffleDifferently) {
  const auto all = MakeDenseGraph(30, 2, 200, 5);
  SplitOptions options;
  options.seed = 1;
  const SplitResult a = SplitTriples(all, options);
  options.seed = 2;
  const SplitResult b = SplitTriples(all, options);
  EXPECT_NE(a.valid, b.valid);
}

TEST(SplitTest, ZeroFractionsPutEverythingInTrain) {
  const auto all = MakeDenseGraph(20, 1, 100, 6);
  SplitOptions options;
  options.valid_fraction = 0.0;
  options.test_fraction = 0.0;
  const SplitResult split = SplitTriples(all, options);
  EXPECT_TRUE(split.valid.empty());
  EXPECT_TRUE(split.test.empty());
  EXPECT_FALSE(split.train.empty());
}

TEST(SplitTest, SingletonEntitiesNeverHeldOut) {
  // Entity 2 appears exactly once; its triple must stay in train.
  std::vector<Triple> all = {{0, 1, 0}, {1, 0, 0}, {0, 2, 0}, {1, 0, 0}};
  // Add bulk to make holdout selection happen.
  for (int i = 0; i < 50; ++i) all.push_back({0, 1, 0});
  SplitOptions options;
  options.valid_fraction = 0.3;
  options.test_fraction = 0.3;
  const SplitResult split = SplitTriples(all, options);
  bool in_train = false;
  for (const Triple& t : split.train) in_train |= t == Triple{0, 2, 0};
  EXPECT_TRUE(in_train);
}

TEST(SplitTest, DeduplicatesInput) {
  std::vector<Triple> all(100, Triple{0, 1, 0});
  all.push_back({1, 0, 0});
  SplitOptions options;
  const SplitResult split = SplitTriples(all, options);
  EXPECT_EQ(split.train.size() + split.valid.size() + split.test.size(), 2u);
}

}  // namespace
}  // namespace kge
