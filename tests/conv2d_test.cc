#include "nn/conv2d.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace kge {
namespace {

TEST(Conv2dTest, OutputShape) {
  Conv2dLayer conv("c", 2, 8, 6, 4, 3, 3);
  EXPECT_EQ(conv.out_height(), 6);
  EXPECT_EQ(conv.out_width(), 4);
  EXPECT_EQ(conv.input_size(), 2 * 8 * 6);
  EXPECT_EQ(conv.output_size(), 4 * 6 * 4);
}

TEST(Conv2dTest, IdentityKernelCopiesInput) {
  // One 1x1 filter with weight 1 and zero bias reproduces the input map.
  Conv2dLayer conv("c", 1, 4, 4, 1, 1, 1);
  conv.filters()->Row(0)[0] = 1.0f;
  std::vector<float> x(16);
  for (size_t i = 0; i < x.size(); ++i) x[i] = float(i) * 0.5f;
  std::vector<float> out(16);
  conv.Forward(x, out);
  EXPECT_EQ(out, x);
}

TEST(Conv2dTest, HandComputedThreeByThree) {
  // 1 channel, 3x3 input, one 3x3 averaging-ish filter: output is the
  // full dot product of filter and input.
  Conv2dLayer conv("c", 1, 3, 3, 1, 3, 3);
  std::vector<float> x(9), w(9);
  for (int i = 0; i < 9; ++i) {
    x[size_t(i)] = float(i + 1);
    w[size_t(i)] = float(9 - i);
    conv.filters()->Row(0)[size_t(i)] = w[size_t(i)];
  }
  conv.bias()->Row(0)[0] = 2.0f;
  std::vector<float> out(1);
  conv.Forward(x, out);
  double expected = 2.0;
  for (int i = 0; i < 9; ++i) expected += double(x[size_t(i)]) * w[size_t(i)];
  EXPECT_NEAR(out[0], expected, 1e-5);
}

TEST(Conv2dTest, MultiChannelSumsContributions) {
  Conv2dLayer conv("c", 2, 3, 3, 1, 3, 3);
  // Channel 0 filter all ones, channel 1 filter all twos.
  for (int i = 0; i < 9; ++i) {
    conv.filters()->Row(0)[size_t(i)] = 1.0f;
    conv.filters()->Row(0)[size_t(9 + i)] = 2.0f;
  }
  std::vector<float> x(18, 1.0f);  // both channels all ones
  std::vector<float> out(1);
  conv.Forward(x, out);
  EXPECT_NEAR(out[0], 9.0f + 18.0f, 1e-5);
}

TEST(Conv2dTest, BackwardMatchesFiniteDifferences) {
  Conv2dLayer conv("c", 2, 5, 4, 3, 3, 3);
  Rng rng(3);
  conv.Init(&rng);
  std::vector<float> x(size_t(conv.input_size()));
  for (float& v : x) v = rng.NextUniform(-1, 1);
  std::vector<float> dout(size_t(conv.output_size()));
  for (float& v : dout) v = rng.NextUniform(-1, 1);

  GradientBuffer grads({conv.filters(), conv.bias()});
  std::vector<float> dx(x.size(), 0.0f);
  conv.Backward(x, dout, &grads, 0, 1, dx);

  auto loss = [&] {
    std::vector<float> out(size_t(conv.output_size()));
    conv.Forward(x, out);
    double l = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
      l += double(dout[i]) * out[i];
    }
    return l;
  };
  const double eps = 1e-3;
  // Filter gradients (subsampled).
  for (int64_t oc = 0; oc < 3; ++oc) {
    const auto grad = grads.GradFor(0, oc);
    auto w = conv.filters()->Row(oc);
    for (size_t i = 0; i < w.size(); i += 4) {
      const float saved = w[i];
      w[i] = saved + float(eps);
      const double plus = loss();
      w[i] = saved - float(eps);
      const double minus = loss();
      w[i] = saved;
      EXPECT_NEAR(grad[i], (plus - minus) / (2 * eps), 2e-2)
          << "filter " << oc << " coord " << i;
    }
  }
  // Bias gradient.
  const auto db = grads.GradFor(1, 0);
  for (size_t oc = 0; oc < 3; ++oc) {
    auto b = conv.bias()->Row(0);
    const float saved = b[oc];
    b[oc] = saved + float(eps);
    const double plus = loss();
    b[oc] = saved - float(eps);
    const double minus = loss();
    b[oc] = saved;
    EXPECT_NEAR(db[oc], (plus - minus) / (2 * eps), 2e-2);
  }
  // Input gradient (subsampled).
  for (size_t i = 0; i < x.size(); i += 3) {
    const float saved = x[i];
    x[i] = saved + float(eps);
    const double plus = loss();
    x[i] = saved - float(eps);
    const double minus = loss();
    x[i] = saved;
    EXPECT_NEAR(dx[i], (plus - minus) / (2 * eps), 2e-2) << "input " << i;
  }
}

TEST(ReluTest, ForwardClampsNegatives) {
  std::vector<float> v = {-1.0f, 0.0f, 2.5f};
  Relu(v);
  EXPECT_EQ(v, (std::vector<float>{0.0f, 0.0f, 2.5f}));
}

TEST(ReluTest, BackwardGatesOnForwardOutput) {
  const std::vector<float> forward = {0.0f, 0.0f, 2.5f};
  const std::vector<float> dout = {1.0f, 2.0f, 3.0f};
  std::vector<float> dx = {10.0f, 10.0f, 10.0f};
  ReluBackward(forward, dout, dx);
  EXPECT_EQ(dx, (std::vector<float>{10.0f, 10.0f, 13.0f}));
}

}  // namespace
}  // namespace kge
