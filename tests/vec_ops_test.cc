#include "math/vec_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace kge {
namespace {

TEST(VecOpsTest, DotBasic) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
}

TEST(VecOpsTest, DotEmpty) {
  EXPECT_DOUBLE_EQ(Dot(std::vector<float>{}, std::vector<float>{}), 0.0);
}

TEST(VecOpsTest, TrilinearDotBasic) {
  const std::vector<float> a = {1, 2};
  const std::vector<float> b = {3, 4};
  const std::vector<float> c = {5, 6};
  EXPECT_DOUBLE_EQ(TrilinearDot(a, b, c), 1 * 3 * 5 + 2 * 4 * 6);
}

TEST(VecOpsTest, TrilinearDotIsFullySymmetricInArguments) {
  Rng rng(1);
  std::vector<float> a(16), b(16), c(16);
  for (size_t d = 0; d < 16; ++d) {
    a[d] = rng.NextUniform(-1, 1);
    b[d] = rng.NextUniform(-1, 1);
    c[d] = rng.NextUniform(-1, 1);
  }
  const double reference = TrilinearDot(a, b, c);
  EXPECT_NEAR(TrilinearDot(b, a, c), reference, 1e-9);
  EXPECT_NEAR(TrilinearDot(c, b, a), reference, 1e-9);
  EXPECT_NEAR(TrilinearDot(a, c, b), reference, 1e-9);
}

TEST(VecOpsTest, HadamardProduct) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  std::vector<float> out(3);
  Hadamard(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{4, 10, 18}));
}

TEST(VecOpsTest, HadamardAxpyAccumulates) {
  const std::vector<float> a = {1, 2};
  const std::vector<float> b = {3, 4};
  std::vector<float> out = {10, 20};
  HadamardAxpy(2.0f, a, b, out);
  EXPECT_EQ(out, (std::vector<float>{16, 36}));
}

TEST(VecOpsTest, Axpy) {
  const std::vector<float> a = {1, -1};
  std::vector<float> out = {5, 5};
  Axpy(3.0f, a, out);
  EXPECT_EQ(out, (std::vector<float>{8, 2}));
}

TEST(VecOpsTest, FillAndScale) {
  std::vector<float> v(4);
  Fill(v, 2.5f);
  EXPECT_EQ(v, (std::vector<float>{2.5, 2.5, 2.5, 2.5}));
  Scale(v, 2.0f);
  EXPECT_EQ(v, (std::vector<float>{5, 5, 5, 5}));
}

TEST(VecOpsTest, Norms) {
  const std::vector<float> v = {3, -4};
  EXPECT_DOUBLE_EQ(SquaredNorm(v), 25.0);
  EXPECT_DOUBLE_EQ(Norm(v), 5.0);
  EXPECT_DOUBLE_EQ(L1Norm(v), 7.0);
}

TEST(VecOpsTest, LpDistanceL1AndL2) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {2, 0, 3};
  EXPECT_DOUBLE_EQ(LpDistance(a, b, 1), 3.0);
  EXPECT_DOUBLE_EQ(LpDistance(a, b, 2), 5.0);
  EXPECT_DOUBLE_EQ(LpDistance(a, a, 1), 0.0);
}

TEST(VecOpsTest, NormalizeL2MakesUnitNorm) {
  std::vector<float> v = {3, 4};
  NormalizeL2(v);
  EXPECT_NEAR(Norm(v), 1.0, 1e-6);
  EXPECT_NEAR(v[0], 0.6f, 1e-6);
}

TEST(VecOpsTest, NormalizeL2LeavesZeroVector) {
  std::vector<float> v = {0, 0, 0};
  NormalizeL2(v);
  EXPECT_EQ(v, (std::vector<float>{0, 0, 0}));
}

TEST(VecOpsTest, MaxAbsDiff) {
  const std::vector<float> a = {1, 5, 3};
  const std::vector<float> b = {1, 2, 4};
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 3.0);
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, a), 0.0);
}

TEST(VecOpsTest, DotAccumulatesInDoubleForLargeVectors) {
  // 1e7-magnitude cancellation errors would show with float accumulation.
  std::vector<float> a(1000, 1e4f);
  std::vector<float> b(1000, 1e4f);
  a.push_back(1.0f);
  b.push_back(1.0f);
  const double expected = 1000.0 * 1e8 + 1.0;
  EXPECT_DOUBLE_EQ(Dot(a, b), expected);
}

// Property sweep: Dot(a, b) == TrilinearDot(a, b, ones).
class VecOpsPropertyTest : public testing::TestWithParam<int> {};

TEST_P(VecOpsPropertyTest, TrilinearWithOnesEqualsDot) {
  const size_t dim = size_t(GetParam());
  Rng rng{uint64_t(dim)};
  std::vector<float> a(dim), b(dim), ones(dim, 1.0f);
  for (size_t d = 0; d < dim; ++d) {
    a[d] = rng.NextUniform(-2, 2);
    b[d] = rng.NextUniform(-2, 2);
  }
  EXPECT_NEAR(TrilinearDot(a, b, ones), Dot(a, b), 1e-6);
}

TEST_P(VecOpsPropertyTest, HadamardThenDotEqualsTrilinear) {
  const size_t dim = size_t(GetParam());
  Rng rng(uint64_t(dim) + 100);
  std::vector<float> a(dim), b(dim), c(dim), ab(dim);
  for (size_t d = 0; d < dim; ++d) {
    a[d] = rng.NextUniform(-2, 2);
    b[d] = rng.NextUniform(-2, 2);
    c[d] = rng.NextUniform(-2, 2);
  }
  Hadamard(a, b, ab);
  EXPECT_NEAR(Dot(ab, c), TrilinearDot(a, b, c), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, VecOpsPropertyTest,
                         testing::Values(1, 2, 7, 64, 255, 1024));

}  // namespace
}  // namespace kge
