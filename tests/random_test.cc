#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace kge {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
  // bound=1 always returns 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextUniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.NextUniform(-2.0f, 3.0f);
    EXPECT_GE(x, -2.0f);
    EXPECT_LT(x, 3.0f);
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(5);
  constexpr int kDraws = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleHandlesEmptyAndSingleton) {
  Rng rng(9);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(10);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += parent.NextUint64() == child.NextUint64();
  EXPECT_LT(same, 3);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64Next(&state);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64Next(&state2), first);
  EXPECT_NE(SplitMix64Next(&state2), first);
}

}  // namespace
}  // namespace kge
