#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <unordered_set>

namespace kge {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
  // bound=1 always returns 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextUniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.NextUniform(-2.0f, 3.0f);
    EXPECT_GE(x, -2.0f);
    EXPECT_LT(x, 3.0f);
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(5);
  constexpr int kDraws = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleHandlesEmptyAndSingleton) {
  Rng rng(9);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(10);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += parent.NextUint64() == child.NextUint64();
  EXPECT_LT(same, 3);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64Next(&state);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64Next(&state2), first);
  EXPECT_NE(SplitMix64Next(&state2), first);
}

TEST(DeriveStreamSeedTest, GridOfStreamsIsCollisionFree) {
  // Regression for the old shard-seed derivation
  // (seed ^ batch*K1 ^ shard*K2), whose xor-of-multiples structure can
  // collide across (batch, shard) pairs. The chained SplitMix64
  // derivation must give distinct seeds over a dense grid.
  std::unordered_set<uint64_t> seen;
  const uint64_t seeds[] = {0, 1, 1234, 0xDEADBEEFULL};
  for (uint64_t seed : seeds) {
    seen.clear();
    for (uint64_t a = 0; a < 512; ++a) {
      for (uint64_t b = 0; b < 64; ++b) {
        EXPECT_TRUE(seen.insert(DeriveStreamSeed(seed, a, b)).second)
            << "collision at seed=" << seed << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(DeriveStreamSeedTest, OldXorSchemeIsAffineWhereNewOneIsNot) {
  // Demonstrate the weakness being fixed. The replaced derivation
  // (seed ^ batch*K1 ^ shard*K2) is xor-affine, so (1) the difference
  // between two shard streams is one constant for every seed and every
  // batch, and (2) shifting the seed by that constant makes two runs
  // share a sampling stream bit-for-bit. The chained SplitMix64
  // derivation has neither property.
  constexpr uint64_t kK1 = 0x9E3779B97F4AULL;
  constexpr uint64_t kK2 = 0xBF58476D1CE4ULL;
  const auto old_scheme = [](uint64_t seed, uint64_t batch, uint64_t shard) {
    return seed ^ (batch * kK1) ^ (shard * kK2);
  };

  const uint64_t d = old_scheme(1, 0, 2) ^ old_scheme(1, 0, 5);
  for (uint64_t seed : {uint64_t{0}, uint64_t{99}, uint64_t{0xDEADBEEF}}) {
    for (uint64_t batch = 0; batch < 16; ++batch) {
      // (1) Constant inter-shard difference, independent of seed/batch.
      EXPECT_EQ(old_scheme(seed, batch, 2) ^ old_scheme(seed, batch, 5), d);
      // (2) A related seed replays another shard's stream exactly.
      EXPECT_EQ(old_scheme(seed ^ d, batch, 5), old_scheme(seed, batch, 2));
      // DeriveStreamSeed does not alias under the same seed shift.
      EXPECT_NE(DeriveStreamSeed(seed ^ d, batch, 5),
                DeriveStreamSeed(seed, batch, 2));
    }
  }
  // The new scheme's inter-shard differences vary with (seed, batch).
  const uint64_t d0 = DeriveStreamSeed(1, 0, 2) ^ DeriveStreamSeed(1, 0, 5);
  EXPECT_NE(DeriveStreamSeed(1, 7, 2) ^ DeriveStreamSeed(1, 7, 5), d0);
  EXPECT_NE(DeriveStreamSeed(9, 0, 2) ^ DeriveStreamSeed(9, 0, 5), d0);
}

TEST(DeriveStreamSeedTest, SensitiveToEveryInput) {
  const uint64_t base = DeriveStreamSeed(7, 3, 5);
  EXPECT_NE(base, DeriveStreamSeed(8, 3, 5));
  EXPECT_NE(base, DeriveStreamSeed(7, 4, 5));
  EXPECT_NE(base, DeriveStreamSeed(7, 3, 6));
  // Swapping a and b must not alias (the chain is ordered).
  EXPECT_NE(DeriveStreamSeed(7, 3, 5), DeriveStreamSeed(7, 5, 3));
}

}  // namespace
}  // namespace kge
