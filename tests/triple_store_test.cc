#include "kg/triple_store.h"

#include <gtest/gtest.h>

#include <set>

namespace kge {
namespace {

TripleStore MakeStore() {
  TripleStore store;
  store.Add(0, 1, 0);
  store.Add(0, 2, 0);
  store.Add(1, 2, 1);
  store.Add(2, 0, 1);
  store.Add(2, 1, 0);
  return store;
}

TEST(TripleTest, ComparisonAndHash) {
  const Triple a{1, 2, 3};
  const Triple b{1, 2, 3};
  const Triple c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  TripleHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));  // overwhelmingly likely
}

TEST(TripleStoreTest, SizeAndAccess) {
  TripleStore store = MakeStore();
  EXPECT_EQ(store.size(), 5u);
  EXPECT_FALSE(store.empty());
  EXPECT_EQ(store[0], (Triple{0, 1, 0}));
}

TEST(TripleStoreTest, ContainsWithoutIndexes) {
  TripleStore store = MakeStore();
  EXPECT_TRUE(store.Contains({0, 1, 0}));
  EXPECT_FALSE(store.Contains({1, 0, 0}));
}

TEST(TripleStoreTest, ContainsWithIndexes) {
  TripleStore store = MakeStore();
  store.BuildIndexes(3, 2);
  EXPECT_TRUE(store.Contains({2, 0, 1}));
  EXPECT_FALSE(store.Contains({2, 0, 0}));
}

TEST(TripleStoreTest, ByHeadGroupsCorrectly) {
  TripleStore store = MakeStore();
  store.BuildIndexes(3, 2);
  const auto positions = store.ByHead(0);
  ASSERT_EQ(positions.size(), 2u);
  std::set<Triple> found;
  for (uint32_t pos : positions) found.insert(store[pos]);
  EXPECT_TRUE(found.contains(Triple{0, 1, 0}));
  EXPECT_TRUE(found.contains(Triple{0, 2, 0}));
}

TEST(TripleStoreTest, ByTailGroupsCorrectly) {
  TripleStore store = MakeStore();
  store.BuildIndexes(3, 2);
  const auto positions = store.ByTail(2);
  ASSERT_EQ(positions.size(), 2u);
  for (uint32_t pos : positions) EXPECT_EQ(store[pos].tail, 2);
}

TEST(TripleStoreTest, ByRelationGroupsCorrectly) {
  TripleStore store = MakeStore();
  store.BuildIndexes(3, 2);
  EXPECT_EQ(store.ByRelation(0).size(), 3u);
  EXPECT_EQ(store.ByRelation(1).size(), 2u);
}

TEST(TripleStoreTest, GroupOfAbsentValueIsEmpty) {
  TripleStore store;
  store.Add(0, 1, 0);
  store.BuildIndexes(5, 3);
  EXPECT_TRUE(store.ByHead(4).empty());
  EXPECT_TRUE(store.ByRelation(2).empty());
}

TEST(TripleStoreTest, AddInvalidatesIndexes) {
  TripleStore store = MakeStore();
  store.BuildIndexes(3, 2);
  EXPECT_TRUE(store.indexes_valid());
  store.Add(1, 0, 1);
  EXPECT_FALSE(store.indexes_valid());
  EXPECT_DEATH({ (void)store.ByHead(0); }, "KGE_CHECK");
}

TEST(TripleStoreTest, MaxIds) {
  TripleStore store = MakeStore();
  EXPECT_EQ(store.MaxEntityId(), 2);
  EXPECT_EQ(store.MaxRelationId(), 1);
  TripleStore empty;
  EXPECT_EQ(empty.MaxEntityId(), -1);
  EXPECT_EQ(empty.MaxRelationId(), -1);
}

TEST(TripleStoreTest, BuildIndexesRejectsTooSmallRanges) {
  TripleStore store = MakeStore();
  EXPECT_DEATH({ store.BuildIndexes(2, 2); }, "KGE_CHECK");
}

TEST(TripleStoreTest, ConstructFromVector) {
  std::vector<Triple> triples = {{0, 1, 0}, {1, 0, 0}};
  TripleStore store(std::move(triples));
  EXPECT_EQ(store.size(), 2u);
}

TEST(TripleStoreTest, IndexesCoverEveryTripleExactlyOnce) {
  TripleStore store = MakeStore();
  store.BuildIndexes(3, 2);
  size_t total = 0;
  for (int32_t e = 0; e < 3; ++e) total += store.ByHead(e).size();
  EXPECT_EQ(total, store.size());
  total = 0;
  for (int32_t r = 0; r < 2; ++r) total += store.ByRelation(r).size();
  EXPECT_EQ(total, store.size());
}

}  // namespace
}  // namespace kge
