#include "kg/relation_analysis.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(MappingCategoryTest, Names) {
  EXPECT_STREQ(MappingCategoryToString(MappingCategory::kOneToOne), "1-1");
  EXPECT_STREQ(MappingCategoryToString(MappingCategory::kOneToMany), "1-N");
  EXPECT_STREQ(MappingCategoryToString(MappingCategory::kManyToOne), "N-1");
  EXPECT_STREQ(MappingCategoryToString(MappingCategory::kManyToMany), "N-N");
}

TEST(RelationAnalysisTest, DetectsOneToOne) {
  const std::vector<Triple> triples = {{0, 1, 0}, {2, 3, 0}, {4, 5, 0}};
  const auto stats = AnalyzeRelations(triples, 6, 1);
  EXPECT_EQ(stats[0].category, MappingCategory::kOneToOne);
  EXPECT_NEAR(stats[0].tails_per_head, 1.0, 1e-9);
  EXPECT_NEAR(stats[0].heads_per_tail, 1.0, 1e-9);
}

TEST(RelationAnalysisTest, DetectsOneToMany) {
  std::vector<Triple> triples;
  for (EntityId t = 1; t <= 4; ++t) triples.push_back({0, t, 0});
  for (EntityId t = 6; t <= 9; ++t) triples.push_back({5, t, 0});
  const auto stats = AnalyzeRelations(triples, 10, 1);
  EXPECT_EQ(stats[0].category, MappingCategory::kOneToMany);
  EXPECT_NEAR(stats[0].tails_per_head, 4.0, 1e-9);
}

TEST(RelationAnalysisTest, DetectsManyToOne) {
  std::vector<Triple> triples;
  for (EntityId h = 1; h <= 4; ++h) triples.push_back({h, 0, 0});
  const auto stats = AnalyzeRelations(triples, 5, 1);
  EXPECT_EQ(stats[0].category, MappingCategory::kManyToOne);
}

TEST(RelationAnalysisTest, DetectsManyToMany) {
  std::vector<Triple> triples;
  for (EntityId h = 0; h < 3; ++h) {
    for (EntityId t = 3; t < 6; ++t) triples.push_back({h, t, 0});
  }
  const auto stats = AnalyzeRelations(triples, 6, 1);
  EXPECT_EQ(stats[0].category, MappingCategory::kManyToMany);
}

TEST(RelationAnalysisTest, SymmetryScores) {
  // Relation 0 fully symmetric, relation 1 fully antisymmetric.
  const std::vector<Triple> triples = {{0, 1, 0}, {1, 0, 0}, {2, 3, 0},
                                       {3, 2, 0}, {0, 1, 1}, {2, 3, 1}};
  const auto stats = AnalyzeRelations(triples, 4, 2);
  EXPECT_NEAR(stats[0].symmetry, 1.0, 1e-9);
  EXPECT_NEAR(stats[1].symmetry, 0.0, 1e-9);
}

TEST(RelationAnalysisTest, SelfLoopsDoNotCountTowardSymmetry) {
  const std::vector<Triple> triples = {{0, 0, 0}, {1, 2, 0}};
  const auto stats = AnalyzeRelations(triples, 3, 1);
  EXPECT_NEAR(stats[0].symmetry, 0.0, 1e-9);
}

TEST(RelationAnalysisTest, DetectsInversePair) {
  const std::vector<Triple> triples = {{0, 1, 0}, {2, 3, 0}, {1, 0, 1},
                                       {3, 2, 1}};
  const auto stats = AnalyzeRelations(triples, 4, 2);
  EXPECT_EQ(stats[0].best_inverse, 1);
  EXPECT_NEAR(stats[0].best_inverse_score, 1.0, 1e-9);
  EXPECT_EQ(stats[1].best_inverse, 0);
  EXPECT_NEAR(stats[1].best_inverse_score, 1.0, 1e-9);
}

TEST(RelationAnalysisTest, EmptyRelationHasNoStats) {
  const std::vector<Triple> triples = {{0, 1, 0}};
  const auto stats = AnalyzeRelations(triples, 2, 2);
  EXPECT_EQ(stats[1].num_triples, 0u);
  EXPECT_EQ(stats[1].best_inverse, -1);
}

TEST(RelationAnalysisTest, TableRendersOneRowPerRelation) {
  const std::vector<Triple> triples = {{0, 1, 0}, {1, 0, 1}};
  const auto stats = AnalyzeRelations(triples, 2, 2);
  const std::string table = RelationStatsTable(stats);
  int newlines = 0;
  for (char c : table) newlines += c == '\n';
  EXPECT_EQ(newlines, 3);  // header + 2 relations
}

}  // namespace
}  // namespace kge
