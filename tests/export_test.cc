#include "eval/export.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/io.h"
#include "util/string_utils.h"

namespace kge {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(ExportTest, WritesOneRowPerIdWithAllComponents) {
  EmbeddingStore store("e", 3, 2, 2);
  for (int32_t id = 0; id < 3; ++id) {
    auto row = store.Of(id);
    for (size_t d = 0; d < row.size(); ++d) {
      row[d] = float(id) + float(d) * 0.25f;
    }
  }
  const std::string vectors_path = TempPath("vectors.tsv");
  ASSERT_TRUE(
      ExportEmbeddingsTsv(store, nullptr, vectors_path, "").ok());
  const Result<std::string> content = ReadFileToString(vectors_path);
  ASSERT_TRUE(content.ok());
  const auto lines = SplitString(TrimString(*content), '\n');
  ASSERT_EQ(lines.size(), 3u);
  // Each row has 4 tab-separated values (2 vectors x 2 dims).
  EXPECT_EQ(SplitString(lines[0], '\t').size(), 4u);
  EXPECT_EQ(*ParseDouble(SplitString(lines[1], '\t')[0]), 1.0);
  EXPECT_EQ(*ParseDouble(SplitString(lines[2], '\t')[3]), 2.75);
  std::remove(vectors_path.c_str());
}

TEST(ExportTest, WritesMetadataWhenVocabularyGiven) {
  EmbeddingStore store("e", 2, 1, 2);
  Vocabulary names;
  names.GetOrAdd("alpha");
  names.GetOrAdd("beta");
  const std::string vectors_path = TempPath("vectors2.tsv");
  const std::string metadata_path = TempPath("metadata.tsv");
  ASSERT_TRUE(
      ExportEmbeddingsTsv(store, &names, vectors_path, metadata_path).ok());
  const Result<std::string> metadata = ReadFileToString(metadata_path);
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(*metadata, "alpha\nbeta\n");
  std::remove(vectors_path.c_str());
  std::remove(metadata_path.c_str());
}

TEST(ExportTest, RejectsVocabularySizeMismatch) {
  EmbeddingStore store("e", 3, 1, 2);
  Vocabulary names;
  names.GetOrAdd("only_one");
  EXPECT_FALSE(ExportEmbeddingsTsv(store, &names, TempPath("x.tsv"),
                                   TempPath("y.tsv"))
                   .ok());
}

TEST(ExportTest, FailsOnUnwritablePath) {
  EmbeddingStore store("e", 1, 1, 2);
  EXPECT_FALSE(
      ExportEmbeddingsTsv(store, nullptr, "/nonexistent/dir/v.tsv", "")
          .ok());
}

}  // namespace
}  // namespace kge
