// MicroBatcher behavior: batched serving answers must match the offline
// PredictTails/PredictHeads exactly; admission control sheds
// deterministically at the queue bound; deadlines expire queued work;
// pressure downshifts the scoring tier; shutdown drains every request.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "eval/topk.h"
#include "models/model_factory.h"
#include "serve/micro_batcher.h"
#include "serve/snapshot.h"
#include "util/thread_annotations.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 40;
constexpr int32_t kRelations = 4;
constexpr int32_t kBudget = 16;

std::shared_ptr<ModelSnapshot> MakeSnapshot(const std::string& model_name,
                                            uint64_t seed) {
  auto model =
      MakeModelByName(model_name, kEntities, kRelations, kBudget, seed);
  EXPECT_TRUE(model.ok());
  (*model)->PrepareForScoring(ScorePrecision::kDouble);
  if ((*model)->SupportsScorePrecision(ScorePrecision::kInt8)) {
    (*model)->PrepareForScoring(ScorePrecision::kFloat32);
    (*model)->PrepareForScoring(ScorePrecision::kInt8);
  }
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->model = std::move(*model);
  return snapshot;
}

// Blocking reply collector: one per in-flight request.
struct Waiter {
  Mutex mutex;
  CondVar cv;
  bool done KGE_GUARDED_BY(mutex) = false;
  ServeStatusCode status KGE_GUARDED_BY(mutex) = ServeStatusCode::kError;
  ScorePrecision tier KGE_GUARDED_BY(mutex) = ScorePrecision::kDouble;
  uint64_t snapshot_version KGE_GUARDED_BY(mutex) = 0;
  std::vector<ScoredEntity> results KGE_GUARDED_BY(mutex);

  static void OnReply(void* ctx, const ServeReply& reply) {
    auto* waiter = static_cast<Waiter*>(ctx);
    MutexLock lock(waiter->mutex);
    waiter->status = reply.status;
    waiter->tier = reply.tier;
    waiter->snapshot_version = reply.snapshot_version;
    waiter->results.assign(reply.results.begin(), reply.results.end());
    waiter->done = true;
    waiter->cv.NotifyAll();
  }

  void Await() {
    MutexLock lock(mutex);
    while (!done) cv.Wait(mutex);
  }
};

// CI machines can stall a queued request past the 50ms production
// default; tests that expect kOk use the maximum deadline instead.
BatcherOptions RelaxedOptions() {
  BatcherOptions options;
  options.default_deadline_ms = kServeMaxDeadlineMs;
  return options;
}

ServeRequest TailQuery(EntityId entity, RelationId relation, uint32_t k) {
  ServeRequest request;
  request.side = QuerySide::kTail;
  request.entity = entity;
  request.relation = relation;
  request.k = k;
  return request;
}

TEST(MicroBatcherTest, MatchesOfflinePredictorsBothSides) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot("distmult", 17));
  MicroBatcher batcher(&registry, RelaxedOptions());
  batcher.Start();

  const auto snapshot = registry.Acquire();
  TopKOptions options;
  options.k = 7;
  for (const QuerySide side : {QuerySide::kTail, QuerySide::kHead}) {
    for (EntityId entity = 0; entity < 5; ++entity) {
      ServeRequest request = TailQuery(entity, 2, 7);
      request.side = side;
      Waiter waiter;
      batcher.Submit(request, &Waiter::OnReply, &waiter);
      waiter.Await();
      MutexLock lock(waiter.mutex);
      ASSERT_EQ(waiter.status, ServeStatusCode::kOk);
      EXPECT_EQ(waiter.tier, ScorePrecision::kDouble);
      EXPECT_EQ(waiter.snapshot_version, 1u);
      const std::vector<ScoredEntity> expected =
          side == QuerySide::kTail
              ? PredictTails(*snapshot->model, entity, 2, options)
              : PredictHeads(*snapshot->model, entity, 2, options);
      ASSERT_EQ(waiter.results.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(waiter.results[i].entity, expected[i].entity);
        EXPECT_FLOAT_EQ(waiter.results[i].score, expected[i].score);
      }
    }
  }
  batcher.Stop();
}

TEST(MicroBatcherTest, ClampsKAndAnswersEmptyForZeroK) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot("distmult", 3));
  BatcherOptions options = RelaxedOptions();
  options.max_topk = 5;
  MicroBatcher batcher(&registry, options);
  batcher.Start();

  Waiter big;
  batcher.Submit(TailQuery(1, 0, 5000), &Waiter::OnReply, &big);
  big.Await();
  {
    MutexLock lock(big.mutex);
    EXPECT_EQ(big.status, ServeStatusCode::kOk);
    EXPECT_EQ(big.results.size(), 5u);  // clamped to max_topk
  }

  Waiter zero;
  batcher.Submit(TailQuery(1, 0, 0), &Waiter::OnReply, &zero);
  zero.Await();
  MutexLock lock(zero.mutex);
  EXPECT_EQ(zero.status, ServeStatusCode::kOk);
  EXPECT_TRUE(zero.results.empty());
}

TEST(MicroBatcherTest, RejectsOutOfRangeEntityAndRelation) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot("distmult", 3));
  MicroBatcher batcher(&registry, RelaxedOptions());
  batcher.Start();

  for (const ServeRequest& request :
       {TailQuery(-1, 0, 3), TailQuery(kEntities, 0, 3),
        TailQuery(0, -1, 3), TailQuery(0, kRelations, 3)}) {
    Waiter waiter;
    batcher.Submit(request, &Waiter::OnReply, &waiter);
    waiter.Await();
    MutexLock lock(waiter.mutex);
    EXPECT_EQ(waiter.status, ServeStatusCode::kInvalid);
    EXPECT_TRUE(waiter.results.empty());
  }
  EXPECT_EQ(batcher.stats().invalid, 4u);
  batcher.Stop();
}

TEST(MicroBatcherTest, ErrorsWhenNoSnapshotPublished) {
  SnapshotRegistry registry;  // nothing published
  MicroBatcher batcher(&registry, RelaxedOptions());
  batcher.Start();
  Waiter waiter;
  batcher.Submit(TailQuery(0, 0, 3), &Waiter::OnReply, &waiter);
  waiter.Await();
  MutexLock lock(waiter.mutex);
  EXPECT_EQ(waiter.status, ServeStatusCode::kError);
}

// Queue bound: with workers not yet started, exactly max_queue requests
// are admitted and the rest shed inline — deterministically.
TEST(MicroBatcherTest, ShedsDeterministicallyBeyondMaxQueue) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot("distmult", 3));
  BatcherOptions options = RelaxedOptions();
  options.max_queue = 4;
  MicroBatcher batcher(&registry, options);  // not Started yet

  std::vector<std::unique_ptr<Waiter>> waiters;
  for (int i = 0; i < 7; ++i) {
    waiters.push_back(std::make_unique<Waiter>());
    batcher.Submit(TailQuery(EntityId(i % kEntities), 0, 2),
                   &Waiter::OnReply, waiters.back().get());
  }
  // The three overflow submissions completed inline with kShed.
  for (int i = 4; i < 7; ++i) {
    MutexLock lock(waiters[size_t(i)]->mutex);
    ASSERT_TRUE(waiters[size_t(i)]->done);
    EXPECT_EQ(waiters[size_t(i)]->status, ServeStatusCode::kShed);
  }
  EXPECT_EQ(batcher.stats().shed, 3u);
  EXPECT_EQ(batcher.stats().admitted, 4u);

  batcher.Start();
  for (int i = 0; i < 4; ++i) {
    waiters[size_t(i)]->Await();
    MutexLock lock(waiters[size_t(i)]->mutex);
    EXPECT_EQ(waiters[size_t(i)]->status, ServeStatusCode::kOk);
  }
  batcher.Stop();
}

TEST(MicroBatcherTest, ExpiresQueuedRequestsPastDeadline) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot("distmult", 3));
  MicroBatcher batcher(&registry, BatcherOptions{});  // not Started yet

  ServeRequest hurried = TailQuery(1, 0, 3);
  hurried.deadline_ms = 1;
  Waiter expired;
  batcher.Submit(hurried, &Waiter::OnReply, &expired);

  ServeRequest relaxed = TailQuery(1, 0, 3);
  relaxed.deadline_ms = kServeMaxDeadlineMs;
  Waiter served;
  batcher.Submit(relaxed, &Waiter::OnReply, &served);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  batcher.Start();
  expired.Await();
  served.Await();
  {
    MutexLock lock(expired.mutex);
    EXPECT_EQ(expired.status, ServeStatusCode::kDeadlineExceeded);
  }
  {
    MutexLock lock(served.mutex);
    EXPECT_EQ(served.status, ServeStatusCode::kOk);
  }
  EXPECT_EQ(batcher.stats().expired, 1u);
  batcher.Stop();
}

// Same-(relation, side) queries queued together dispatch as one batch.
TEST(MicroBatcherTest, CoalescesSameGroupIntoOneBatch) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot("distmult", 3));
  BatcherOptions options = RelaxedOptions();
  options.max_batch = 8;
  MicroBatcher batcher(&registry, options);  // not Started yet

  std::vector<std::unique_ptr<Waiter>> waiters;
  for (int i = 0; i < 5; ++i) {
    waiters.push_back(std::make_unique<Waiter>());
    batcher.Submit(TailQuery(EntityId(i), 1, 3), &Waiter::OnReply,
                   waiters.back().get());
  }
  batcher.Start();
  for (auto& waiter : waiters) {
    waiter->Await();
    MutexLock lock(waiter->mutex);
    EXPECT_EQ(waiter->status, ServeStatusCode::kOk);
  }
  const BatcherStatsView stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_queries, 5u);
  batcher.Stop();
}

// With both degradation thresholds at 0 and an int8 floor, every batch
// runs on the int8 replica and replies report the tier. With the
// default kDouble floor the same pressure changes nothing.
TEST(MicroBatcherTest, DegradesTierUnderConfiguredPressure) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot("distmult", 17));
  BatcherOptions options = RelaxedOptions();
  options.degrade_floor = ScorePrecision::kInt8;
  options.degrade_float32_pct = 0;
  options.degrade_int8_pct = 0;
  MicroBatcher batcher(&registry, options);
  batcher.Start();
  Waiter waiter;
  batcher.Submit(TailQuery(2, 1, 4), &Waiter::OnReply, &waiter);
  waiter.Await();
  {
    MutexLock lock(waiter.mutex);
    ASSERT_EQ(waiter.status, ServeStatusCode::kOk);
    EXPECT_EQ(waiter.tier, ScorePrecision::kInt8);
  }
  EXPECT_EQ(batcher.stats().batches_int8, 1u);
  batcher.Stop();

  BatcherOptions strict = RelaxedOptions();
  strict.degrade_floor = ScorePrecision::kDouble;
  strict.degrade_float32_pct = 0;
  strict.degrade_int8_pct = 0;
  MicroBatcher undegraded(&registry, strict);
  undegraded.Start();
  Waiter exact;
  undegraded.Submit(TailQuery(2, 1, 4), &Waiter::OnReply, &exact);
  exact.Await();
  MutexLock lock(exact.mutex);
  ASSERT_EQ(exact.status, ServeStatusCode::kOk);
  EXPECT_EQ(exact.tier, ScorePrecision::kDouble);
}

// A model without int8 support falls back to exact scoring even when
// the ladder is armed.
TEST(MicroBatcherTest, FallsBackToDoubleWhenTierUnsupported) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot("transe-l2", 5));
  BatcherOptions options = RelaxedOptions();
  options.degrade_floor = ScorePrecision::kInt8;
  options.degrade_float32_pct = 0;
  options.degrade_int8_pct = 0;
  MicroBatcher batcher(&registry, options);
  batcher.Start();
  Waiter waiter;
  batcher.Submit(TailQuery(2, 1, 4), &Waiter::OnReply, &waiter);
  waiter.Await();
  MutexLock lock(waiter.mutex);
  ASSERT_EQ(waiter.status, ServeStatusCode::kOk);
  EXPECT_EQ(waiter.tier, ScorePrecision::kDouble);
}

TEST(MicroBatcherTest, StopDrainsQueuedWithShuttingDown) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot("distmult", 3));
  MicroBatcher batcher(&registry, RelaxedOptions());  // never Started

  std::vector<std::unique_ptr<Waiter>> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.push_back(std::make_unique<Waiter>());
    batcher.Submit(TailQuery(EntityId(i), 0, 2), &Waiter::OnReply,
                   waiters.back().get());
  }
  batcher.Stop();
  for (auto& waiter : waiters) {
    MutexLock lock(waiter->mutex);
    ASSERT_TRUE(waiter->done);
    EXPECT_EQ(waiter->status, ServeStatusCode::kShuttingDown);
  }

  // After Stop, new submissions complete inline with kShuttingDown.
  Waiter late;
  batcher.Submit(TailQuery(0, 0, 2), &Waiter::OnReply, &late);
  MutexLock lock(late.mutex);
  ASSERT_TRUE(late.done);
  EXPECT_EQ(late.status, ServeStatusCode::kShuttingDown);
}

}  // namespace
}  // namespace kge
