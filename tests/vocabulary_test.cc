#include "kg/vocabulary.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(VocabularyTest, AssignsDenseIdsInFirstSeenOrder) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd("cat"), 0);
  EXPECT_EQ(vocab.GetOrAdd("dog"), 1);
  EXPECT_EQ(vocab.GetOrAdd("cat"), 0);
  EXPECT_EQ(vocab.GetOrAdd("bird"), 2);
  EXPECT_EQ(vocab.size(), 3);
}

TEST(VocabularyTest, FindReturnsMinusOneForUnknown) {
  Vocabulary vocab;
  vocab.GetOrAdd("cat");
  EXPECT_EQ(vocab.Find("cat"), 0);
  EXPECT_EQ(vocab.Find("unicorn"), -1);
}

TEST(VocabularyTest, NameOfRoundTrips) {
  Vocabulary vocab;
  vocab.GetOrAdd("alpha");
  vocab.GetOrAdd("beta");
  EXPECT_EQ(vocab.NameOf(0), "alpha");
  EXPECT_EQ(vocab.NameOf(1), "beta");
}

TEST(VocabularyTest, NameOfOutOfRangeAborts) {
  Vocabulary vocab;
  vocab.GetOrAdd("x");
  EXPECT_DEATH({ (void)vocab.NameOf(5); }, "KGE_CHECK");
  EXPECT_DEATH({ (void)vocab.NameOf(-1); }, "KGE_CHECK");
}

TEST(VocabularyTest, EmptyVocabulary) {
  Vocabulary vocab;
  EXPECT_TRUE(vocab.empty());
  EXPECT_EQ(vocab.size(), 0);
  EXPECT_EQ(vocab.Find("anything"), -1);
}

TEST(VocabularyTest, EmptyStringIsAValidName) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd(""), 0);
  EXPECT_EQ(vocab.Find(""), 0);
}

TEST(VocabularyTest, NamesVectorMatchesInsertOrder) {
  Vocabulary vocab;
  vocab.GetOrAdd("one");
  vocab.GetOrAdd("two");
  ASSERT_EQ(vocab.names().size(), 2u);
  EXPECT_EQ(vocab.names()[0], "one");
  EXPECT_EQ(vocab.names()[1], "two");
}

TEST(VocabularyTest, ManyEntries) {
  Vocabulary vocab;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(vocab.GetOrAdd("entity_" + std::to_string(i)), i);
  }
  EXPECT_EQ(vocab.size(), 10000);
  EXPECT_EQ(vocab.Find("entity_9999"), 9999);
}

}  // namespace
}  // namespace kge
