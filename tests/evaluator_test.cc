#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "eval/metrics.h"

namespace kge {
namespace {

// Deterministic stub model whose score is computed by a user-provided
// function; lets ranking tests construct exact score landscapes.
class FakeModel : public KgeModel {
 public:
  using ScoreFn = std::function<double(const Triple&)>;

  FakeModel(int32_t num_entities, int32_t num_relations, ScoreFn score)
      : name_("Fake"),
        num_entities_(num_entities),
        num_relations_(num_relations),
        score_(std::move(score)) {}

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return num_entities_; }
  int32_t num_relations() const override { return num_relations_; }

  double Score(const Triple& triple) const override { return score_(triple); }

  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override {
    for (EntityId t = 0; t < num_entities_; ++t) {
      out[size_t(t)] = float(score_({head, t, relation}));
    }
  }
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override {
    for (EntityId h = 0; h < num_entities_; ++h) {
      out[size_t(h)] = float(score_({h, tail, relation}));
    }
  }

  std::vector<ParameterBlock*> Blocks() override { return {}; }
  void AccumulateGradients(const Triple&, float, GradientBuffer*) override {}
  void NormalizeEntities(std::span<const EntityId>) override {}
  void InitParameters(uint64_t) override {}

 private:
  std::string name_;
  int32_t num_entities_;
  int32_t num_relations_;
  ScoreFn score_;
};

TEST(RankingMetricsTest, BasicAccumulation) {
  RankingMetrics metrics;
  metrics.AddRank(1);
  metrics.AddRank(2);
  metrics.AddRank(10);
  metrics.AddRank(100);
  EXPECT_EQ(metrics.count(), 4u);
  EXPECT_NEAR(metrics.Mrr(), (1.0 + 0.5 + 0.1 + 0.01) / 4.0, 1e-12);
  EXPECT_NEAR(metrics.MeanRank(), 113.0 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(metrics.HitsAt(1), 0.25);
  EXPECT_DOUBLE_EQ(metrics.HitsAt(3), 0.5);
  EXPECT_DOUBLE_EQ(metrics.HitsAt(10), 0.75);
}

TEST(RankingMetricsTest, EmptyMetricsAreZero) {
  RankingMetrics metrics;
  EXPECT_EQ(metrics.Mrr(), 0.0);
  EXPECT_EQ(metrics.HitsAt(10), 0.0);
  EXPECT_EQ(metrics.MeanRank(), 0.0);
}

TEST(RankingMetricsTest, MergeCombinesCounts) {
  RankingMetrics a, b;
  a.AddRank(1);
  b.AddRank(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.Mrr(), (1.0 + 1.0 / 3.0) / 2.0, 1e-12);
}

TEST(RankingMetricsTest, FractionalTieRankCountsTowardHits) {
  RankingMetrics metrics;
  metrics.AddRank(2.5);
  EXPECT_DOUBLE_EQ(metrics.HitsAt(3), 1.0);
  EXPECT_DOUBLE_EQ(metrics.HitsAt(1), 0.0);
}

TEST(RankingMetricsTest, AdjustedMeanRankIndexPerfectAndRandom) {
  // Perfect ranker over 100-candidate queries: AMRI = 1.
  RankingMetrics perfect;
  perfect.AddRank(1, 100);
  perfect.AddRank(1, 100);
  EXPECT_NEAR(perfect.AdjustedMeanRankIndex(), 1.0, 1e-12);
  // Random ranker: mean rank equals (n+1)/2 => AMRI = 0.
  RankingMetrics random;
  random.AddRank(50.5, 100);
  EXPECT_NEAR(random.AdjustedMeanRankIndex(), 0.0, 1e-12);
  // Worst ranker: AMRI < 0.
  RankingMetrics worst;
  worst.AddRank(100, 100);
  EXPECT_LT(worst.AdjustedMeanRankIndex(), -0.9);
}

TEST(RankingMetricsTest, AmriZeroWithoutCandidateCounts) {
  RankingMetrics metrics;
  metrics.AddRank(1);
  EXPECT_EQ(metrics.AdjustedMeanRankIndex(), 0.0);
  // Mixed known/unknown counts also disable it.
  metrics.AddRank(1, 10);
  EXPECT_EQ(metrics.AdjustedMeanRankIndex(), 0.0);
}

TEST(RankingMetricsTest, AmriSurvivesMerge) {
  RankingMetrics a, b;
  a.AddRank(1, 10);
  b.AddRank(5.5, 10);
  a.Merge(b);
  // MR = 3.25, E[MR] = 5.5 => AMRI = 1 - 2.25/4.5 = 0.5.
  EXPECT_NEAR(a.AdjustedMeanRankIndex(), 0.5, 1e-12);
}

TEST(RankingMetricsTest, ToStringContainsAllMetrics) {
  RankingMetrics metrics;
  metrics.AddRank(1);
  const std::string s = metrics.ToString();
  EXPECT_NE(s.find("MRR"), std::string::npos);
  EXPECT_NE(s.find("H@10"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

class EvaluatorTest : public testing::Test {
 protected:
  static constexpr int32_t kEntities = 10;
  void SetUp() override {
    train_ = {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}};
    valid_ = {{3, 4, 0}};
    test_ = {{0, 2, 0}};
    filter_.Build(train_, valid_, test_);
  }

  std::vector<Triple> train_, valid_, test_;
  FilterIndex filter_;
};

TEST_F(EvaluatorTest, PerfectModelGetsRankOne) {
  // Score = 1 iff the triple is a known fact, else 0.
  FilterIndex* filter = &filter_;
  FakeModel model(kEntities, 1, [filter](const Triple& t) {
    return filter->Contains(t) ? 1.0 : 0.0;
  });
  Evaluator evaluator(&filter_, 1);
  EvalOptions options;
  options.filtered = true;
  const RankingMetrics metrics =
      evaluator.EvaluateOverall(model, test_, options);
  EXPECT_EQ(metrics.count(), 2u);  // head + tail queries
  EXPECT_DOUBLE_EQ(metrics.Mrr(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.HitsAt(1), 1.0);
}

TEST_F(EvaluatorTest, ConstantModelGetsTieAveragedRank) {
  FakeModel model(kEntities, 1, [](const Triple&) { return 0.0; });
  Evaluator evaluator(&filter_, 1);
  EvalOptions options;
  options.filtered = false;
  const RankingMetrics metrics =
      evaluator.EvaluateOverall(model, test_, options);
  // All 10 candidates tie; with the true entity excluded from ties, the
  // tie-averaged rank is 1 + 9/2 = 5.5 for both queries.
  EXPECT_NEAR(metrics.MeanRank(), 5.5, 1e-9);
  EXPECT_DOUBLE_EQ(metrics.HitsAt(1), 0.0);
}

TEST_F(EvaluatorTest, FilteringRemovesKnownCompetitors) {
  // Model ranks entity 1 above everything for tail queries of (0, ?, 0);
  // the true test tail is 2. Unfiltered rank = 2; filtered rank = 1
  // because (0, 1, 0) is a known train triple and gets filtered.
  FakeModel model(kEntities, 1, [](const Triple& t) {
    if (t.head == 0 && t.tail == 1) return 10.0;
    if (t.head == 0 && t.tail == 2) return 5.0;
    return double(-int(t.tail)) - double(10 * t.head);
  });
  Evaluator evaluator(&filter_, 1);

  std::vector<float> scores(kEntities);
  model.ScoreAllTails(0, 0, scores);
  EXPECT_DOUBLE_EQ(evaluator.RankTail({0, 2, 0}, scores, /*filtered=*/false),
                   2.0);
  EXPECT_DOUBLE_EQ(evaluator.RankTail({0, 2, 0}, scores, /*filtered=*/true),
                   1.0);
}

TEST_F(EvaluatorTest, RankHeadMirrorsRankTail) {
  FakeModel model(kEntities, 1, [](const Triple& t) {
    if (t.tail == 2 && t.head == 1) return 10.0;  // known (1,2,0)
    if (t.tail == 2 && t.head == 0) return 5.0;   // true test head
    return -1.0;
  });
  Evaluator evaluator(&filter_, 1);
  std::vector<float> scores(kEntities);
  model.ScoreAllHeads(2, 0, scores);
  EXPECT_DOUBLE_EQ(evaluator.RankHead({0, 2, 0}, scores, false), 2.0);
  EXPECT_DOUBLE_EQ(evaluator.RankHead({0, 2, 0}, scores, true), 1.0);
}

TEST_F(EvaluatorTest, CandidateCountsReflectFiltering) {
  Evaluator evaluator(&filter_, 1);
  // Test triple (0, 2, 0): known tails of (0, ?, 0) are {1, 2}
  // (train (0,1,0) and test (0,2,0)); with 10 entities the candidates
  // are 10 - 2 + 1 = 9 filtered, 10 raw.
  EXPECT_EQ(evaluator.CountTailCandidates({0, 2, 0}, kEntities, true), 9u);
  EXPECT_EQ(evaluator.CountTailCandidates({0, 2, 0}, kEntities, false),
            10u);
  // Head direction: known heads of (?, 2, 0) are {1, 0}.
  EXPECT_EQ(evaluator.CountHeadCandidates({0, 2, 0}, kEntities, true), 9u);
}

TEST_F(EvaluatorTest, PerfectModelHasAmriOne) {
  FilterIndex* filter = &filter_;
  FakeModel model(kEntities, 1, [filter](const Triple& t) {
    return filter->Contains(t) ? 1.0 : 0.0;
  });
  Evaluator evaluator(&filter_, 1);
  const RankingMetrics metrics =
      evaluator.EvaluateOverall(model, test_, EvalOptions{});
  EXPECT_NEAR(metrics.AdjustedMeanRankIndex(), 1.0, 1e-9);
}

TEST_F(EvaluatorTest, ConstantModelHasAmriNearZero) {
  FakeModel model(kEntities, 1, [](const Triple&) { return 0.0; });
  Evaluator evaluator(&filter_, 1);
  const RankingMetrics metrics =
      evaluator.EvaluateOverall(model, test_, EvalOptions{});
  EXPECT_NEAR(metrics.AdjustedMeanRankIndex(), 0.0, 1e-9);
}

TEST_F(EvaluatorTest, PerRelationBreakdown) {
  std::vector<Triple> train = {{0, 1, 0}, {1, 2, 1}};
  std::vector<Triple> test = {{0, 1, 0}, {1, 2, 1}};
  FilterIndex filter;
  filter.Build(train, {}, test);
  FakeModel model(kEntities, 2, [&filter](const Triple& t) {
    return filter.Contains(t) ? 1.0 : 0.0;
  });
  Evaluator evaluator(&filter, 2);
  const EvalResult result = evaluator.Evaluate(model, test, EvalOptions{});
  ASSERT_EQ(result.per_relation.size(), 2u);
  EXPECT_EQ(result.per_relation[0].tail_queries.count(), 1u);
  EXPECT_EQ(result.per_relation[1].tail_queries.count(), 1u);
  EXPECT_EQ(result.overall.count(), 4u);
}

TEST_F(EvaluatorTest, MaxTriplesSubsamples) {
  std::vector<Triple> many;
  for (EntityId e = 0; e + 1 < kEntities; ++e) many.push_back({e, e + 1, 0});
  FakeModel model(kEntities, 1, [](const Triple&) { return 0.0; });
  Evaluator evaluator(&filter_, 1);
  EvalOptions options;
  options.max_triples = 3;
  const RankingMetrics metrics =
      evaluator.EvaluateOverall(model, many, options);
  EXPECT_EQ(metrics.count(), 6u);  // 3 triples x 2 directions
}

TEST_F(EvaluatorTest, MultithreadedMatchesSingleThreaded) {
  FakeModel model(kEntities, 1, [](const Triple& t) {
    return double((t.head * 7 + t.tail * 13 + t.relation) % 23);
  });
  Evaluator evaluator(&filter_, 1);
  std::vector<Triple> test;
  for (EntityId e = 0; e + 1 < kEntities; ++e) test.push_back({e, e + 1, 0});

  EvalOptions serial;
  serial.num_threads = 1;
  EvalOptions parallel;
  parallel.num_threads = 4;
  const RankingMetrics a = evaluator.EvaluateOverall(model, test, serial);
  const RankingMetrics b = evaluator.EvaluateOverall(model, test, parallel);
  EXPECT_DOUBLE_EQ(a.Mrr(), b.Mrr());
  EXPECT_DOUBLE_EQ(a.MeanRank(), b.MeanRank());
  EXPECT_EQ(a.count(), b.count());
}

TEST_F(EvaluatorTest, BruteForceRankAgreement) {
  // Cross-check RankTail against a naive recomputation.
  FakeModel model(kEntities, 1, [](const Triple& t) {
    return std::sin(double(t.head * 31 + t.tail * 17 + t.relation * 5));
  });
  Evaluator evaluator(&filter_, 1);
  for (const Triple& triple : train_) {
    std::vector<float> scores(kEntities);
    model.ScoreAllTails(triple.head, triple.relation, scores);
    const double rank = evaluator.RankTail(triple, scores, true);

    double brute = 1.0;
    const float true_score = scores[size_t(triple.tail)];
    for (EntityId t = 0; t < kEntities; ++t) {
      if (t == triple.tail) continue;
      if (filter_.Contains({triple.head, t, triple.relation})) continue;
      if (scores[size_t(t)] > true_score) brute += 1.0;
      if (scores[size_t(t)] == true_score) brute += 0.5;
    }
    EXPECT_DOUBLE_EQ(rank, brute);
  }
}

}  // namespace
}  // namespace kge
