// The steady-state zero-allocation contract for training, at EVERY
// thread count and pipeline depth: after warm-up epochs have grown all
// buffers to their high-water marks (gradient buffers pre-Reserved at
// the WorstCaseGradRows bound, the pool's POD stage-task ring, the
// per-thread scratch), further epochs perform zero heap allocations —
// including at 4 threads, where the pre-pipeline trainer leaked
// one std::function closure per scheduled task. Counted with a global
// operator-new override, so the whole binary's allocations are visible;
// the override is incompatible with sanitizer interception and the
// assertions compile out under ASan/TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "datagen/pattern_kg_generator.h"
#include "kg/negative_sampler.h"
#include "models/trilinear_models.h"
#include "train/one_vs_all.h"
#include "train/trainer.h"
#include "util/random.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define KGE_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define KGE_COUNT_ALLOCS 0
#else
#define KGE_COUNT_ALLOCS 1
#endif
#else
#define KGE_COUNT_ALLOCS 1
#endif

#if KGE_COUNT_ALLOCS
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#endif  // KGE_COUNT_ALLOCS

namespace kge {
namespace {

std::vector<Triple> MakeWorkload() {
  PatternKgOptions options;
  options.num_entities = 60;
  options.seed = 7;
  options.relations = {{RelationPattern::kSymmetric, 60, ""},
                       {RelationPattern::kInversePair, 60, ""}};
  return GeneratePatternKg(options, nullptr);
}

#if KGE_COUNT_ALLOCS
uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
#endif

TEST(TrainAllocTest, NegativeSamplingEpochsAllocateNothingAtFourThreads) {
#if !KGE_COUNT_ALLOCS
  GTEST_SKIP() << "operator-new counting is disabled under sanitizers";
#else
  const std::vector<Triple> train = MakeWorkload();
  // Depth 1 pins the fix for the pre-pipeline allocation leak (the
  // std::function task queue) on the old stage-barrier schedule; the
  // deeper runs pin the pipelined steady state.
  for (int depth : {1, 2, 3}) {
    SCOPED_TRACE("pipeline_depth=" + std::to_string(depth));
    TrainerOptions options;
    options.batch_size = 32;
    options.num_negatives = 4;
    options.self_adversarial = true;
    options.learning_rate = 0.05;
    options.l2_lambda = 1e-4;
    options.seed = 99;
    options.grad_shard_size = 8;
    options.num_threads = 4;
    options.pipeline_depth = depth;

    auto model = MakeComplEx(60, 3, 8, 42);
    Trainer trainer(model.get(), options);
    NegativeSampler sampler(60, 3, train, NegativeSamplerOptions());
    Rng rng(11);
    // Worker participation is scheduler-dependent: with caller-helps-
    // drain, a loaded machine can starve a pool thread for many epochs,
    // so its first-ever task (growing its thread_local scratch once) may
    // land after any fixed warm-up count. Measure the contract directly
    // instead: an allocation-free steady state must be reached — three
    // consecutive zero-alloc epochs — within a bounded epoch budget. A
    // real per-triple or per-batch leak allocates every epoch and can
    // never produce even one zero-alloc epoch.
    int consecutive = 0;
    for (int epoch = 0; epoch < 50 && consecutive < 3; ++epoch) {
      const uint64_t before = AllocCount();
      trainer.RunEpoch(train, sampler, &rng);
      consecutive = (AllocCount() == before) ? consecutive + 1 : 0;
    }
    EXPECT_EQ(consecutive, 3)
        << "steady-state training epochs must stop allocating";
  }
#endif
}

TEST(TrainAllocTest, OneVsAllEpochsAllocateNothingAtFourThreads) {
#if !KGE_COUNT_ALLOCS
  GTEST_SKIP() << "operator-new counting is disabled under sanitizers";
#else
  const std::vector<Triple> train = MakeWorkload();
  for (int depth : {1, 2}) {
    SCOPED_TRACE("pipeline_depth=" + std::to_string(depth));
    OneVsAllOptions options;
    options.max_epochs = 1;  // Train() builds queries + runs one epoch
    options.batch_queries = 16;
    options.label_smoothing = 0.1;
    options.learning_rate = 0.05;
    options.eval_every_epochs = 1000;
    options.restore_best = false;
    options.seed = 99;
    options.num_threads = 4;
    options.pipeline_depth = depth;

    auto model = MakeComplEx(60, 3, 8, 42);
    OneVsAllTrainer trainer(model.get(), options);
    ASSERT_TRUE(trainer.Train(train, nullptr).ok());
    Rng rng(11);
    // Same bounded search for the steady state as the negative-sampling
    // test: fixed warm-up counts race against worker wake-up order.
    int consecutive = 0;
    for (int epoch = 0; epoch < 50 && consecutive < 3; ++epoch) {
      const uint64_t before = AllocCount();
      trainer.RunEpoch(&rng);
      consecutive = (AllocCount() == before) ? consecutive + 1 : 0;
    }
    EXPECT_EQ(consecutive, 3)
        << "steady-state training epochs must stop allocating";
  }
#endif
}

}  // namespace
}  // namespace kge
