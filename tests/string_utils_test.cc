#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace kge {
namespace {

TEST(SplitStringTest, BasicSplit) {
  const auto parts = SplitString("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  const auto parts = SplitString("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespaceTest, DropsRuns) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWhitespaceTest, AllWhitespaceYieldsNothing) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(TrimStringTest, TrimsBothEnds) {
  EXPECT_EQ(TrimString("  hello  "), "hello");
  EXPECT_EQ(TrimString("hello"), "hello");
  EXPECT_EQ(TrimString("   "), "");
  EXPECT_EQ(TrimString(""), "");
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("file.txt", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseInt64Test, ValidValues) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  123  "), 123);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(ParseInt64Test, RejectsOverflow) {
  EXPECT_EQ(ParseInt64("99999999999999999999999").status().code(),
            StatusCode::kOutOfRange);
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e-3"), -1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5abc").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.3f", 0.93651), "0.937");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_string(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_string.c_str()).size(), 500u);
}

}  // namespace
}  // namespace kge
