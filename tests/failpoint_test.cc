#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <string>

namespace kge {
namespace {

class FailpointTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  EXPECT_EQ(failpoint::Set("a.site", "").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Set("a.site", "explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Set("a.site", "crash@").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Set("a.site", "crash@zero").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Set("a.site", "crash@0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Set("a.site", "error@-1").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, AcceptsWellFormedSpecs) {
  EXPECT_TRUE(failpoint::Set("a.site", "crash").ok());
  EXPECT_TRUE(failpoint::Set("a.site", "crash@3").ok());
  EXPECT_TRUE(failpoint::Set("a.site", "error@2").ok());
  EXPECT_TRUE(failpoint::Set("a.site", "off").ok());
}

TEST_F(FailpointTest, KnownSitesIsNonEmptyAndStable) {
  const std::vector<std::string> sites = failpoint::KnownSites();
  ASSERT_FALSE(sites.empty());
  // The crash-safety matrix in checkpoint_resume_test.cc iterates this
  // list; the sites it reasons about must exist.
  const std::vector<std::string> expected = {
      "io.writer.close",    "io.writer.rename",  "ckpt.save.begin",
      "ckpt.save.latest",   "ckpt.save.retention", "ckpt.load.begin",
      "train.epoch.end",    "train.epoch.after_ckpt", "serve.load.map",
      "serve.load.verify",  "serve.swap.publish", "serve.respond.write"};
  EXPECT_EQ(sites, expected);
}

TEST_F(FailpointTest, UnarmedSiteIsOk) {
  EXPECT_TRUE(failpoint::Evaluate("never.armed").ok());
}

TEST_F(FailpointTest, ErrorFiresOnNthHitExactlyOnce) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "build does not define KGE_FAILPOINTS";
  }
  ASSERT_TRUE(failpoint::Set("a.site", "error@3").ok());
  EXPECT_TRUE(failpoint::Evaluate("a.site").ok());
  EXPECT_TRUE(failpoint::Evaluate("a.site").ok());
  const Status hit = failpoint::Evaluate("a.site");
  EXPECT_EQ(hit.code(), StatusCode::kIoError);
  // One-shot: subsequent evaluations pass again.
  EXPECT_TRUE(failpoint::Evaluate("a.site").ok());
  EXPECT_TRUE(failpoint::Evaluate("a.site").ok());
}

TEST_F(FailpointTest, OffDisarmsSite) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "build does not define KGE_FAILPOINTS";
  }
  ASSERT_TRUE(failpoint::Set("a.site", "error").ok());
  ASSERT_TRUE(failpoint::Set("a.site", "off").ok());
  EXPECT_TRUE(failpoint::Evaluate("a.site").ok());
}

TEST_F(FailpointTest, ClearAllDisarmsEverything) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "build does not define KGE_FAILPOINTS";
  }
  ASSERT_TRUE(failpoint::Set("a.site", "error").ok());
  ASSERT_TRUE(failpoint::Set("b.site", "error").ok());
  failpoint::ClearAll();
  EXPECT_TRUE(failpoint::Evaluate("a.site").ok());
  EXPECT_TRUE(failpoint::Evaluate("b.site").ok());
}

using FailpointDeathTest = FailpointTest;

TEST_F(FailpointDeathTest, CrashExitsWithFailpointCode) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "build does not define KGE_FAILPOINTS";
  }
  ASSERT_TRUE(failpoint::Set("a.site", "crash@2").ok());
  EXPECT_TRUE(failpoint::Evaluate("a.site").ok());
  EXPECT_EXIT(
      { (void)failpoint::Evaluate("a.site"); },
      testing::ExitedWithCode(failpoint::kFailpointExitCode), "failpoint");
}

}  // namespace
}  // namespace kge
