#include "models/transh.h"

#include <gtest/gtest.h>

#include "math/vec_ops.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 12;
constexpr int32_t kRelations = 3;
constexpr int32_t kDim = 6;
constexpr uint64_t kSeed = 41;

TEST(TransHTest, ShapeAndBlocks) {
  auto model = MakeTransH(kEntities, kRelations, kDim, kSeed);
  EXPECT_EQ(model->name(), "TransH");
  const auto blocks = model->Blocks();
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(model->NumParameters(),
            (kEntities + 2 * kRelations) * kDim);
}

TEST(TransHTest, NormalsAreUnitAfterInit) {
  auto model = MakeTransH(kEntities, kRelations, kDim, kSeed);
  for (RelationId r = 0; r < kRelations; ++r) {
    EXPECT_NEAR(Norm(model->Blocks()[TransH::kNormalBlock]->Row(r)), 1.0,
                1e-5);
  }
}

TEST(TransHTest, ScoresAreNonPositive) {
  auto model = MakeTransH(kEntities, kRelations, kDim, kSeed);
  for (EntityId h = 0; h < 5; ++h) {
    EXPECT_LE(model->Score({h, 7, 1}), 0.0);
  }
}

TEST(TransHTest, PerfectProjectedTranslationScoresZero) {
  auto model = MakeTransH(kEntities, kRelations, kDim, kSeed);
  // Make t = h + d with w orthogonal influence removed: set t so that
  // t⊥ = h⊥ + d. With t = h + d − (wᵀ(h + d) − wᵀt) w ... simplest:
  // choose t = h + d_projected where d is first projected onto the
  // hyperplane, making both sides' projections line up.
  auto h = model->Blocks()[TransH::kEntityBlock]->Row(0);
  auto t = model->Blocks()[TransH::kEntityBlock]->Row(1);
  auto d = model->Blocks()[TransH::kTranslationBlock]->Row(0);
  const auto w = model->Blocks()[TransH::kNormalBlock]->Row(0);
  // Project d onto the hyperplane so the translation stays within it.
  const double wd = Dot(w, d);
  for (size_t i = 0; i < d.size(); ++i) d[i] -= float(wd) * w[i];
  // Set t = h + d; then t⊥ = h⊥ + d (since d ⊥ w).
  for (size_t i = 0; i < t.size(); ++i) t[i] = h[i] + d[i];
  EXPECT_NEAR(model->Score({0, 1, 0}), 0.0, 1e-9);
}

TEST(TransHTest, ScoreAllTailsAgreesWithScore) {
  auto model = MakeTransH(kEntities, kRelations, kDim, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllTails(2, 1, scores);
  for (EntityId t = 0; t < kEntities; ++t) {
    EXPECT_NEAR(scores[size_t(t)], model->Score({2, t, 1}), 1e-4);
  }
}

TEST(TransHTest, ScoreAllHeadsAgreesWithScore) {
  auto model = MakeTransH(kEntities, kRelations, kDim, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllHeads(4, 0, scores);
  for (EntityId h = 0; h < kEntities; ++h) {
    EXPECT_NEAR(scores[size_t(h)], model->Score({h, 4, 0}), 1e-4);
  }
}

TEST(TransHTest, GradientsMatchFiniteDifferences) {
  auto model = MakeTransH(kEntities, kRelations, kDim, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{1, 8, 2};
  const float dscore = 1.1f;
  model->AccumulateGradients(triple, dscore, &grads);

  struct Case {
    size_t block;
    int64_t row;
  };
  for (const Case& c : {Case{TransH::kEntityBlock, 1},
                        Case{TransH::kEntityBlock, 8},
                        Case{TransH::kTranslationBlock, 2},
                        Case{TransH::kNormalBlock, 2}}) {
    const auto grad = grads.GradFor(c.block, c.row);
    auto params = model->Blocks()[c.block]->Row(c.row);
    const double eps = 1e-3;
    for (size_t i = 0; i < params.size(); ++i) {
      const float saved = params[i];
      params[i] = saved + float(eps);
      const double plus = model->Score(triple);
      params[i] = saved - float(eps);
      const double minus = model->Score(triple);
      params[i] = saved;
      EXPECT_NEAR(grad[i], dscore * (plus - minus) / (2 * eps), 2e-2)
          << "block " << c.block << " coord " << i;
    }
  }
}

TEST(TransHTest, NormalizeEntitiesRenormalizesNormalsToo) {
  auto model = MakeTransH(kEntities, kRelations, kDim, kSeed);
  // Perturb a normal away from unit length (as an optimizer step would).
  auto w = model->Blocks()[TransH::kNormalBlock]->Row(1);
  for (float& x : w) x *= 3.0f;
  const std::vector<EntityId> ids = {0};
  model->NormalizeEntities(ids);
  EXPECT_NEAR(Norm(model->Blocks()[TransH::kNormalBlock]->Row(1)), 1.0, 1e-5);
  EXPECT_NEAR(Norm(model->Blocks()[TransH::kEntityBlock]->Row(0)), 1.0, 1e-5);
}

TEST(TransHTest, HyperplaneEnablesOneToManyUnlikeTransE) {
  // TransE forces all tails of a relation with a fixed head to one point;
  // TransH can score two different tails perfectly for the same (h, r) by
  // placing their difference along w. Construct that configuration.
  auto model = MakeTransH(kEntities, kRelations, kDim, kSeed);
  auto h = model->Blocks()[TransH::kEntityBlock]->Row(0);
  auto t1 = model->Blocks()[TransH::kEntityBlock]->Row(1);
  auto t2 = model->Blocks()[TransH::kEntityBlock]->Row(2);
  auto d = model->Blocks()[TransH::kTranslationBlock]->Row(0);
  const auto w = model->Blocks()[TransH::kNormalBlock]->Row(0);
  const double wd = Dot(w, d);
  for (size_t i = 0; i < d.size(); ++i) d[i] -= float(wd) * w[i];
  for (size_t i = 0; i < t1.size(); ++i) {
    t1[i] = h[i] + d[i] + 0.5f * w[i];  // differ only along the normal
    t2[i] = h[i] + d[i] - 0.7f * w[i];
  }
  EXPECT_NEAR(model->Score({0, 1, 0}), 0.0, 1e-9);
  EXPECT_NEAR(model->Score({0, 2, 0}), 0.0, 1e-9);
  // Yet t1 != t2 in embedding space.
  EXPECT_GT(LpDistance(t1, t2, 2), 0.1);
}

}  // namespace
}  // namespace kge
