// Seed variance: re-runs the core Table 2 comparison across several
// seeds (data generation + initialization + sampling) and reports
// mean ± stddev per model, quantifying how robust the paper's ordering
// is to run-to-run noise on the synthetic workload.
#include <cmath>

#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 150;
  config.entities = 1200;
  FlagParser parser("seed_variance: Table 2 core models across seeds");
  config.RegisterFlags(&parser);
  int64_t num_seeds = 3;
  parser.AddInt("num-seeds", &num_seeds, "seeds per model");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  const char* const model_names[] = {"distmult", "complex", "cp", "cph"};
  struct Stats {
    std::vector<double> mrr;
  };
  std::vector<Stats> stats(std::size(model_names));

  for (int64_t s = 0; s < num_seeds; ++s) {
    BenchConfig run_config = config;
    run_config.seed = config.seed + s * 101;
    Workload workload = BuildWorkload(run_config);
    for (size_t m = 0; m < std::size(model_names); ++m) {
      Result<std::unique_ptr<KgeModel>> model = MakeModelByName(
          model_names[m], workload.dataset.num_entities(),
          workload.dataset.num_relations(), int32_t(config.dim_budget),
          uint64_t(run_config.seed));
      KGE_CHECK_OK(model.status());
      const EvalRow row =
          TrainAndEvaluate(model->get(), workload, run_config, false);
      stats[m].mrr.push_back(row.test.Mrr());
    }
  }

  std::printf("\n== Seed variance over %lld seeds "
              "(entities=%lld, budget=%lld) ==\n",
              (long long)num_seeds, (long long)config.entities,
              (long long)config.dim_budget);
  TablePrinter table({"model", "mean MRR", "stddev", "min", "max"});
  for (size_t m = 0; m < std::size(model_names); ++m) {
    const auto& values = stats[m].mrr;
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= double(values.size());
    double variance = 0.0;
    for (double v : values) variance += (v - mean) * (v - mean);
    variance /= double(values.size());
    const double lo = *std::min_element(values.begin(), values.end());
    const double hi = *std::max_element(values.begin(), values.end());
    table.AddRow({model_names[m], StrFormat("%.3f", mean),
                  StrFormat("%.3f", std::sqrt(variance)),
                  StrFormat("%.3f", lo), StrFormat("%.3f", hi)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
