// Microbenchmarks (google-benchmark) for the scoring kernels: single
// triple scores, fold-based full-vocabulary ranking, and gradient
// accumulation, across the paper's model shapes (n=1, 2, 4) at matched
// parameter budgets.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/interaction.h"
#include "models/quaternion_model.h"
#include "models/model_factory.h"
#include "models/trilinear_models.h"
#include "util/check.h"
#include "util/random.h"

namespace kge {
namespace {

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->NextUniform(-1, 1);
  return v;
}

WeightTable TableFor(int ne) {
  switch (ne) {
    case 1:
      return WeightTable::DistMult();
    case 2:
      return WeightTable::ComplEx();
    default:
      return WeightTable::Quaternion();
  }
}

// Scores one triple; budget = 256 total params per entity, split across
// the model's vectors.
void BM_ScoreTriple(benchmark::State& state) {
  const int ne = int(state.range(0));
  const WeightTable table = TableFor(ne);
  const int32_t dim = 256 / ne;
  Rng rng(1);
  const auto h = RandomVec(size_t(table.ne()) * size_t(dim), &rng);
  const auto t = RandomVec(size_t(table.ne()) * size_t(dim), &rng);
  const auto r = RandomVec(size_t(table.nr()) * size_t(dim), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScoreTriple(table, dim, h, t, r));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_ScoreTriple)->Arg(1)->Arg(2)->Arg(4);

// Ranks all tails for one (h, r) query at a given vocabulary size.
void BM_RankAllTails(benchmark::State& state) {
  const int32_t num_entities = int32_t(state.range(0));
  auto model = MakeComplEx(num_entities, 8, 128, 3);
  std::vector<float> scores(static_cast<size_t>(num_entities));
  for (auto _ : state) {
    model->ScoreAllTails(0, 0, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * num_entities);
}
BENCHMARK(BM_RankAllTails)->Arg(1000)->Arg(5000)->Arg(20000);

// Gradient accumulation for one training example.
void BM_AccumulateGradients(benchmark::State& state) {
  const int ne = int(state.range(0));
  const WeightTable table = TableFor(ne);
  const int32_t dim = 256 / ne;
  Rng rng(2);
  const auto h = RandomVec(size_t(table.ne()) * size_t(dim), &rng);
  const auto t = RandomVec(size_t(table.ne()) * size_t(dim), &rng);
  const auto r = RandomVec(size_t(table.nr()) * size_t(dim), &rng);
  std::vector<float> gh(h.size()), gt(t.size()), gr(r.size());
  for (auto _ : state) {
    AccumulateTripleGradients(table, dim, h, t, r, 0.5f, gh, gt, gr);
    benchmark::DoNotOptimize(gh.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_AccumulateGradients)->Arg(1)->Arg(2)->Arg(4);

// Fold cost (the per-query fixed cost of ranking).
void BM_FoldForTail(benchmark::State& state) {
  const int ne = int(state.range(0));
  const WeightTable table = TableFor(ne);
  const int32_t dim = 256 / ne;
  Rng rng(3);
  const auto h = RandomVec(size_t(table.ne()) * size_t(dim), &rng);
  const auto r = RandomVec(size_t(table.nr()) * size_t(dim), &rng);
  std::vector<float> fold(h.size());
  for (auto _ : state) {
    FoldForTail(table, dim, h, r, fold);
    benchmark::DoNotOptimize(fold.data());
  }
}
BENCHMARK(BM_FoldForTail)->Arg(1)->Arg(2)->Arg(4);

// Cross-category ranking cost: candidates/second when scoring a full
// vocabulary, per model family — the §2.2 efficiency story quantified.
// Trilinear models rank via one fold + dots; RESCAL pays a D² fold;
// NTN/ConvE/ER-MLP pay per-candidate network costs.
void BM_RankByModel(benchmark::State& state,
                    const std::string& model_name) {
  constexpr int32_t kZooEntities = 2000;
  Result<std::unique_ptr<KgeModel>> model =
      MakeModelByName(model_name, kZooEntities, 8, 64, 3);
  KGE_CHECK_OK(model.status());
  std::vector<float> scores(static_cast<size_t>(kZooEntities));
  for (auto _ : state) {
    (*model)->ScoreAllTails(0, 0, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kZooEntities);
}
BENCHMARK_CAPTURE(BM_RankByModel, distmult, std::string("distmult"));
BENCHMARK_CAPTURE(BM_RankByModel, complex, std::string("complex"));
BENCHMARK_CAPTURE(BM_RankByModel, quaternion, std::string("quaternion"));
BENCHMARK_CAPTURE(BM_RankByModel, transe_l2, std::string("transe-l2"));
BENCHMARK_CAPTURE(BM_RankByModel, rescal, std::string("rescal"));
BENCHMARK_CAPTURE(BM_RankByModel, ntn, std::string("ntn"));
BENCHMARK_CAPTURE(BM_RankByModel, conve, std::string("conve"));
BENCHMARK_CAPTURE(BM_RankByModel, er_mlp, std::string("er-mlp"));

}  // namespace
}  // namespace kge

BENCHMARK_MAIN();
