// Reproduces paper Table 1: "Weight vectors for special cases" — and
// *verifies* it numerically. For each derived weight vector, the bench
// checks on random embeddings that the multi-embedding weighted sum
// (Eq. 8) equals the model's native algebraic score function:
//
//   * DistMult      vs the plain trilinear product (Eq. 4),
//   * ComplEx       vs Re<h, conj(t), r> over C^D (Eq. 5/9/10),
//   * CP            vs <h, t(2), r> (Eq. 6),
//   * CPh           vs the augmented-data sum (Eq. 7/11),
//   * Quaternion    vs Re<h, conj(t), r> over H^D (Eq. 13/14).
//
// Then it prints the full Table 1 weight matrix.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "math/complex_ops.h"
#include "math/quaternion.h"
#include "math/vec_ops.h"
#include "core/interaction.h"

namespace kge::bench {
namespace {

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->NextUniform(-1, 1);
  return v;
}

std::span<const float> Part(const std::vector<float>& v, int32_t index,
                            int32_t dim) {
  return std::span<const float>(v).subspan(size_t(index) * size_t(dim),
                                           size_t(dim));
}

struct Equivalence {
  std::string name;
  double max_abs_error = 0.0;
};

int Run(int argc, char** argv) {
  int64_t dim = 32;
  int64_t trials = 200;
  int64_t seed = 7;
  FlagParser parser("table1_equivalence: verify the Table 1 derivations");
  parser.AddInt("dim", &dim, "embedding dimension per vector");
  parser.AddInt("trials", &trials, "random trials per equivalence");
  parser.AddInt("seed", &seed, "random seed");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);

  Rng rng{uint64_t(seed)};
  const auto d = int32_t(dim);
  std::vector<Equivalence> results;

  auto record = [&results](const std::string& name, double err) {
    results.push_back({name, err});
  };

  double err_distmult = 0, err_complex = 0, err_cp = 0, err_cph = 0,
         err_quat = 0, err_equiv1 = 0;
  for (int64_t trial = 0; trial < trials; ++trial) {
    const auto h2 = RandomVec(size_t(2 * d), &rng);
    const auto t2 = RandomVec(size_t(2 * d), &rng);
    const auto r2 = RandomVec(size_t(2 * d), &rng);
    const auto h4 = RandomVec(size_t(4 * d), &rng);
    const auto t4 = RandomVec(size_t(4 * d), &rng);
    const auto r4 = RandomVec(size_t(4 * d), &rng);

    // DistMult.
    err_distmult = std::max(
        err_distmult,
        std::fabs(ScoreTriple(WeightTable::DistMult(), d, Part(h2, 0, d),
                              Part(t2, 0, d), Part(r2, 0, d)) -
                  TrilinearDot(Part(h2, 0, d), Part(t2, 0, d),
                               Part(r2, 0, d))));
    // ComplEx.
    const ComplexVectorView ch{Part(h2, 0, d), Part(h2, 1, d)};
    const ComplexVectorView ct{Part(t2, 0, d), Part(t2, 1, d)};
    const ComplexVectorView cr{Part(r2, 0, d), Part(r2, 1, d)};
    err_complex = std::max(
        err_complex,
        std::fabs(ScoreTriple(WeightTable::ComplEx(), d, h2, t2, r2) -
                  ComplexScore(ch, ct, cr)));
    // ComplEx equiv. 1 == ComplEx with swapped h/t.
    err_equiv1 = std::max(
        err_equiv1,
        std::fabs(ScoreTriple(WeightTable::ComplExEquiv1(), d, h2, t2, r2) -
                  ScoreTriple(WeightTable::ComplEx(), d, t2, h2, r2)));
    // CP.
    err_cp = std::max(
        err_cp, std::fabs(ScoreTriple(WeightTable::Cp(), d, h2, t2,
                                      Part(r2, 0, d)) -
                          TrilinearDot(Part(h2, 0, d), Part(t2, 1, d),
                                       Part(r2, 0, d))));
    // CPh (Eq. 11).
    err_cph = std::max(
        err_cph,
        std::fabs(ScoreTriple(WeightTable::Cph(), d, h2, t2, r2) -
                  (TrilinearDot(Part(h2, 0, d), Part(t2, 1, d),
                                Part(r2, 0, d)) +
                   TrilinearDot(Part(t2, 0, d), Part(h2, 1, d),
                                Part(r2, 1, d)))));
    // Quaternion (Eq. 14).
    const QuaternionVectorView qh{Part(h4, 0, d), Part(h4, 1, d),
                                  Part(h4, 2, d), Part(h4, 3, d)};
    const QuaternionVectorView qt{Part(t4, 0, d), Part(t4, 1, d),
                                  Part(t4, 2, d), Part(t4, 3, d)};
    const QuaternionVectorView qr{Part(r4, 0, d), Part(r4, 1, d),
                                  Part(r4, 2, d), Part(r4, 3, d)};
    err_quat = std::max(
        err_quat,
        std::fabs(ScoreTriple(WeightTable::Quaternion(), d, h4, t4, r4) -
                  QuaternionScoreHConjTR(qh, qt, qr)));
  }
  record("DistMult == <h,t,r>", err_distmult);
  record("ComplEx == Re<h,conj(t),r> over C", err_complex);
  record("ComplEx equiv.1 == ComplEx(t,h,r)", err_equiv1);
  record("CP == <h,t(2),r>", err_cp);
  record("CPh == <h,t(2),r> + <t,h(2),r_a>", err_cph);
  record("Quaternion == Re<h,conj(t),r> over H", err_quat);

  std::printf("== Table 1 verification: derived weight vectors reproduce "
              "their native score functions ==\n");
  std::printf("(%lld random trials, dim %lld)\n\n", (long long)trials,
              (long long)dim);
  TablePrinter table({"equivalence", "max |error|", "status"});
  bool all_ok = true;
  for (const Equivalence& e : results) {
    const bool ok = e.max_abs_error < 1e-3;
    all_ok &= ok;
    table.AddRow({e.name, StrFormat("%.2e", e.max_abs_error),
                  ok ? "OK" : "FAIL"});
  }
  table.Print();

  // Print Table 1 itself.
  std::printf("\n== Table 1: weight vectors for special cases "
              "(paper ordering) ==\n");
  struct Column {
    const char* name;
    WeightTable table;
  };
  const Column columns[] = {
      {"DistMult", WeightTable::DistMult()},
      {"ComplEx", WeightTable::ComplEx()},
      {"ComplEx equiv.1", WeightTable::ComplExEquiv1()},
      {"ComplEx equiv.2", WeightTable::ComplExEquiv2()},
      {"ComplEx equiv.3", WeightTable::ComplExEquiv3()},
      {"CP", WeightTable::Cp()},
      {"CPh", WeightTable::Cph()},
      {"CPh equiv.", WeightTable::CphEquiv()},
  };
  TablePrinter weights({"weighted term", "DistMult", "ComplEx", "eq.1",
                        "eq.2", "eq.3", "CP", "CPh", "CPh eq."});
  for (int32_t i = 0; i < 2; ++i) {
    for (int32_t j = 0; j < 2; ++j) {
      for (int32_t k = 0; k < 2; ++k) {
        std::vector<std::string> row;
        row.push_back(StrFormat("<h%d,t%d,r%d>", i + 1, j + 1, k + 1));
        for (const Column& column : columns) {
          const bool in_range =
              i < column.table.ne() && j < column.table.ne() &&
              k < column.table.nr();
          row.push_back(StrFormat(
              "%g", in_range ? column.table.At(i, j, k) : 0.0f));
        }
        weights.AddRow(std::move(row));
      }
    }
  }
  weights.Print();
  std::printf("\n%s\n", all_ok ? "ALL EQUIVALENCES HOLD"
                               : "EQUIVALENCE FAILURE — see table above");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
