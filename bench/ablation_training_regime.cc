// Ablation: training regime. The paper trains with negative sampling
// (1 negative, Eq. 15); later work (ConvE, and the strong trilinear
// reproductions) trains 1-N ("KvsAll"): every (h, r) query is scored
// against all entities with multi-label BCE. This bench compares both
// regimes for ComplEx on the same workload — the 1-N trainer exploits
// the fold structure of Eq. (8), so a full-vocabulary update costs one
// fold + N dot products per query.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 150;
  // 1-N updates every entity row per query; keep the default workload
  // small enough for a single-core run.
  config.entities = 800;
  FlagParser parser(
      "ablation_training_regime: negative sampling vs 1-N (KvsAll)");
  config.RegisterFlags(&parser);
  double label_smoothing = 0.1;
  parser.AddDouble("label-smoothing", &label_smoothing,
                   "ConvE-style label smoothing for the 1-N runs");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  const int32_t num_entities = workload.dataset.num_entities();
  const int32_t num_relations = workload.dataset.num_relations();
  std::vector<EvalRow> rows;

  // Regime 1: the paper's negative sampling.
  {
    auto model = MakeComplEx(num_entities, num_relations, config.DimFor(2),
                             uint64_t(config.seed));
    EvalRow row = TrainAndEvaluate(model.get(), workload, config, false);
    row.label = StrFormat("ComplEx, negative sampling (%.0fs)",
                          row.train_seconds);
    rows.push_back(std::move(row));
  }

  // Regime 2: 1-N over inverse-augmented data (covers head queries).
  for (double smoothing : {0.0, label_smoothing}) {
    const AugmentedTriples augmented =
        AugmentWithInverses(workload.dataset.train, num_relations);
    auto model = MakeComplEx(num_entities, augmented.num_relations,
                             config.DimFor(2), uint64_t(config.seed));
    OneVsAllOptions options;
    options.max_epochs = int(config.max_epochs);
    options.learning_rate = 0.02;
    options.eval_every_epochs = int(config.eval_every);
    options.patience_epochs = int(config.patience);
    options.label_smoothing = smoothing;
    options.seed = uint64_t(config.seed);
    OneVsAllTrainer trainer(model.get(), options);

    EvalOptions valid_eval;
    valid_eval.max_triples = size_t(config.valid_cap);
    Stopwatch watch;
    KGE_CHECK_OK(trainer
                     .Train(augmented.triples,
                            [&](int) {
                              return workload.evaluator
                                  ->EvaluateOverall(*model,
                                                    workload.dataset.valid,
                                                    valid_eval)
                                  .Mrr();
                            })
                     .status());
    EvalRow row;
    row.train_seconds = watch.ElapsedSeconds();
    EvalOptions test_eval;
    row.test = workload.evaluator->EvaluateOverall(
        *model, workload.dataset.test, test_eval);
    row.label = StrFormat("ComplEx, 1-N smoothing=%.1f (%.0fs)", smoothing,
                          row.train_seconds);
    KGE_LOG(Info) << row.label << ": " << row.test.ToString();
    rows.push_back(std::move(row));
  }
  PrintComparisonTable(
      "Ablation: training regime — negative sampling vs 1-N (KvsAll)", rows,
      {});
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
