// Ablation: optimizer choice. The paper trains with "SGD with learning
// rates auto-tuned by Adam" (§5.3) noting Adam "makes the choice of
// initial learning rate more robust"; this sweep quantifies the gap to
// plain SGD and Adagrad at their respective reasonable learning rates.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 120;
  FlagParser parser("ablation_optimizer: sgd vs adagrad vs adam");
  config.RegisterFlags(&parser);
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  const int32_t num_entities = workload.dataset.num_entities();
  const int32_t num_relations = workload.dataset.num_relations();

  struct OptimizerSetting {
    const char* name;
    double learning_rate;
  };
  const OptimizerSetting settings[] = {
      {"sgd", 0.1},     {"sgd", 0.01},     {"adagrad", 0.1},
      {"adagrad", 0.5}, {"adam", 1e-3},    {"adam", 1e-4},
  };
  std::vector<EvalRow> rows;
  for (const OptimizerSetting& setting : settings) {
    auto model = MakeComplEx(num_entities, num_relations, config.DimFor(2),
                             uint64_t(config.seed));
    TrainerOptions options;
    options.max_epochs = int(config.max_epochs);
    options.batch_size = int(config.batch_size);
    options.optimizer = setting.name;
    options.learning_rate = setting.learning_rate;
    options.l2_lambda = config.l2_lambda;
    options.eval_every_epochs = int(config.eval_every);
    options.patience_epochs = int(config.patience);
    options.seed = uint64_t(config.seed);
    Trainer trainer(model.get(), options);
    EvalOptions valid_eval;
    valid_eval.max_triples = size_t(config.valid_cap);
    Stopwatch watch;
    KGE_CHECK_OK(trainer
                     .Train(workload.dataset.train,
                            [&](int) {
                              return workload.evaluator
                                  ->EvaluateOverall(*model,
                                                    workload.dataset.valid,
                                                    valid_eval)
                                  .Mrr();
                            })
                     .status());
    EvalRow row;
    row.label = StrFormat("ComplEx, %s lr=%g", setting.name,
                          setting.learning_rate);
    row.train_seconds = watch.ElapsedSeconds();
    EvalOptions test_eval;
    row.test = workload.evaluator->EvaluateOverall(
        *model, workload.dataset.test, test_eval);
    KGE_LOG(Info) << row.label << ": " << row.test.ToString();
    rows.push_back(std::move(row));
  }
  PrintComparisonTable("Ablation: optimizer and learning rate", rows, {});
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
