// Extension experiment: the hypercomplex ladder. §6.3 asks "whether
// using more embedding vectors in the multi-embedding interaction
// mechanism is helpful" and §7 lists "the effective extension to
// additional embedding vectors" as future work. This bench walks the
// Cayley–Dickson ladder at a fixed parameter budget:
//
//   DistMult (R, n=1) → ComplEx (C, n=2) → Quaternion (H, n=4)
//     → Octonion (O, n=8)
//
// Each step doubles the interaction terms (1, 4, 16, 64 signed trilinear
// products) while halving the per-vector dimension.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 200;
  FlagParser parser("extension_hypercomplex: R -> C -> H -> O ladder");
  config.RegisterFlags(&parser);
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  std::vector<EvalRow> rows;
  struct Rung {
    const char* name;
    const char* algebra;
    int terms;
  };
  const Rung ladder[] = {
      {"distmult", "R", 1},
      {"complex", "C", 4},
      {"quaternion", "H", 16},
      {"octonion", "O", 64},
  };
  for (const Rung& rung : ladder) {
    Result<std::unique_ptr<KgeModel>> model = MakeModelByName(
        rung.name, workload.dataset.num_entities(),
        workload.dataset.num_relations(), int32_t(config.dim_budget),
        uint64_t(config.seed));
    KGE_CHECK_OK(model.status());
    EvalRow row =
        TrainAndEvaluate(model->get(), workload, config, /*train=*/true);
    row.label = StrFormat("%s over %s (%d terms)",
                          (*model)->name().c_str(), rung.algebra, rung.terms);
    rows.push_back(std::move(row));
  }
  PrintComparisonTable(
      "Extension: hypercomplex ladder at a fixed parameter budget", rows,
      {});
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
