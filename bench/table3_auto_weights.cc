// Reproduces paper Table 3: "Results for the auto-learned weight vectors
// on WN18" — the uniform-ω baseline, end-to-end learned ω with no
// restriction / tanh / sigmoid / softmax, each with and without the
// Dirichlet sparsity regularizer (α = 1/16, λ_dir = 1e-2).
//
// The paper's finding to reproduce: all of these land near DistMult
// (the symmetric uniform score), far below ComplEx/CPh — learning good
// weight vectors automatically is hard because the gradient cannot break
// the symmetry of ω.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  FlagParser parser("table3_auto_weights: paper Table 3 — learned ω");
  config.RegisterFlags(&parser);
  double dirichlet_alpha = 1.0 / 16.0;
  double dirichlet_lambda = 1e-2;
  parser.AddDouble("dirichlet-alpha", &dirichlet_alpha,
                   "Dirichlet sparsity alpha (paper: 1/16)");
  parser.AddDouble("dirichlet-lambda", &dirichlet_lambda,
                   "Dirichlet regularization strength (paper: 1e-2)");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  const int32_t num_entities = workload.dataset.num_entities();
  const int32_t num_relations = workload.dataset.num_relations();
  const uint64_t seed = uint64_t(config.seed);
  const int32_t dim = config.DimFor(2);

  std::vector<EvalRow> rows;

  // Uniform fixed-ω baseline.
  {
    auto model = MakeMultiEmbedding("Uniform weight", num_entities,
                                    num_relations, dim,
                                    WeightTable::Uniform(2, 2), seed);
    rows.push_back(TrainAndEvaluate(model.get(), workload, config, false));
  }

  const RestrictionKind kinds[] = {
      RestrictionKind::kNone, RestrictionKind::kTanh,
      RestrictionKind::kSigmoid, RestrictionKind::kSoftmax};
  for (bool sparse : {false, true}) {
    for (RestrictionKind kind : kinds) {
      LearnedWeightOptions options;
      options.ne = 2;
      options.nr = 2;
      options.restriction = kind;
      if (sparse) {
        DirichletOptions dirichlet;
        dirichlet.alpha = dirichlet_alpha;
        dirichlet.lambda = dirichlet_lambda;
        options.dirichlet = dirichlet;
      }
      auto model = MakeLearnedWeightModel(num_entities, num_relations, dim,
                                          options, seed);
      EvalRow row = TrainAndEvaluate(model.get(), workload, config, false);
      // Report the learned weight vector alongside the metrics.
      model->RefreshWeights();
      std::string omega = "omega = [";
      for (float w : model->CurrentOmega()) omega += StrFormat(" %.2f", w);
      omega += " ]";
      KGE_LOG(Info) << row.label << " " << omega;
      rows.push_back(std::move(row));
    }
  }

  const std::vector<PaperRef> paper = {
      {"Uniform weight", 0.787, 0.658, 0.915, 0.944},
      {"AutoWeight[none]", 0.774, 0.636, 0.911, 0.944},
      {"AutoWeight[tanh]", 0.765, 0.625, 0.908, 0.943},
      {"AutoWeight[sigmoid]", 0.789, 0.661, 0.915, 0.946},
      {"AutoWeight[softmax]", 0.802, 0.685, 0.915, 0.944},
      {"AutoWeight[none,sparse]", 0.792, 0.685, 0.892, 0.935},
      {"AutoWeight[tanh,sparse]", 0.763, 0.613, 0.910, 0.943},
      {"AutoWeight[sigmoid,sparse]", 0.793, 0.667, 0.915, 0.945},
      {"AutoWeight[softmax,sparse]", 0.803, 0.688, 0.915, 0.944},
  };
  PrintComparisonTable(
      "Table 3: automatically learned weight vectors (synthetic WN18-like "
      "workload)",
      rows, paper);
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
