// Microbenchmarks for the training loop: per-epoch cost by model, and
// optimizer step cost, on a fixed small workload.
#include <benchmark/benchmark.h>

#include "datagen/pattern_kg_generator.h"
#include "kg/negative_sampler.h"
#include "models/quaternion_model.h"
#include "models/trilinear_models.h"
#include "train/trainer.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 500;
constexpr int32_t kRelations = 4;

std::vector<Triple> MakeTrainSet() {
  PatternKgOptions options;
  options.num_entities = kEntities;
  options.seed = 11;
  options.relations = {{RelationPattern::kInversePair, 1500, ""},
                       {RelationPattern::kSymmetric, 500, ""}};
  return GeneratePatternKg(options, nullptr);
}

template <typename Factory>
void RunEpochBenchmark(benchmark::State& state, Factory factory) {
  const auto train = MakeTrainSet();
  auto model = factory();
  TrainerOptions options;
  options.batch_size = 512;
  Trainer trainer(model.get(), options);
  NegativeSamplerOptions sampler_options;
  NegativeSampler sampler(kEntities, kRelations, train, sampler_options);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.RunEpoch(train, sampler, &rng));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(train.size()));
}

void BM_EpochDistMult(benchmark::State& state) {
  RunEpochBenchmark(state,
                    [] { return MakeDistMult(kEntities, kRelations, 128, 1); });
}
BENCHMARK(BM_EpochDistMult)->Unit(benchmark::kMillisecond);

void BM_EpochComplEx(benchmark::State& state) {
  RunEpochBenchmark(state,
                    [] { return MakeComplEx(kEntities, kRelations, 64, 1); });
}
BENCHMARK(BM_EpochComplEx)->Unit(benchmark::kMillisecond);

void BM_EpochCph(benchmark::State& state) {
  RunEpochBenchmark(state,
                    [] { return MakeCph(kEntities, kRelations, 64, 1); });
}
BENCHMARK(BM_EpochCph)->Unit(benchmark::kMillisecond);

void BM_EpochQuaternion(benchmark::State& state) {
  RunEpochBenchmark(
      state, [] { return MakeQuaternionModel(kEntities, kRelations, 32, 1); });
}
BENCHMARK(BM_EpochQuaternion)->Unit(benchmark::kMillisecond);

// Optimizer step cost over a synthetic sparse gradient buffer.
void BM_OptimizerApply(benchmark::State& state) {
  ParameterBlock block("e", 10000, 256);
  AdamOptions options;
  auto optimizer = MakeAdam({&block}, options);
  GradientBuffer grads({&block});
  Rng rng(2);
  for (int i = 0; i < int(state.range(0)); ++i) {
    auto g = grads.GradFor(0, int64_t(rng.NextBounded(10000)));
    for (float& x : g) x = rng.NextUniform(-1, 1);
  }
  for (auto _ : state) {
    optimizer->Apply(grads);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_OptimizerApply)->Arg(64)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace kge

BENCHMARK_MAIN();
