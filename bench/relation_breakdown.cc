// Per-relation-structure breakdown: trains DistMult and ComplEx and
// reports metrics grouped by relation symmetry class and mapping
// category. This makes the paper's core explanation directly visible:
// DistMult's symmetric score function is fine on symmetric relations but
// collapses on antisymmetric ones, which is exactly where ComplEx's
// complex conjugate (= the antisymmetric ω terms) pays off.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 150;
  FlagParser parser("relation_breakdown: metrics by relation structure");
  config.RegisterFlags(&parser);
  std::string models = "distmult,complex";
  parser.AddString("models", &models, "comma-separated model names");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  const auto stats = AnalyzeRelations(workload.dataset.train,
                                      workload.dataset.num_entities(),
                                      workload.dataset.num_relations());

  for (const std::string& name : SplitString(models, ',')) {
    Result<std::unique_ptr<KgeModel>> model = MakeModelByName(
        name, workload.dataset.num_entities(),
        workload.dataset.num_relations(), int32_t(config.dim_budget),
        uint64_t(config.seed));
    KGE_CHECK_OK(model.status());
    TrainAndEvaluate(model->get(), workload, config, false);

    EvalOptions eval_options;
    eval_options.num_threads = int(config.threads);
    const EvalResult result = workload.evaluator->Evaluate(
        **model, workload.dataset.test, eval_options);
    std::printf("\n######## %s ########\n", (*model)->name().c_str());
    std::printf("%s", RenderEvaluationReport(result, stats,
                                             workload.dataset.relations)
                          .c_str());
  }
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
