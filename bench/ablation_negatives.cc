// Ablation: number of negative samples per positive. The paper fixes 1
// negative (§5.3) noting that "using more negative samples is beneficial
// for all models [but] more expensive"; this bench quantifies that
// trade-off on the synthetic workload.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 120;
  FlagParser parser("ablation_negatives: negatives-per-positive sweep");
  config.RegisterFlags(&parser);
  std::string sweep = "1,2,5,10";
  parser.AddString("sweep", &sweep, "comma-separated negative counts");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  std::vector<EvalRow> rows;
  for (bool normalize : {false, true}) {
    for (const std::string& token : SplitString(sweep, ',')) {
      const Result<int64_t> count = ParseInt64(token);
      KGE_CHECK_OK(count.status());
      BenchConfig run_config = config;
      run_config.negatives = *count;
      run_config.normalize_negatives = normalize;
      auto model = MakeComplEx(workload.dataset.num_entities(),
                               workload.dataset.num_relations(),
                               config.DimFor(2), uint64_t(config.seed));
      EvalRow row =
          TrainAndEvaluate(model.get(), workload, run_config, false);
      row.label = StrFormat("ComplEx, %lld negatives%s", (long long)*count,
                            normalize ? ", balanced" : "");
      row.label += StrFormat("  (%.1fs)", row.train_seconds);
      rows.push_back(std::move(row));
    }
  }
  PrintComparisonTable(
      "Ablation: negative samples per positive (summed Eq. 15 loss vs "
      "1/k-balanced negatives)",
      rows, {});
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
