// Model zoo sweep: trains every registered model at the same parameter
// budget on the same workload — the paper's three-category taxonomy
// (§2.2: translation-based, neural-network-based, trilinear-product-
// based) compared head-to-head, plus the bilinear RESCAL ancestor and the
// SimplE cousin of CPh.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 150;
  FlagParser parser("model_zoo: every registered model on one workload");
  config.RegisterFlags(&parser);
  // Default set keeps the run under a few minutes on one core; the
  // expensive O(D²)-per-relation and per-candidate-forward models
  // (rescal, ntn, conve, er-mlp) are opt-in via --models.
  std::string models =
      "distmult,complex,cp,cph,simple,quaternion,octonion,rotate,"
      "transe-l1,transe-l2,transh";
  parser.AddString("models", &models,
                   "comma-separated model names (add rescal,ntn,conve,"
                   "er-mlp for the expensive families)");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  std::vector<EvalRow> rows;
  for (const std::string& name : SplitString(models, ',')) {
    Result<std::unique_ptr<KgeModel>> model = MakeModelByName(
        name, workload.dataset.num_entities(),
        workload.dataset.num_relations(), int32_t(config.dim_budget),
        uint64_t(config.seed));
    KGE_CHECK_OK(model.status());
    // Translation-based models train with their native margin ranking
    // objective; everything else uses the paper's logistic loss.
    BenchConfig run_config = config;
    const bool translation_based =
        StartsWith(name, "transe") || name == "transh";
    if (translation_based) run_config.loss = "margin";
    EvalRow row =
        TrainAndEvaluate(model->get(), workload, run_config, false);
    row.label = StrFormat("%s (%lldk params, %.0fs%s)",
                          (*model)->name().c_str(),
                          (long long)(row.num_parameters / 1000),
                          row.train_seconds,
                          translation_based ? ", margin loss" : "");
    rows.push_back(std::move(row));
  }
  PrintComparisonTable("Model zoo at matched parameter budget", rows, {});
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
