// Shared harness for the paper-table bench binaries: a common flag set,
// workload construction (WordNet-like synthetic KG by default, or a real
// WN18-format directory via --data-dir), and a train-and-evaluate driver
// that produces one table row per model configuration.
#ifndef KGE_BENCH_BENCH_COMMON_H_
#define KGE_BENCH_BENCH_COMMON_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kge.h"

namespace kge::bench {

struct BenchConfig {
  // Workload.
  int64_t entities = 1500;
  int64_t seed = 42;
  std::string data_dir;  // if set, load real WN18-format files instead

  // Parameter budget: total embedding parameters per entity. A model with
  // n embedding vectors uses per-vector dim = dim_budget / n (the paper's
  // matched-budget comparison: 400 = 1x400 = 2x200 = 4x100).
  int64_t dim_budget = 256;

  // Training (paper §5.3 settings, scaled down by default).
  int64_t max_epochs = 250;
  int64_t batch_size = 1024;
  double learning_rate = 1e-3;
  double l2_lambda = 1e-5;
  int64_t negatives = 1;
  bool normalize_negatives = false;
  // "logistic" (paper Eq. 15) or "margin" (translation-family objective).
  std::string loss = "logistic";
  double margin = 1.0;
  int64_t eval_every = 20;
  int64_t patience = 60;
  int64_t threads = 1;

  // Validation subsample during training (0 = all) to keep early-stopping
  // checks cheap.
  int64_t valid_cap = 400;

  // Tiny smoke preset (overrides sizes; used by CI-style runs).
  bool quick = false;

  // Registers all of the above as --flags.
  void RegisterFlags(FlagParser* parser);
  // Applies the quick preset when --quick was passed.
  void Finalize();

  // Per-vector dim for a model with `num_vectors` embedding vectors.
  int32_t DimFor(int32_t num_vectors) const;
};

struct Workload {
  Dataset dataset;
  FilterIndex filter;
  std::unique_ptr<Evaluator> evaluator;
};

// Builds the workload per config (generate or load), builds the filter
// index over all splits, and logs dataset stats.
Workload BuildWorkload(const BenchConfig& config);

struct EvalRow {
  std::string label;
  RankingMetrics test;
  std::optional<RankingMetrics> train;  // "on train" rows of Table 2/4
  TrainResult train_result;
  double train_seconds = 0.0;
  int64_t num_parameters = 0;
};

// Trains `model` on the workload with early stopping on validation
// filtered MRR, then evaluates on test (and optionally on the training
// set, to reproduce the paper's overfitting analysis).
EvalRow TrainAndEvaluate(KgeModel* model, const Workload& workload,
                         const BenchConfig& config, bool eval_on_train);

// Evaluation on the training set ranks against train-only filtering;
// the paper's "on train" rows measure how well a model fits its own data.
RankingMetrics EvaluateOnTrain(const KgeModel& model,
                               const Workload& workload,
                               const BenchConfig& config);

// Renders rows as the paper's table layout (label, MRR, H@1, H@3, H@10),
// with the paper's WN18 reference numbers printed alongside when given.
struct PaperRef {
  std::string label;
  double mrr, h1, h3, h10;
};
void PrintComparisonTable(const std::string& title,
                          const std::vector<EvalRow>& rows,
                          const std::vector<PaperRef>& paper_refs);

}  // namespace kge::bench

#endif  // KGE_BENCH_BENCH_COMMON_H_
