// Reproduces paper Table 2: "Results for the derived weight vectors on
// WN18" — DistMult, ComplEx, CP, and CPh evaluated on test and on train,
// plus the two bad and two good hand-picked weight-vector variants.
//
// All trilinear models run on the shared multi-embedding engine with
// their Table 1 weight vectors, at matched parameter budgets
// (--dim-budget split across a model's embedding vectors).
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  FlagParser parser(
      "table2_derived_weights: paper Table 2 — derived weight vectors");
  config.RegisterFlags(&parser);
  bool skip_variants = false;
  parser.AddBool("skip-variants", &skip_variants,
                 "only run the four named models (skip good/bad examples)");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;  // --help
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  const int32_t num_entities = workload.dataset.num_entities();
  const int32_t num_relations = workload.dataset.num_relations();
  const uint64_t seed = static_cast<uint64_t>(config.seed);

  std::vector<EvalRow> rows;
  auto run_model = [&](std::unique_ptr<MultiEmbeddingModel> model,
                       bool eval_on_train) {
    rows.push_back(
        TrainAndEvaluate(model.get(), workload, config, eval_on_train));
  };

  run_model(MakeDistMult(num_entities, num_relations, config.DimFor(1), seed),
            /*eval_on_train=*/true);
  run_model(MakeComplEx(num_entities, num_relations, config.DimFor(2), seed),
            /*eval_on_train=*/true);
  run_model(MakeCp(num_entities, num_relations, config.DimFor(2), seed),
            /*eval_on_train=*/true);
  run_model(MakeCph(num_entities, num_relations, config.DimFor(2), seed),
            /*eval_on_train=*/true);

  if (!skip_variants) {
    run_model(MakeMultiEmbedding("Bad example 1", num_entities, num_relations,
                                 config.DimFor(2), WeightTable::BadExample1(),
                                 seed),
              false);
    run_model(MakeMultiEmbedding("Bad example 2", num_entities, num_relations,
                                 config.DimFor(2), WeightTable::BadExample2(),
                                 seed),
              false);
    run_model(MakeMultiEmbedding("Good example 1", num_entities,
                                 num_relations, config.DimFor(2),
                                 WeightTable::GoodExample1(), seed),
              false);
    run_model(MakeMultiEmbedding("Good example 2", num_entities,
                                 num_relations, config.DimFor(2),
                                 WeightTable::GoodExample2(), seed),
              false);
  }

  // The paper's WN18 numbers (Table 2) for side-by-side comparison.
  const std::vector<PaperRef> paper = {
      {"DistMult", 0.796, 0.674, 0.915, 0.945},
      {"ComplEx", 0.937, 0.928, 0.946, 0.951},
      {"CP", 0.086, 0.059, 0.093, 0.139},
      {"CPh", 0.937, 0.929, 0.944, 0.949},
      {"DistMult on train", 0.917, 0.848, 0.985, 0.997},
      {"ComplEx on train", 0.996, 0.994, 0.998, 0.999},
      {"CP on train", 0.994, 0.994, 0.996, 0.999},
      {"CPh on train", 0.995, 0.994, 0.998, 0.999},
      {"Bad example 1", 0.107, 0.079, 0.116, 0.159},
      {"Bad example 2", 0.794, 0.666, 0.917, 0.947},
      {"Good example 1", 0.938, 0.934, 0.942, 0.946},
      {"Good example 2", 0.938, 0.930, 0.944, 0.950},
  };
  PrintComparisonTable(
      "Table 2: derived weight vectors (synthetic WN18-like workload)", rows,
      paper);
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
