// Ablation: embedding-size (parameter budget) sweep. The paper fixes the
// budget at 400 per entity (§5.3); this shows how the ComplEx-vs-DistMult
// gap and the quaternion model's behaviour change with capacity.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 120;
  FlagParser parser("ablation_dim: parameter budget sweep");
  config.RegisterFlags(&parser);
  std::string sweep = "32,64,128,256";
  parser.AddString("sweep", &sweep, "comma-separated dim budgets");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  const int32_t num_entities = workload.dataset.num_entities();
  const int32_t num_relations = workload.dataset.num_relations();
  std::vector<EvalRow> rows;
  for (const std::string& token : SplitString(sweep, ',')) {
    const Result<int64_t> budget = ParseInt64(token);
    KGE_CHECK_OK(budget.status());
    BenchConfig run_config = config;
    run_config.dim_budget = *budget;
    for (const char* name : {"distmult", "complex", "quaternion"}) {
      Result<std::unique_ptr<KgeModel>> model =
          MakeModelByName(name, num_entities, num_relations,
                          int32_t(*budget), uint64_t(config.seed));
      KGE_CHECK_OK(model.status());
      EvalRow row =
          TrainAndEvaluate(model->get(), workload, run_config, false);
      row.label = StrFormat("%s @ %lld", (*model)->name().c_str(),
                            (long long)*budget);
      rows.push_back(std::move(row));
    }
  }
  PrintComparisonTable("Ablation: per-entity parameter budget", rows, {});
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
