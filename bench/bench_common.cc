#include "bench_common.h"

#include <cstdio>

#include "util/timer.h"

namespace kge::bench {

void BenchConfig::RegisterFlags(FlagParser* parser) {
  parser->AddInt("entities", &entities,
                 "entities in the generated WordNet-like KG");
  parser->AddInt("seed", &seed, "global random seed");
  parser->AddString("data-dir", &data_dir,
                    "load real WN18-format train/valid/test.txt instead of "
                    "generating data");
  parser->AddInt("dim-budget", &dim_budget,
                 "total embedding parameters per entity (split across a "
                 "model's embedding vectors)");
  parser->AddInt("max-epochs", &max_epochs, "maximum training epochs");
  parser->AddInt("batch-size", &batch_size, "mini-batch size");
  parser->AddDouble("learning-rate", &learning_rate, "Adam learning rate");
  parser->AddDouble("l2-lambda", &l2_lambda,
                    "embedding L2 regularization strength");
  parser->AddInt("negatives", &negatives, "negative samples per positive");
  parser->AddInt("eval-every", &eval_every,
                 "validate every N epochs (early stopping)");
  parser->AddInt("patience", &patience, "early stopping patience in epochs");
  parser->AddInt("threads", &threads, "evaluation threads");
  parser->AddInt("valid-cap", &valid_cap,
                 "max validation triples per early-stopping check (0 = all)");
  parser->AddBool("quick", &quick, "tiny smoke-test preset");
}

void BenchConfig::Finalize() {
  if (!quick) return;
  entities = 300;
  dim_budget = 32;
  max_epochs = 30;
  eval_every = 10;
  patience = 30;
  batch_size = 256;
  valid_cap = 100;
}

int32_t BenchConfig::DimFor(int32_t num_vectors) const {
  const int64_t dim = dim_budget / num_vectors;
  return static_cast<int32_t>(dim > 0 ? dim : 1);
}

Workload BuildWorkload(const BenchConfig& config) {
  Workload workload;
  if (!config.data_dir.empty()) {
    Result<Dataset> loaded = LoadDatasetFromDirectory(
        config.data_dir, TripleFileFormat::kHeadRelationTail);
    KGE_CHECK_OK(loaded.status());
    workload.dataset = std::move(*loaded);
  } else {
    WordNetLikeOptions options;
    options.num_entities = static_cast<int32_t>(config.entities);
    options.seed = static_cast<uint64_t>(config.seed);
    workload.dataset = GenerateWordNetLike(options);
  }
  KGE_CHECK_OK(workload.dataset.Validate());
  KGE_LOG(Info) << "workload: " << workload.dataset.StatsString();
  workload.filter.Build(workload.dataset.train, workload.dataset.valid,
                        workload.dataset.test);
  workload.evaluator = std::make_unique<Evaluator>(
      &workload.filter, workload.dataset.num_relations());
  return workload;
}

EvalRow TrainAndEvaluate(KgeModel* model, const Workload& workload,
                         const BenchConfig& config, bool eval_on_train) {
  TrainerOptions options;
  options.max_epochs = static_cast<int>(config.max_epochs);
  options.batch_size = static_cast<int>(config.batch_size);
  options.num_negatives = static_cast<int>(config.negatives);
  options.normalize_negatives = config.normalize_negatives;
  options.loss = config.loss == "margin" ? LossKind::kMarginRanking
                                         : LossKind::kLogistic;
  options.margin = config.margin;
  options.learning_rate = config.learning_rate;
  options.l2_lambda = config.l2_lambda;
  options.eval_every_epochs = static_cast<int>(config.eval_every);
  options.patience_epochs = static_cast<int>(config.patience);
  options.seed = static_cast<uint64_t>(config.seed) * 0x9E3779B9ULL + 17;

  EvalOptions valid_eval;
  valid_eval.filtered = true;
  valid_eval.max_triples = static_cast<size_t>(config.valid_cap);
  valid_eval.num_threads = static_cast<int>(config.threads);

  Trainer trainer(model, options);
  Stopwatch watch;
  Result<TrainResult> train_result = trainer.Train(
      workload.dataset.train, [&](int epoch) {
        (void)epoch;
        return workload.evaluator
            ->EvaluateOverall(*model, workload.dataset.valid, valid_eval)
            .Mrr();
      });
  KGE_CHECK_OK(train_result.status());

  EvalRow row;
  row.label = model->name();
  row.train_result = *train_result;
  row.train_seconds = watch.ElapsedSeconds();
  row.num_parameters = model->NumParameters();

  EvalOptions test_eval;
  test_eval.filtered = true;
  test_eval.num_threads = static_cast<int>(config.threads);
  row.test = workload.evaluator->EvaluateOverall(
      *model, workload.dataset.test, test_eval);
  if (eval_on_train) {
    row.train = EvaluateOnTrain(*model, workload, config);
  }
  KGE_LOG(Info) << row.label << ": test " << row.test.ToString() << "  ["
                << row.train_result.epochs_run << " epochs, "
                << StrFormat("%.1fs", row.train_seconds) << "]";
  return row;
}

RankingMetrics EvaluateOnTrain(const KgeModel& model,
                               const Workload& workload,
                               const BenchConfig& config) {
  EvalOptions options;
  options.filtered = true;
  options.num_threads = static_cast<int>(config.threads);
  // Cap the train-set evaluation: ranking every training triple is
  // O(|train| * |entities|) and the paper's "on train" rows are about the
  // magnitude, not the third decimal.
  options.max_triples = 2000;
  return workload.evaluator->EvaluateOverall(model, workload.dataset.train,
                                             options);
}

void PrintComparisonTable(const std::string& title,
                          const std::vector<EvalRow>& rows,
                          const std::vector<PaperRef>& paper_refs) {
  std::printf("\n== %s ==\n", title.c_str());
  TablePrinter table({"model", "MRR", "H@1", "H@3", "H@10", "paper MRR",
                      "paper H@1", "paper H@3", "paper H@10"});
  auto add = [&table, &paper_refs](const std::string& label,
                                   const RankingMetrics& metrics) {
    std::vector<std::string> cells = {
        label, StrFormat("%.3f", metrics.Mrr()),
        StrFormat("%.3f", metrics.HitsAt(1)),
        StrFormat("%.3f", metrics.HitsAt(3)),
        StrFormat("%.3f", metrics.HitsAt(10))};
    const PaperRef* ref = nullptr;
    for (const PaperRef& candidate : paper_refs) {
      if (candidate.label == label) ref = &candidate;
    }
    if (ref != nullptr) {
      cells.push_back(StrFormat("%.3f", ref->mrr));
      cells.push_back(StrFormat("%.3f", ref->h1));
      cells.push_back(StrFormat("%.3f", ref->h3));
      cells.push_back(StrFormat("%.3f", ref->h10));
    } else {
      cells.insert(cells.end(), {"-", "-", "-", "-"});
    }
    table.AddRow(std::move(cells));
  };
  for (const EvalRow& row : rows) {
    add(row.label, row.test);
    if (row.train.has_value()) {
      add(row.label + " on train", *row.train);
    }
  }
  table.Print();
  std::fflush(stdout);
}

}  // namespace kge::bench
