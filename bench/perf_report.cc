// perf_report: the JSON perf-tracking harness for the SIMD kernel layer.
//
// Emits BENCH_kernels.json with three sections:
//
//   * "kernels"  — GFLOP/s and ns/call for each hot kernel at ranking
//                  sizes, plus its speedup over the naive sequential
//                  reference in simd::ref (the pre-SIMD implementation).
//   * "ranking"  — full-vocabulary ScoreAllTails throughput on a ComplEx
//                  model at the paper's dim budget: ns per ranked triple,
//                  triples/sec, candidate scores/sec, speedup over the
//                  scalar-reference ranking loop, and the measured heap
//                  allocations per ranked triple (the zero-allocation
//                  contract; null when built under a sanitizer).
//   * "eval"     — end-to-end filtered evaluation throughput on the
//                  WN18-like KG, with the filtered MRR included so runs
//                  from differently-vectorized builds can be diffed for
//                  metric equality.
//
// It also emits BENCH_training.json with a "training" section: epoch
// throughput (triples/s, examples/s) and steady-state allocations per
// triple for the negative-sampling and 1-N trainers, at 1 and 4 worker
// threads per model, plus each row's speedup over its own 1-thread run.
// Both trainers produce bit-identical results for every thread count, so
// the rows measure pure scheduling overhead/benefit.
//
// BENCH_eval.json gets an "eval_batching" section (ranking throughput
// vs query batch size, with a metric-equality canary) and a "precision"
// section: the same batched ranking workload at each scoring tier
// (double / float32 / int8, see core/scoring_replica.h) with per-tier
// ns/triple, effective GB/s, speedup over the exact double tier, and a
// drift block giving filtered MRR / Hits@{1,3,10} deltas of the narrow
// tiers against double on a briefly-trained model. CI jq-gates the
// drift deltas and the zero-allocation contract per tier.
//
// "meta" records the ISA the binary dispatches to (scalar / avx2+fma /
// neon), compiler, and workload shape, so JSON files from different
// builds are self-describing. CI runs this with --quick and validates
// the schema with jq; full runs track kernel regressions over time.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "kge.h"
#include "math/simd.h"

// ---- Allocation counter ----------------------------------------------------
// Counts every global operator new while the program runs. Replacing the
// allocation operators is incompatible with sanitizer interception, so
// the counter compiles out (and the JSON field becomes null) under
// ASan/TSan.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define KGE_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define KGE_COUNT_ALLOCS 0
#else
#define KGE_COUNT_ALLOCS 1
#endif
#else
#define KGE_COUNT_ALLOCS 1
#endif

#if KGE_COUNT_ALLOCS
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#endif  // KGE_COUNT_ALLOCS

namespace kge {
namespace {

// Sink that the optimizer cannot discard reduction results into.
volatile double g_sink = 0.0;

// Default output location: the repo root (baked in at configure time),
// so the benchmark trajectory accumulates in one canonical place no
// matter which build directory the binary runs from. Overridable with
// --out / --train_out / --eval_out.
#ifndef KGE_REPO_ROOT
#define KGE_REPO_ROOT "."
#endif

struct PerfConfig {
  int64_t entities = 40000;    // full-vocab ranking table size
  int64_t dim_budget = 256;    // total floats per entity (ComplEx: 2x128)
  int64_t queries = 400;       // ScoreAllTails calls to time
  int64_t kernel_n = 256;      // vector length for kernel microbenches
  int64_t kernel_iters = 200000;
  int64_t eval_entities = 3000;  // WN18-like KG size for end-to-end eval
  int64_t eval_triples = 500;    // test triples evaluated end-to-end
  int64_t train_entities = 2000;  // WN18-like KG size for training bench
  int64_t train_epochs = 2;       // timed epochs (one warm-up on top)
  int64_t train_negatives = 4;    // negatives per positive
  int64_t drift_epochs = 30;      // training epochs before drift measurement
  int64_t serve_entities = 8000;      // vocab for the serving bench
  int64_t serve_queries = 2000;       // direct (no-socket) timed queries
  int64_t serve_client_queries = 200;  // per-client queries per phase
  int64_t scale_queries = 40;        // ranked queries per scale tier
  int64_t scale_serve_queries = 200;  // serving queries per scale tier
  std::string out = std::string(KGE_REPO_ROOT) + "/BENCH_kernels.json";
  std::string train_out = std::string(KGE_REPO_ROOT) + "/BENCH_training.json";
  std::string eval_out = std::string(KGE_REPO_ROOT) + "/BENCH_eval.json";
  std::string serve_out = std::string(KGE_REPO_ROOT) + "/BENCH_serving.json";
  bool quick = false;

  void Finalize() {
    if (!quick) return;
    entities = 2000;
    queries = 40;
    kernel_iters = 2000;
    eval_entities = 400;
    eval_triples = 40;
    train_entities = 300;
    train_epochs = 1;
    serve_entities = 1000;
    serve_queries = 200;
    serve_client_queries = 50;
    scale_queries = 16;
    scale_serve_queries = 50;
  }
};

// Entity-table sizes for the §5h scale tiers. The full run covers the
// medium (100k) and xl (1M) presets behind the tools' --scale flag; the
// CI --quick run keeps one reduced tier so the schema (and the
// bit-identical + zero-alloc gates) stay exercised in seconds.
std::vector<int64_t> ScaleTierEntities(const PerfConfig& config) {
  if (config.quick) return {20000};
  return {kWordNetScaleMedium, kWordNetScaleXl};
}

std::vector<float> RandomVector(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->NextUniform(-1.0f, 1.0f);
  return v;
}

// Median-of-three timing of `iters` calls to fn, seconds per call.
template <typename Fn>
double SecondsPerCall(int64_t iters, const Fn& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch sw;
    for (int64_t i = 0; i < iters; ++i) fn();
    const double per_call = sw.ElapsedSeconds() / double(iters);
    if (rep == 0 || per_call < best) best = per_call;
  }
  return best;
}

struct KernelRow {
  std::string name;
  int64_t n = 0;
  double ns_per_call = 0.0;
  double gflops = 0.0;
  double speedup_vs_ref = 0.0;
};

// Times `fn` against `ref_fn` doing the same work; `flops` is the
// floating-point operation count of one call.
template <typename Fn, typename RefFn>
KernelRow BenchKernel(const std::string& name, int64_t n, double flops,
                      int64_t iters, const Fn& fn, const RefFn& ref_fn) {
  KernelRow row;
  row.name = name;
  row.n = n;
  const double simd_sec = SecondsPerCall(iters, fn);
  const double ref_sec = SecondsPerCall(iters, ref_fn);
  row.ns_per_call = simd_sec * 1e9;
  row.gflops = flops / simd_sec / 1e9;
  row.speedup_vs_ref = ref_sec / simd_sec;
  return row;
}

std::vector<KernelRow> BenchKernels(const PerfConfig& config) {
  Rng rng(7);
  const size_t n = size_t(config.kernel_n);
  const int64_t iters = config.kernel_iters;
  const auto a = RandomVector(&rng, n);
  const auto b = RandomVector(&rng, n);
  const auto c = RandomVector(&rng, n);
  auto out = RandomVector(&rng, n);
  auto gh = RandomVector(&rng, n);
  auto gt = RandomVector(&rng, n);
  auto gr = RandomVector(&rng, n);

  // A small entity table for the batch kernel: large enough to stream,
  // small enough that timing is dominated by compute, not DRAM.
  const size_t batch_rows = 1024;
  const auto rows = RandomVector(&rng, batch_rows * n);
  std::vector<float> batch_out(batch_rows);

  std::vector<KernelRow> kernels;
  kernels.push_back(BenchKernel(
      "dot", int64_t(n), 2.0 * double(n), iters,
      [&] { g_sink = g_sink + simd::Dot(a.data(), b.data(), n); },
      [&] { g_sink = g_sink + simd::ref::Dot(a.data(), b.data(), n); }));
  kernels.push_back(BenchKernel(
      "trilinear_dot", int64_t(n), 3.0 * double(n), iters,
      [&] {
        g_sink = g_sink + simd::TrilinearDot(a.data(), b.data(), c.data(), n);
      },
      [&] {
        g_sink =
            g_sink + simd::ref::TrilinearDot(a.data(), b.data(), c.data(), n);
      }));
  kernels.push_back(BenchKernel(
      "dot_batch", int64_t(n), 2.0 * double(n) * double(batch_rows),
      std::max<int64_t>(iters / 256, 16),
      [&] {
        simd::DotBatch(a.data(), rows.data(), batch_rows, n,
                       batch_out.data());
      },
      [&] {
        simd::ref::DotBatch(a.data(), rows.data(), batch_rows, n,
                            batch_out.data());
      }));
  // Multi-query batch kernel: 8 queries against the same row block.
  const size_t multi_queries = 8;
  const auto query_mat = RandomVector(&rng, multi_queries * n);
  std::vector<float> multi_out(multi_queries * batch_rows);
  kernels.push_back(BenchKernel(
      "dot_batch_multi", int64_t(n),
      2.0 * double(n) * double(batch_rows) * double(multi_queries),
      std::max<int64_t>(iters / 2048, 8),
      [&] {
        simd::DotBatchMulti(query_mat.data(), multi_queries, rows.data(),
                            batch_rows, n, multi_out.data());
      },
      [&] {
        simd::ref::DotBatchMulti(query_mat.data(), multi_queries,
                                 rows.data(), batch_rows, n,
                                 multi_out.data());
      }));
  // Id-indirected batch kernel: a shuffled candidate set scored straight
  // out of the row table (the gather-free ScoreTailBatch path).
  std::vector<int32_t> ids(batch_rows);
  for (size_t i = 0; i < batch_rows; ++i) {
    ids[i] = int32_t(rng.NextBounded(uint64_t(batch_rows)));
  }
  kernels.push_back(BenchKernel(
      "dot_batch_indexed", int64_t(n), 2.0 * double(n) * double(batch_rows),
      std::max<int64_t>(iters / 256, 16),
      [&] {
        simd::DotBatchIndexed(a.data(), rows.data(), ids.data(), batch_rows,
                              n, batch_out.data());
      },
      [&] {
        simd::ref::DotBatchIndexed(a.data(), rows.data(), ids.data(),
                                   batch_rows, n, batch_out.data());
      }));
  kernels.push_back(BenchKernel(
      "hadamard_axpy", int64_t(n), 3.0 * double(n), iters,
      [&] { simd::HadamardAxpy(0.5f, a.data(), b.data(), out.data(), n); },
      [&] {
        simd::ref::HadamardAxpy(0.5f, a.data(), b.data(), out.data(), n);
      }));
  kernels.push_back(BenchKernel(
      "triple_grad_axpy", int64_t(n), 8.0 * double(n), iters,
      [&] {
        simd::TripleGradAxpy(0.5f, a.data(), b.data(), c.data(), gh.data(),
                             gt.data(), gr.data(), n);
      },
      [&] {
        simd::ref::TripleGradAxpy(0.5f, a.data(), b.data(), c.data(),
                                  gh.data(), gt.data(), gr.data(), n);
      }));
  return kernels;
}

// The pre-SIMD ScoreAllTails: per-call fold allocation, naive sequential
// fold and per-candidate dot. This is the "scalar baseline" the ranking
// speedup is measured against.
void NaiveScoreAllTails(const MultiEmbeddingModel& model, EntityId head,
                        RelationId relation, std::span<float> out) {
  const WeightTable& weights = model.weights();
  const size_t d = size_t(model.dim());
  const auto h = model.entity_store().Of(head);
  const auto r = model.relation_store().Of(relation);
  std::vector<float> fold(size_t(weights.ne()) * d, 0.0f);
  for (const WeightTable::Term& term : weights.terms()) {
    simd::ref::HadamardAxpy(term.weight, h.data() + size_t(term.i) * d,
                            r.data() + size_t(term.k) * d,
                            fold.data() + size_t(term.j) * d, d);
  }
  for (int32_t e = 0; e < model.num_entities(); ++e) {
    out[size_t(e)] = float(simd::ref::Dot(
        fold.data(), model.entity_store().Of(e).data(), fold.size()));
  }
}

struct RankingResult {
  int64_t entities = 0;
  int64_t dim = 0;
  int64_t queries = 0;
  double ns_per_triple = 0.0;
  double triples_per_sec = 0.0;
  double candidates_per_sec = 0.0;
  double speedup_vs_scalar_ref = 0.0;
  double allocs_per_triple = -1.0;  // -1 = not measured (sanitized build)
};

RankingResult BenchRanking(const PerfConfig& config) {
  const int32_t num_entities = int32_t(config.entities);
  const int32_t num_relations = 18;
  const int32_t dim = int32_t(config.dim_budget / 2);  // ComplEx: 2 vectors
  std::unique_ptr<MultiEmbeddingModel> model =
      MakeComplEx(num_entities, num_relations, dim, /*seed=*/42);

  Rng rng(11);
  std::vector<float> scores(static_cast<size_t>(num_entities));
  const auto query = [&](const auto& score_fn) {
    const EntityId head = EntityId(rng.NextBounded(uint64_t(num_entities)));
    const RelationId rel =
        RelationId(rng.NextBounded(uint64_t(num_relations)));
    score_fn(head, rel, std::span<float>(scores));
  };
  const auto simd_score = [&](EntityId h, RelationId r,
                              std::span<float> out) {
    model->ScoreAllTails(h, r, out);
  };
  const auto ref_score = [&](EntityId h, RelationId r, std::span<float> out) {
    NaiveScoreAllTails(*model, h, r, out);
  };

  // Warm up: populates the thread_local fold scratch so the timed (and
  // allocation-counted) region is steady state.
  for (int i = 0; i < 3; ++i) query(simd_score);

  RankingResult result;
  result.entities = num_entities;
  result.dim = dim;
  result.queries = config.queries;

#if KGE_COUNT_ALLOCS
  const uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
#endif
  Stopwatch sw;
  for (int64_t q = 0; q < config.queries; ++q) query(simd_score);
  const double simd_sec = sw.ElapsedSeconds();
#if KGE_COUNT_ALLOCS
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  result.allocs_per_triple = double(allocs) / double(config.queries);
#endif

  // The scalar baseline is ~10x slower; a fraction of the queries gives
  // the same per-call estimate without dominating wall time.
  const int64_t ref_queries = std::max<int64_t>(config.queries / 8, 5);
  sw.Restart();
  for (int64_t q = 0; q < ref_queries; ++q) query(ref_score);
  const double ref_sec = sw.ElapsedSeconds();

  const double per_query = simd_sec / double(config.queries);
  result.ns_per_triple = per_query * 1e9;
  result.triples_per_sec = 1.0 / per_query;
  result.candidates_per_sec = double(num_entities) / per_query;
  result.speedup_vs_scalar_ref =
      (ref_sec / double(ref_queries)) / per_query;
  return result;
}

struct EvalThroughput {
  int64_t entities = 0;
  int64_t triples = 0;
  double triples_per_sec = 0.0;
  double filtered_mrr = 0.0;
  double filtered_hits10 = 0.0;
};

EvalThroughput BenchEndToEnd(const PerfConfig& config) {
  WordNetLikeOptions options;
  options.num_entities = int32_t(config.eval_entities);
  options.seed = 42;
  const Dataset dataset = GenerateWordNetLike(options);
  FilterIndex filter;
  filter.Build(dataset.train, dataset.valid, dataset.test);
  Evaluator evaluator(&filter, dataset.num_relations());

  std::unique_ptr<MultiEmbeddingModel> model = MakeComplEx(
      dataset.num_entities(), dataset.num_relations(),
      int32_t(config.dim_budget / 2), /*seed=*/42);

  EvalOptions eval_options;
  eval_options.filtered = true;
  eval_options.max_triples = size_t(config.eval_triples);
  eval_options.num_threads = 1;

  // Warm-up evaluates once (JIT-free, but faults pages + fills scratch).
  evaluator.EvaluateOverall(*model, dataset.test, eval_options);

  Stopwatch sw;
  const RankingMetrics metrics =
      evaluator.EvaluateOverall(*model, dataset.test, eval_options);
  const double seconds = sw.ElapsedSeconds();

  EvalThroughput result;
  result.entities = dataset.num_entities();
  result.triples = int64_t(metrics.count());
  result.triples_per_sec = double(metrics.count()) / seconds;
  result.filtered_mrr = metrics.Mrr();
  result.filtered_hits10 = metrics.HitsAt(10);
  return result;
}

// ---- Eval batching ---------------------------------------------------------
// Full-vocabulary ranking throughput as a function of the query batch
// size B: the same Q queries are folded and ranked either one at a time
// (B = 1, the per-query ScoreAllTails GEMV path) or B at a time through
// ScoreAllTailsBatch's cache-blocked multi-query kernel. Scores are
// bit-identical at every B, so the rows measure pure memory scheduling:
// each entity-table tile is streamed once per batch instead of once per
// query.

struct EvalBatchRow {
  int batch = 1;
  double ns_per_triple = 0.0;
  double gb_per_s = 0.0;  // entity-table bytes scored per second
  double allocs_per_triple = -1.0;  // -1 = not measured (sanitized build)
  double speedup_vs_b1 = 1.0;
};

struct EvalBatchReport {
  int64_t entities = 0;
  int64_t dim = 0;
  int64_t queries = 0;
  std::vector<EvalBatchRow> rows;
  // Metric-equality canary: full filtered Evaluate on the WN18-like KG,
  // per-query path vs batched path.
  double mrr_per_query = 0.0;
  double mrr_batched = 0.0;
  bool bit_identical = false;
};

EvalBatchReport BenchEvalBatching(const PerfConfig& config) {
  const int32_t num_entities = int32_t(config.entities);
  const int32_t num_relations = 18;
  const int32_t dim = int32_t(config.dim_budget / 2);  // ComplEx: 2 vectors
  std::unique_ptr<MultiEmbeddingModel> model =
      MakeComplEx(num_entities, num_relations, dim, /*seed=*/42);

  // A fixed query workload shared by every batch size: Q heads, one
  // relation (grouping by relation is the evaluator's job; the kernel
  // sees one relation per call either way), and a designated true tail
  // per query for the rank scan.
  Rng rng(13);
  const int64_t num_queries = config.queries;
  std::vector<EntityId> heads(static_cast<size_t>(num_queries));
  std::vector<EntityId> truths(static_cast<size_t>(num_queries));
  for (int64_t q = 0; q < num_queries; ++q) {
    heads[size_t(q)] = EntityId(rng.NextBounded(uint64_t(num_entities)));
    truths[size_t(q)] = EntityId(rng.NextBounded(uint64_t(num_entities)));
  }
  const RelationId relation = 0;

  // Unfiltered rank scan over one score row — the same O(E) pass at
  // every batch size, so batching differences isolate the scoring.
  const auto rank_scan = [&](std::span<const float> row, EntityId truth) {
    const float true_score = row[size_t(truth)];
    size_t better = 0;
    for (const float s : row) {
      if (s > true_score) ++better;
    }
    return better;
  };

  const int batch_sizes[] = {1, 8, 32, 128};
  const size_t max_batch = 128;
  std::vector<float> scores(max_batch * size_t(num_entities));
  volatile size_t rank_sink = 0;

  EvalBatchReport report;
  report.entities = num_entities;
  report.dim = dim;
  report.queries = num_queries;

  for (const int batch : batch_sizes) {
    // Warm-up pass: faults pages and grows the model's thread_local fold
    // scratch to this batch size, so the timed loop is steady state.
    const auto run_pass = [&] {
      for (int64_t q0 = 0; q0 < num_queries; q0 += batch) {
        const size_t count =
            size_t(std::min<int64_t>(batch, num_queries - q0));
        const std::span<float> block(scores.data(),
                                     count * size_t(num_entities));
        if (batch == 1) {
          model->ScoreAllTails(heads[size_t(q0)], relation, block);
        } else {
          model->ScoreAllTailsBatch(
              std::span<const EntityId>(heads.data() + q0, count), relation,
              block);
        }
        for (size_t i = 0; i < count; ++i) {
          rank_sink = rank_sink +
                      rank_scan(block.subspan(i * size_t(num_entities),
                                              size_t(num_entities)),
                                truths[size_t(q0) + i]);
        }
      }
    };
    run_pass();

#if KGE_COUNT_ALLOCS
    const uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
#endif
    Stopwatch sw;
    run_pass();
    const double seconds = sw.ElapsedSeconds();

    EvalBatchRow row;
    row.batch = batch;
#if KGE_COUNT_ALLOCS
    const uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    row.allocs_per_triple = double(allocs) / double(num_queries);
#endif
    row.ns_per_triple = seconds / double(num_queries) * 1e9;
    const double table_bytes = double(num_queries) * double(num_entities) *
                               double(config.dim_budget) * sizeof(float);
    row.gb_per_s = table_bytes / seconds / 1e9;
    report.rows.push_back(row);
  }
  for (EvalBatchRow& row : report.rows) {
    row.speedup_vs_b1 = report.rows.front().ns_per_triple / row.ns_per_triple;
  }

  // Metric-equality canary on the end-to-end KG: the batched evaluator
  // must reproduce the per-query metrics bit-for-bit.
  WordNetLikeOptions kg_options;
  kg_options.num_entities = int32_t(config.eval_entities);
  kg_options.seed = 42;
  const Dataset dataset = GenerateWordNetLike(kg_options);
  FilterIndex filter;
  filter.Build(dataset.train, dataset.valid, dataset.test);
  Evaluator evaluator(&filter, dataset.num_relations());
  std::unique_ptr<MultiEmbeddingModel> eval_model = MakeComplEx(
      dataset.num_entities(), dataset.num_relations(), dim, /*seed=*/42);
  EvalOptions eval_options;
  eval_options.filtered = true;
  eval_options.max_triples = size_t(config.eval_triples);
  eval_options.batch_queries = 1;
  const RankingMetrics per_query =
      evaluator.EvaluateOverall(*eval_model, dataset.test, eval_options);
  eval_options.batch_queries = 32;
  const RankingMetrics batched =
      evaluator.EvaluateOverall(*eval_model, dataset.test, eval_options);
  report.mrr_per_query = per_query.Mrr();
  report.mrr_batched = batched.Mrr();
  report.bit_identical = per_query.Mrr() == batched.Mrr() &&
                         per_query.MeanRank() == batched.MeanRank() &&
                         per_query.HitsAt(10) == batched.HitsAt(10);
  return report;
}

// ---- Precision tiers -------------------------------------------------------
// The same batched full-vocabulary workload ranked at each scoring tier
// (see core/scoring_replica.h): kDouble is the exact protocol baseline,
// kFloat32 swaps the accumulator width, kInt8 streams the quantized
// entity replica (4x fewer table bytes per candidate). The drift block
// evaluates a briefly-trained model under the full filtered protocol at
// every tier so CI can gate the metric deltas the narrow tiers trade
// for bandwidth.

struct PrecisionTierRow {
  ScorePrecision precision = ScorePrecision::kDouble;
  double ns_per_triple = 0.0;
  double gb_per_s = 0.0;  // effective entity-table bytes scored per second
  double allocs_per_triple = -1.0;  // -1 = not measured (sanitized build)
  double speedup_vs_double = 1.0;
};

struct PrecisionDriftRow {
  ScorePrecision precision = ScorePrecision::kDouble;
  double mrr = 0.0;
  double hits1 = 0.0;
  double hits3 = 0.0;
  double hits10 = 0.0;
  double delta_mrr = 0.0;
  double delta_hits1 = 0.0;
  double delta_hits3 = 0.0;
  double delta_hits10 = 0.0;
};

struct PrecisionReport {
  int64_t entities = 0;
  int64_t dim = 0;
  int64_t queries = 0;
  int batch = 32;
  std::vector<PrecisionTierRow> tiers;
  int64_t drift_entities = 0;
  int64_t drift_triples = 0;
  int64_t drift_epochs = 0;
  std::vector<PrecisionDriftRow> drift;
};

constexpr ScorePrecision kPrecisionTiers[] = {
    ScorePrecision::kDouble, ScorePrecision::kFloat32, ScorePrecision::kInt8};

PrecisionReport BenchPrecisionTiers(const PerfConfig& config) {
  const int32_t num_entities = int32_t(config.entities);
  const int32_t num_relations = 18;
  const int32_t dim = int32_t(config.dim_budget / 2);  // ComplEx: 2 vectors
  std::unique_ptr<MultiEmbeddingModel> model =
      MakeComplEx(num_entities, num_relations, dim, /*seed=*/42);

  // Same fixed workload shape as the batching bench: Q heads, one
  // relation, a designated true tail per query, batch fixed at 32 so the
  // rows differ only in the scoring tier.
  Rng rng(17);
  const int64_t num_queries = config.queries;
  std::vector<EntityId> heads(static_cast<size_t>(num_queries));
  std::vector<EntityId> truths(static_cast<size_t>(num_queries));
  for (int64_t q = 0; q < num_queries; ++q) {
    heads[size_t(q)] = EntityId(rng.NextBounded(uint64_t(num_entities)));
    truths[size_t(q)] = EntityId(rng.NextBounded(uint64_t(num_entities)));
  }
  const RelationId relation = 0;
  const auto rank_scan = [&](std::span<const float> row, EntityId truth) {
    const float true_score = row[size_t(truth)];
    size_t better = 0;
    for (const float s : row) {
      if (s > true_score) ++better;
    }
    return better;
  };

  PrecisionReport report;
  report.entities = num_entities;
  report.dim = dim;
  report.queries = num_queries;
  const int batch = report.batch;
  std::vector<float> scores(size_t(batch) * size_t(num_entities));
  volatile size_t rank_sink = 0;

  for (const ScorePrecision precision : kPrecisionTiers) {
    // Replica builds (the int8 quantization pass) happen here, outside
    // the timed and allocation-counted region — exactly where the
    // evaluator runs them (once, before the scoring fanout).
    model->PrepareForScoring(precision);
    const auto run_pass = [&] {
      for (int64_t q0 = 0; q0 < num_queries; q0 += batch) {
        const size_t count =
            size_t(std::min<int64_t>(batch, num_queries - q0));
        const std::span<float> block(scores.data(),
                                     count * size_t(num_entities));
        model->ScoreAllTailsBatch(
            std::span<const EntityId>(heads.data() + q0, count), relation,
            block, precision);
        for (size_t i = 0; i < count; ++i) {
          rank_sink = rank_sink +
                      rank_scan(block.subspan(i * size_t(num_entities),
                                              size_t(num_entities)),
                                truths[size_t(q0) + i]);
        }
      }
    };
    run_pass();  // warm-up: faults pages, grows thread_local fold scratch

#if KGE_COUNT_ALLOCS
    const uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
#endif
    Stopwatch sw;
    run_pass();
    const double seconds = sw.ElapsedSeconds();

    PrecisionTierRow row;
    row.precision = precision;
#if KGE_COUNT_ALLOCS
    const uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    row.allocs_per_triple = double(allocs) / double(num_queries);
#endif
    row.ns_per_triple = seconds / double(num_queries) * 1e9;
    // Bytes actually streamed per candidate element: the double and
    // float32 tiers read the 4-byte master rows, int8 the 1-byte codes.
    const double bytes_per_elem =
        precision == ScorePrecision::kInt8 ? 1.0 : double(sizeof(float));
    const double table_bytes = double(num_queries) * double(num_entities) *
                               double(config.dim_budget) * bytes_per_elem;
    row.gb_per_s = table_bytes / seconds / 1e9;
    report.tiers.push_back(row);
  }
  for (PrecisionTierRow& row : report.tiers) {
    row.speedup_vs_double =
        report.tiers.front().ns_per_triple / row.ns_per_triple;
  }

  // ---- Accuracy drift under the full filtered protocol ----
  // Measured on a briefly-trained model: training opens score margins
  // between true triples and corruptions that dwarf the int8
  // quantization noise, so the deltas reflect the tier contract rather
  // than coin-flip rank swaps among near-tied random initial scores.
  WordNetLikeOptions kg_options;
  kg_options.num_entities = int32_t(config.eval_entities);
  kg_options.seed = 42;
  const Dataset dataset = GenerateWordNetLike(kg_options);
  FilterIndex filter;
  filter.Build(dataset.train, dataset.valid, dataset.test);
  Evaluator evaluator(&filter, dataset.num_relations());
  std::unique_ptr<MultiEmbeddingModel> drift_model = MakeComplEx(
      dataset.num_entities(), dataset.num_relations(), dim, /*seed=*/42);
  TrainerOptions train_options;
  train_options.batch_size = 256;
  train_options.num_negatives = 2;
  train_options.learning_rate = 0.05;
  train_options.optimizer = "adagrad";
  train_options.seed = 42;
  Trainer trainer(drift_model.get(), train_options);
  NegativeSamplerOptions sampler_options;
  NegativeSampler sampler(drift_model->num_entities(),
                          drift_model->num_relations(), dataset.train,
                          sampler_options);
  Rng train_rng(42);
  for (int64_t e = 0; e < config.drift_epochs; ++e) {
    g_sink = g_sink + trainer.RunEpoch(dataset.train, sampler, &train_rng);
  }

  report.drift_entities = dataset.num_entities();
  report.drift_epochs = config.drift_epochs;
  EvalOptions eval_options;
  eval_options.filtered = true;
  eval_options.max_triples = 0;  // the full test split, every tier
  eval_options.batch_queries = 32;
  for (const ScorePrecision precision : kPrecisionTiers) {
    eval_options.score_precision = precision;
    const RankingMetrics metrics =
        evaluator.EvaluateOverall(*drift_model, dataset.test, eval_options);
    PrecisionDriftRow row;
    row.precision = precision;
    row.mrr = metrics.Mrr();
    row.hits1 = metrics.HitsAt(1);
    row.hits3 = metrics.HitsAt(3);
    row.hits10 = metrics.HitsAt(10);
    report.drift_triples = int64_t(metrics.count());
    report.drift.push_back(row);
  }
  const PrecisionDriftRow& exact = report.drift.front();
  for (PrecisionDriftRow& row : report.drift) {
    row.delta_mrr = row.mrr - exact.mrr;
    row.delta_hits1 = row.hits1 - exact.hits1;
    row.delta_hits3 = row.hits3 - exact.hits3;
    row.delta_hits10 = row.hits10 - exact.hits10;
  }
  return report;
}

// ---- Scale tiers (§5h) -----------------------------------------------------
// Full-vocabulary ranking at the --scale presets (medium = 100k, xl =
// 1M entities), exhaustive vs bound-pruned, on a trained-like model.
// Pruning is exact — every pruned row carries a bit_identical canary
// against the exhaustive result — so the rows measure how many
// candidate tiles the Cauchy–Schwarz bounds prove irrelevant and what
// that saves in table bandwidth. The rank path (CountTailsAbove, the
// evaluator's primitive) and the top-k path (TopKTailsInRange, the
// serving reduction) are timed separately; the top-k path adds a
// sharded row to pin the shard-count invariance at scale.

// A trained-like model for the scale tiers without paying a 1M-entity
// training run: Xavier init, then entity norms rescaled to decay with
// id. Trained KGE embedding tables develop exactly this skew once the
// vocabulary is frequency-sorted — frequent entities grow large norms,
// the long tail stays small — and id-clustered norm skew is the
// structure tile pruning feeds on. The 0.05 floor keeps every tail row
// nonzero so pruned scans still have real work to reject.
std::unique_ptr<MultiEmbeddingModel> MakeSkewedDistMult(int32_t entities,
                                                        int32_t dim) {
  std::unique_ptr<MultiEmbeddingModel> model =
      MakeDistMult(entities, 8, dim, /*seed=*/42);
  EmbeddingStore& store = model->entity_store();
  for (int32_t e = 0; e < entities; ++e) {
    const double u = double(e) / double(entities);
    const float scale = 0.05f + 0.95f * float(std::exp(-8.0 * u));
    for (float& x : store.Of(e)) x *= scale;
  }
  return model;
}

struct ScaleRankRow {
  double exhaustive_ns_per_query = 0.0;
  double pruned_ns_per_query = 0.0;
  double speedup_pruned_vs_exhaustive = 0.0;
  double tiles_skipped_frac = 0.0;
  double exhaustive_gb_per_s = 0.0;
  double pruned_effective_gb_per_s = 0.0;
  double pruned_allocs_per_query = -1.0;  // -1 = sanitized build
  bool bit_identical = false;
};

struct ScaleTopKRow {
  double exhaustive_ns_per_query = 0.0;
  double pruned_ns_per_query = 0.0;
  double sharded_pruned_ns_per_query = 0.0;
  double speedup_pruned_vs_exhaustive = 0.0;
  double tiles_skipped_frac = 0.0;
  double pruned_allocs_per_query = -1.0;  // -1 = sanitized build
  bool bit_identical = false;
};

struct ScaleTierRow {
  int64_t entities = 0;
  int64_t queries = 0;
  ScaleRankRow rank;
  ScaleTopKRow topk;
};

struct ScaleReport {
  int64_t dim = 0;
  uint32_t k = 10;
  int shards = 7;
  std::vector<ScaleTierRow> tiers;
};

ScaleTierRow BenchScaleTier(const PerfConfig& config, int64_t entities,
                            uint32_t k, int shards) {
  const int32_t n = int32_t(entities);
  const int32_t dim = int32_t(config.dim_budget);
  std::unique_ptr<MultiEmbeddingModel> model = MakeSkewedDistMult(n, dim);
  const ScorePrecision precision = ScorePrecision::kDouble;
  model->PrepareForPrunedScoring(precision);

  // Query workload: random heads; the rank threshold is the best score
  // among a fixed-size candidate sample, standing in for the true tail
  // of a converged model (which the filtered protocol ranks near the
  // top — an untrained threshold sits in the noise floor and no bound
  // can prove anything against it).
  Rng rng(23);
  const int64_t num_queries = config.scale_queries;
  std::vector<EntityId> heads(static_cast<size_t>(num_queries));
  std::vector<RelationId> rels(static_cast<size_t>(num_queries));
  std::vector<EntityId> truths(static_cast<size_t>(num_queries));
  std::vector<float> thresholds(static_cast<size_t>(num_queries));
  const int32_t sample = int32_t(std::min<int64_t>(entities, 2048));
  for (int64_t q = 0; q < num_queries; ++q) {
    const EntityId head = EntityId(rng.NextBounded(uint64_t(n)));
    const RelationId rel = RelationId(rng.NextBounded(8));
    EntityId best = 0;
    float best_score = model->ScoreOneTail(head, 0, rel, precision);
    for (int32_t t = 1; t < sample; ++t) {
      const float s = model->ScoreOneTail(head, t, rel, precision);
      if (s > best_score) {
        best_score = s;
        best = t;
      }
    }
    heads[size_t(q)] = head;
    rels[size_t(q)] = rel;
    truths[size_t(q)] = best;
    thresholds[size_t(q)] = best_score;
  }
  const std::span<const EntityId> no_excluded;

  ScaleTierRow tier;
  tier.entities = entities;
  tier.queries = num_queries;
  const double table_bytes_per_query =
      double(entities) * double(dim) * sizeof(float);

  // ---- Rank path: CountTailsAbove, exhaustive vs pruned ----
  // One flat buffer for all four count arrays (GCC 12's
  // -Wmismatched-new-delete false-fires on the malloc-backed
  // replacement operator new when a vector's full lifetime is inlined
  // into this frame, so the buffers share one up-front allocation).
  std::vector<uint64_t> counts(static_cast<size_t>(num_queries) * 4, 0);
  const std::span<uint64_t> ex_better(counts.data(), size_t(num_queries));
  const std::span<uint64_t> ex_equal(counts.data() + num_queries,
                                     size_t(num_queries));
  const std::span<uint64_t> pr_better(counts.data() + 2 * num_queries,
                                      size_t(num_queries));
  const std::span<uint64_t> pr_equal(counts.data() + 3 * num_queries,
                                     size_t(num_queries));
  const auto rank_pass = [&](bool prune, std::span<uint64_t> better,
                             std::span<uint64_t> equal,
                             RankScanStats* stats) {
    for (int64_t q = 0; q < num_queries; ++q) {
      better[size_t(q)] = 0;
      equal[size_t(q)] = 0;
      model->CountTailsAbove(heads[size_t(q)], rels[size_t(q)],
                             thresholds[size_t(q)], 0, EntityId(n),
                             no_excluded, truths[size_t(q)], precision, prune,
                             &better[size_t(q)], &equal[size_t(q)], stats);
    }
  };
  RankScanStats warm_stats;
  rank_pass(false, ex_better, ex_equal, &warm_stats);  // warm-up + reference
  Stopwatch sw;
  rank_pass(false, ex_better, ex_equal, &warm_stats);
  const double ex_seconds = sw.ElapsedSeconds();

  RankScanStats rank_stats;
  rank_pass(true, pr_better, pr_equal, &rank_stats);  // warm-up
  rank_stats = RankScanStats{};
#if KGE_COUNT_ALLOCS
  const uint64_t rank_allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
#endif
  sw.Restart();
  rank_pass(true, pr_better, pr_equal, &rank_stats);
  const double pr_seconds = sw.ElapsedSeconds();
#if KGE_COUNT_ALLOCS
  tier.rank.pruned_allocs_per_query =
      double(g_alloc_count.load(std::memory_order_relaxed) -
             rank_allocs_before) /
      double(num_queries);
#endif

  tier.rank.exhaustive_ns_per_query =
      ex_seconds / double(num_queries) * 1e9;
  tier.rank.pruned_ns_per_query = pr_seconds / double(num_queries) * 1e9;
  tier.rank.speedup_pruned_vs_exhaustive = ex_seconds / pr_seconds;
  tier.rank.tiles_skipped_frac =
      rank_stats.tiles_total > 0
          ? double(rank_stats.tiles_skipped) / double(rank_stats.tiles_total)
          : 0.0;
  tier.rank.exhaustive_gb_per_s =
      double(num_queries) * table_bytes_per_query / ex_seconds / 1e9;
  // Effective bandwidth of the pruned pass: only unskipped tiles are
  // streamed, so the touched-byte count shrinks by the skip fraction.
  tier.rank.pruned_effective_gb_per_s =
      double(num_queries) * table_bytes_per_query *
      (1.0 - tier.rank.tiles_skipped_frac) / pr_seconds / 1e9;
  tier.rank.bit_identical = true;
  for (int64_t q = 0; q < num_queries; ++q) {
    if (pr_better[size_t(q)] != ex_better[size_t(q)] ||
        pr_equal[size_t(q)] != ex_equal[size_t(q)]) {
      tier.rank.bit_identical = false;
    }
  }

  // ---- Top-k path: TopKTailsInRange, exhaustive vs pruned vs sharded ----
  TopKHeap<float, EntityId> ex_heap;
  TopKHeap<float, EntityId> pr_heap;
  TopKHeap<float, EntityId> merged;
  TopKHeap<float, EntityId> prime_heap;
  std::vector<TopKHeap<float, EntityId>> shard_heaps(
      static_cast<size_t>(shards));
  ex_heap.Reserve(int(k));
  pr_heap.Reserve(int(k));
  merged.Reserve(int(k));
  prime_heap.Reserve(int(k));
  for (auto& heap : shard_heaps) heap.Reserve(int(k));

  const auto topk_pass = [&](bool prune, TopKHeap<float, EntityId>* heap,
                             int64_t q, RankScanStats* stats) {
    heap->ResetCapacity(int(k));
    model->TopKTailsInRange(heads[size_t(q)], rels[size_t(q)], 0,
                            EntityId(n), no_excluded, precision, prune, heap,
                            stats);
  };
  // The sharded pass mirrors the serving reduction: per-shard heaps can
  // only prune against their own minima, so prime a shared floor from
  // an exhaustive scan of the first k candidates before fanning out.
  const auto sharded_pass = [&](int64_t q, RankScanStats* stats) {
    float floor = 0.0f;
    bool have_floor = false;
    const int64_t prime_end = std::min<int64_t>(
        int64_t(n),
        std::max<int64_t>(int64_t(k), int64_t(KgeModel::kPrunePrimePrefix)));
    if (prime_end < int64_t(n)) {
      prime_heap.ResetCapacity(int(k));
      model->TopKTailsInRange(heads[size_t(q)], rels[size_t(q)], 0,
                              EntityId(prime_end), no_excluded, precision,
                              false, &prime_heap, stats);
      if (prime_heap.full()) {
        floor = prime_heap.WorstScore();
        have_floor = true;
      }
    }
    merged.ResetCapacity(int(k));
    for (int s = 0; s < shards; ++s) {
      shard_heaps[size_t(s)].ResetCapacity(int(k));
      if (have_floor) shard_heaps[size_t(s)].SetPruneFloor(floor);
      model->TopKTailsInRange(heads[size_t(q)], rels[size_t(q)],
                              ShardBegin(EntityId(n), shards, s),
                              ShardBegin(EntityId(n), shards, s + 1),
                              no_excluded, precision, true,
                              &shard_heaps[size_t(s)], stats);
      merged.MergeFrom(shard_heaps[size_t(s)]);
    }
  };
  const auto same_entries = [](std::span<const TopKHeap<float, EntityId>::Entry>
                                   a,
                               std::span<const TopKHeap<float, EntityId>::Entry>
                                   b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].entity != b[i].entity || a[i].score != b[i].score) return false;
    }
    return true;
  };

  RankScanStats topk_stats;
  tier.topk.bit_identical = true;
  // Correctness sweep (untimed): pruned and sharded-pruned must return
  // exactly the exhaustive top-k for every query. Also warms scratch.
  for (int64_t q = 0; q < num_queries; ++q) {
    topk_pass(false, &ex_heap, q, &topk_stats);
    topk_pass(true, &pr_heap, q, &topk_stats);
    sharded_pass(q, &topk_stats);
    if (!same_entries(ex_heap.TakeSorted(), pr_heap.TakeSorted()) ||
        !same_entries(ex_heap.TakeSorted(), merged.TakeSorted())) {
      tier.topk.bit_identical = false;
    }
  }

  sw.Restart();
  for (int64_t q = 0; q < num_queries; ++q) {
    topk_pass(false, &ex_heap, q, &topk_stats);
  }
  const double topk_ex_seconds = sw.ElapsedSeconds();

  topk_stats = RankScanStats{};
#if KGE_COUNT_ALLOCS
  const uint64_t topk_allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
#endif
  sw.Restart();
  for (int64_t q = 0; q < num_queries; ++q) {
    topk_pass(true, &pr_heap, q, &topk_stats);
  }
  const double topk_pr_seconds = sw.ElapsedSeconds();
#if KGE_COUNT_ALLOCS
  tier.topk.pruned_allocs_per_query =
      double(g_alloc_count.load(std::memory_order_relaxed) -
             topk_allocs_before) /
      double(num_queries);
#endif

  sw.Restart();
  for (int64_t q = 0; q < num_queries; ++q) {
    RankScanStats shard_stats;
    sharded_pass(q, &shard_stats);
  }
  const double topk_sh_seconds = sw.ElapsedSeconds();

  tier.topk.exhaustive_ns_per_query =
      topk_ex_seconds / double(num_queries) * 1e9;
  tier.topk.pruned_ns_per_query =
      topk_pr_seconds / double(num_queries) * 1e9;
  tier.topk.sharded_pruned_ns_per_query =
      topk_sh_seconds / double(num_queries) * 1e9;
  tier.topk.speedup_pruned_vs_exhaustive = topk_ex_seconds / topk_pr_seconds;
  tier.topk.tiles_skipped_frac =
      topk_stats.tiles_total > 0
          ? double(topk_stats.tiles_skipped) / double(topk_stats.tiles_total)
          : 0.0;
  return tier;
}

ScaleReport BenchScaleTiers(const PerfConfig& config) {
  ScaleReport report;
  report.dim = config.dim_budget;
  for (const int64_t entities : ScaleTierEntities(config)) {
    report.tiers.push_back(
        BenchScaleTier(config, entities, report.k, report.shards));
  }
  return report;
}

// ---- Training throughput ---------------------------------------------------

struct TrainingRow {
  std::string model;
  std::string regime;  // "negative_sampling" | "one_vs_all"
  int threads = 1;
  int pipeline_depth = 1;
  int64_t train_triples = 0;
  double epoch_seconds = 0.0;
  double triples_per_sec = 0.0;
  double examples_per_sec = 0.0;
  double allocs_per_triple = -1.0;  // -1 = not measured (sanitized build)
  double speedup_vs_1t = 1.0;
  // Per-stage occupancy: busy (sample/score, summed over tasks) or caller
  // wall (merge/apply) seconds divided by total epoch wall seconds.
  // Sample/score can exceed 1.0 when several workers are busy at once.
  double occ_sample = 0.0;
  double occ_score = 0.0;
  double occ_merge = 0.0;
  double occ_apply = 0.0;
};

void FillStageOccupancy(const TrainStageStats& stats, TrainingRow* row) {
  if (stats.wall_seconds <= 0.0) return;
  row->occ_sample = stats.sample_seconds / stats.wall_seconds;
  row->occ_score = stats.score_seconds / stats.wall_seconds;
  row->occ_merge = stats.merge_seconds / stats.wall_seconds;
  row->occ_apply = stats.apply_seconds / stats.wall_seconds;
}

std::unique_ptr<MultiEmbeddingModel> MakeTrainModel(const std::string& name,
                                                    const Dataset& data,
                                                    int64_t dim_budget) {
  if (name == "DistMult") {
    return MakeDistMult(data.num_entities(), data.num_relations(),
                        int32_t(dim_budget), /*seed=*/42);
  }
  return MakeComplEx(data.num_entities(), data.num_relations(),
                     int32_t(dim_budget / 2), /*seed=*/42);
}

TrainingRow BenchNegativeSampling(const PerfConfig& config,
                                  const Dataset& data,
                                  const std::string& model_name,
                                  int threads) {
  std::unique_ptr<MultiEmbeddingModel> model =
      MakeTrainModel(model_name, data, config.dim_budget);
  TrainerOptions options;
  options.batch_size = 256;
  options.num_negatives = int(config.train_negatives);
  options.num_threads = threads;
  options.seed = 42;
  Trainer trainer(model.get(), options);
  NegativeSamplerOptions sampler_options;
  NegativeSampler sampler(model->num_entities(), model->num_relations(),
                          data.train, sampler_options);
  Rng rng(42);
  // Warm-up epoch: grows every per-thread scratch buffer, shard buffer,
  // and gradient pool to its high-water mark, so the timed (and
  // allocation-counted) epochs are steady state.
  g_sink = g_sink + trainer.RunEpoch(data.train, sampler, &rng);
  trainer.ResetStageStats();

  TrainingRow row;
  row.model = model_name;
  row.regime = "negative_sampling";
  row.threads = threads;
  row.pipeline_depth = options.pipeline_depth;
  row.train_triples = int64_t(data.train.size());
#if KGE_COUNT_ALLOCS
  const uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
#endif
  Stopwatch sw;
  for (int64_t e = 0; e < config.train_epochs; ++e) {
    g_sink = g_sink + trainer.RunEpoch(data.train, sampler, &rng);
  }
  const double seconds = sw.ElapsedSeconds();
#if KGE_COUNT_ALLOCS
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  row.allocs_per_triple =
      double(allocs) /
      double(config.train_epochs * int64_t(data.train.size()));
#endif
  const double per_epoch = seconds / double(config.train_epochs);
  row.epoch_seconds = per_epoch;
  row.triples_per_sec = double(data.train.size()) / per_epoch;
  row.examples_per_sec =
      row.triples_per_sec * double(1 + config.train_negatives);
  FillStageOccupancy(trainer.stage_stats(), &row);
  return row;
}

TrainingRow BenchOneVsAll(const PerfConfig& config, const Dataset& data,
                          const std::string& model_name, int threads) {
  std::unique_ptr<MultiEmbeddingModel> model =
      MakeTrainModel(model_name, data, config.dim_budget);
  OneVsAllOptions options;
  options.max_epochs = 1;
  options.num_threads = threads;
  options.seed = 42;
  OneVsAllTrainer trainer(model.get(), options);
  // Warm-up: Train() builds the query index and runs one epoch.
  const Result<TrainResult> warmup =
      trainer.Train(data.train, OneVsAllTrainer::ValidationFn());
  KGE_CHECK_OK(warmup.status());

  // Distinct (h, r) queries, to convert epoch time into candidate
  // scoring throughput (each query scores every entity).
  std::unordered_set<uint64_t> distinct;
  for (const Triple& t : data.train) {
    distinct.insert((uint64_t(uint32_t(t.head)) << 32) |
                    uint32_t(t.relation));
  }

  TrainingRow row;
  row.model = model_name;
  row.regime = "one_vs_all";
  row.threads = threads;
  row.pipeline_depth = options.pipeline_depth;
  row.train_triples = int64_t(data.train.size());
  trainer.ResetStageStats();
  Rng rng(43);
#if KGE_COUNT_ALLOCS
  const uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
#endif
  Stopwatch sw;
  for (int64_t e = 0; e < config.train_epochs; ++e) {
    g_sink = g_sink + trainer.RunEpoch(&rng);
  }
  const double seconds = sw.ElapsedSeconds();
#if KGE_COUNT_ALLOCS
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  row.allocs_per_triple =
      double(allocs) /
      double(config.train_epochs * int64_t(data.train.size()));
#endif
  const double per_epoch = seconds / double(config.train_epochs);
  row.epoch_seconds = per_epoch;
  row.triples_per_sec = double(data.train.size()) / per_epoch;
  // Each query scores every entity: candidate examples per second.
  row.examples_per_sec = double(distinct.size()) *
                         double(data.num_entities()) / per_epoch;
  FillStageOccupancy(trainer.stage_stats(), &row);
  return row;
}

std::vector<TrainingRow> BenchTraining(const PerfConfig& config) {
  WordNetLikeOptions options;
  options.num_entities = int32_t(config.train_entities);
  options.seed = 42;
  const Dataset data = GenerateWordNetLike(options);

  std::vector<TrainingRow> rows;
  const int thread_counts[] = {1, 4};
  for (const char* model : {"DistMult", "ComplEx"}) {
    for (int t : thread_counts) {
      rows.push_back(BenchNegativeSampling(config, data, model, t));
    }
  }
  for (int t : thread_counts) {
    rows.push_back(BenchOneVsAll(config, data, "ComplEx", t));
  }
  // Speedup of every row over its own (model, regime) 1-thread run.
  for (TrainingRow& row : rows) {
    for (const TrainingRow& base : rows) {
      if (base.model == row.model && base.regime == row.regime &&
          base.threads == 1 && base.triples_per_sec > 0.0) {
        row.speedup_vs_1t = row.triples_per_sec / base.triples_per_sec;
      }
    }
  }
  return rows;
}

// ---- Serving ---------------------------------------------------------------
// The kge_serve hot path (DESIGN.md §5g): one direct (no-socket) phase
// timing the micro-batcher + batched kernels alone and gating its
// steady-state allocation count, loopback client phases at several
// connection counts for p50/p99/QPS, and an overload phase with a tiny
// admission queue at 2x the largest client count proving load shedding
// engages while admitted requests still meet the deadline.

struct ServeClientRow {
  int clients = 0;
  int64_t queries = 0;  // kOk replies across all clients
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

struct ServingReport {
  int64_t entities = 0;
  int64_t dim = 0;
  uint32_t topk = 0;
  int64_t direct_queries = 0;
  double direct_ns_per_query = 0.0;
  double direct_allocs_per_query = -1.0;
  std::vector<ServeClientRow> client_rows;
  int overload_clients = 0;
  int overload_max_queue = 0;
  uint32_t overload_deadline_ms = 0;
  int64_t overload_queries = 0;
  int64_t overload_ok = 0;
  int64_t overload_shed = 0;
  double shed_rate = 0.0;
  double admitted_p99_ms = 0.0;
};

// Synchronous rendezvous for direct batcher submissions. The results
// buffer is reserved once, so steady-state replies do not allocate.
struct ServeWaiter {
  Mutex mutex;
  CondVar cv;
  bool done KGE_GUARDED_BY(mutex) = false;
  ServeStatusCode status KGE_GUARDED_BY(mutex) = ServeStatusCode::kError;
  std::vector<ScoredEntity> results KGE_GUARDED_BY(mutex);

  ServeWaiter() {
    MutexLock lock(mutex);
    results.reserve(kServeMaxTopK);
  }

  static void OnReply(void* ctx, const ServeReply& reply) {
    auto* waiter = static_cast<ServeWaiter*>(ctx);
    MutexLock lock(waiter->mutex);
    waiter->status = reply.status;
    waiter->results.assign(reply.results.begin(), reply.results.end());
    waiter->done = true;
    waiter->cv.NotifyAll();
  }

  ServeStatusCode Await() {
    MutexLock lock(mutex);
    while (!done) cv.Wait(mutex);
    done = false;
    return status;
  }
};

double PercentileMs(std::vector<double>* sorted_in_place, double fraction) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t index =
      size_t(fraction * double(sorted_in_place->size() - 1) + 0.5);
  return (*sorted_in_place)[std::min(index, sorted_in_place->size() - 1)];
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(uint16_t(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct ServeClientTally {
  std::vector<double> ok_latencies_ms;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t other = 0;
};

// One synchronous loopback client: send a query, wait for the full
// response, repeat. Latency is recorded only for kOk replies (shed
// replies return immediately and would flatter the percentiles).
void RunServeClient(int port, int64_t queries, uint32_t k,
                    int64_t entities, uint64_t seed,
                    ServeClientTally* tally) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) {
    tally->other += queries;
    return;
  }
  Rng rng(seed);
  std::vector<uint8_t> frame(kRequestFrameBytes);
  std::vector<uint8_t> response(MaxResponseFrameBytes(kServeMaxTopK));
  tally->ok_latencies_ms.reserve(size_t(queries));
  for (int64_t q = 0; q < queries; ++q) {
    ServeRequest request;
    request.side = QuerySide::kTail;
    request.entity = EntityId(rng.NextBounded(uint64_t(entities)));
    request.relation = 0;
    request.k = k;
    request.request_id = uint64_t(q) + 1;
    if (EncodeServeRequest(request, frame) == 0) {
      tally->other += queries - q;
      break;
    }
    Stopwatch sw;
    if (!WriteAll(fd, frame.data(), frame.size())) {
      tally->other += queries - q;
      break;
    }
    uint8_t head[kFrameHeaderBytes];
    if (!ReadExact(fd, head, sizeof(head))) {
      tally->other += queries - q;
      break;
    }
    uint32_t magic = 0;
    uint32_t body_len = 0;
    DecodeFrameHeader(std::span<const uint8_t>(head, sizeof(head)), &magic,
                      &body_len);
    if (magic != kServeResponseMagic ||
        body_len + kFrameHeaderBytes > response.size() ||
        !ReadExact(fd, response.data() + kFrameHeaderBytes, body_len)) {
      tally->other += queries - q;
      break;
    }
    std::memcpy(response.data(), head, sizeof(head));
    ServeResponseHeader header;
    std::vector<ScoredEntity> results;
    const Status decoded = DecodeServeResponseFrame(
        std::span<const uint8_t>(response.data(),
                                 kFrameHeaderBytes + body_len),
        &header, &results);
    if (!decoded.ok()) {
      tally->other += queries - q;
      break;
    }
    if (header.status == ServeStatusCode::kOk) {
      tally->ok += 1;
      tally->ok_latencies_ms.push_back(sw.ElapsedSeconds() * 1e3);
    } else if (header.status == ServeStatusCode::kShed) {
      tally->shed += 1;
    } else {
      tally->other += 1;
    }
  }
  ::close(fd);
}

ServingReport BenchServing(const PerfConfig& config) {
  ServingReport report;
  report.entities = config.serve_entities;
  report.dim = config.dim_budget;
  report.topk = 10;

  Result<std::unique_ptr<KgeModel>> model =
      MakeModelByName("distmult", int32_t(config.serve_entities), 8,
                      int32_t(config.dim_budget), 42);
  KGE_CHECK_OK(model.status());
  (*model)->PrepareForScoring(ScorePrecision::kDouble);
  SnapshotRegistry registry;
  {
    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->model = std::move(*model);
    registry.Publish(std::move(snapshot));
  }

  // Phase 1: direct submissions, no socket. Times the admission path,
  // batch assembly, the batched kernel, and the top-k reduction; the
  // steady state must not allocate (CI gates allocs_per_query == 0).
  {
    BatcherOptions options;
    options.default_deadline_ms = kServeMaxDeadlineMs;
    MicroBatcher batcher(&registry, options);
    batcher.Start();
    ServeWaiter waiter;
    ServeRequest request;
    request.side = QuerySide::kTail;
    request.relation = 0;
    request.k = report.topk;
    Rng rng(7);
    for (int64_t q = 0; q < 64; ++q) {  // warm the scratch high-water mark
      request.entity =
          EntityId(rng.NextBounded(uint64_t(config.serve_entities)));
      batcher.Submit(request, &ServeWaiter::OnReply, &waiter);
      KGE_CHECK(waiter.Await() == ServeStatusCode::kOk);
    }
#if KGE_COUNT_ALLOCS
    const uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
#endif
    Stopwatch sw;
    for (int64_t q = 0; q < config.serve_queries; ++q) {
      request.entity =
          EntityId(rng.NextBounded(uint64_t(config.serve_entities)));
      batcher.Submit(request, &ServeWaiter::OnReply, &waiter);
      KGE_CHECK(waiter.Await() == ServeStatusCode::kOk);
    }
    const double seconds = sw.ElapsedSeconds();
#if KGE_COUNT_ALLOCS
    const uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    report.direct_allocs_per_query =
        double(allocs) / double(config.serve_queries);
#endif
    report.direct_queries = config.serve_queries;
    report.direct_ns_per_query =
        seconds / double(config.serve_queries) * 1e9;
    batcher.Stop();
  }

  // Phase 2: loopback clients at increasing connection counts.
  for (const int clients : {1, 4, 16}) {
    BatcherOptions options;
    options.default_deadline_ms = kServeMaxDeadlineMs;
    MicroBatcher batcher(&registry, options);
    batcher.Start();
    KgeServer server(&batcher, ServerOptions{});
    KGE_CHECK_OK(server.Start());
    std::vector<ServeClientTally> tallies(static_cast<size_t>(clients));
    std::vector<std::thread> threads;
    Stopwatch sw;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(RunServeClient, server.port(),
                           config.serve_client_queries, report.topk,
                           config.serve_entities, uint64_t(c) + 1,
                           &tallies[size_t(c)]);
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = sw.ElapsedSeconds();
    server.Stop();

    ServeClientRow row;
    row.clients = clients;
    std::vector<double> latencies;
    for (const ServeClientTally& tally : tallies) {
      row.queries += tally.ok;
      latencies.insert(latencies.end(), tally.ok_latencies_ms.begin(),
                       tally.ok_latencies_ms.end());
    }
    row.p50_ms = PercentileMs(&latencies, 0.50);
    row.p99_ms = PercentileMs(&latencies, 0.99);
    row.qps = seconds > 0.0 ? double(row.queries) / seconds : 0.0;
    report.client_rows.push_back(row);
  }

  // Phase 3: overload. 2x the largest client count against a tiny
  // admission queue: shedding must engage (bounded queue, bounded
  // latency) and every admitted request must still meet the deadline.
  {
    report.overload_clients = 32;
    report.overload_max_queue = 8;
    report.overload_deadline_ms = 10000;
    BatcherOptions options;
    options.max_queue = report.overload_max_queue;
    options.default_deadline_ms = report.overload_deadline_ms;
    MicroBatcher batcher(&registry, options);
    batcher.Start();
    KgeServer server(&batcher, ServerOptions{});
    KGE_CHECK_OK(server.Start());
    std::vector<ServeClientTally> tallies(
        static_cast<size_t>(report.overload_clients));
    std::vector<std::thread> threads;
    const int64_t queries = std::max<int64_t>(config.serve_client_queries / 2,
                                              10);
    for (int c = 0; c < report.overload_clients; ++c) {
      threads.emplace_back(RunServeClient, server.port(), queries,
                           report.topk, config.serve_entities,
                           uint64_t(c) + 101, &tallies[size_t(c)]);
    }
    for (std::thread& thread : threads) thread.join();
    server.Stop();

    std::vector<double> latencies;
    for (const ServeClientTally& tally : tallies) {
      report.overload_ok += tally.ok;
      report.overload_shed += tally.shed;
      report.overload_queries += tally.ok + tally.shed + tally.other;
      latencies.insert(latencies.end(), tally.ok_latencies_ms.begin(),
                       tally.ok_latencies_ms.end());
    }
    report.shed_rate =
        report.overload_queries > 0
            ? double(report.overload_shed) / double(report.overload_queries)
            : 0.0;
    report.admitted_p99_ms = PercentileMs(&latencies, 0.99);
  }
  return report;
}

// ---- Serving at scale (§5h) ------------------------------------------------
// The kge_serve reduction at the --scale presets with the sharded +
// pruned top-k enabled: direct (no-socket) submissions against a
// bounds-prepared snapshot of the same trained-like skewed model,
// per-query latency percentiles, and the batcher's tile counters.

struct ServeScaleRow {
  int64_t entities = 0;
  int64_t queries = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
  double tiles_skipped_frac = 0.0;
  double effective_gb_per_s = 0.0;
  double allocs_per_query = -1.0;  // -1 = sanitized build
};

struct ServeScaleReport {
  int64_t dim = 0;
  uint32_t topk = 10;
  int shards = 4;
  bool prune = true;
  std::vector<ServeScaleRow> rows;
};

ServeScaleRow BenchServeScaleTier(const PerfConfig& config, int64_t entities,
                                  uint32_t k, int shards) {
  ServeScaleRow row;
  row.entities = entities;
  row.queries = config.scale_serve_queries;
  const int32_t dim = int32_t(config.dim_budget);

  std::unique_ptr<MultiEmbeddingModel> model =
      MakeSkewedDistMult(int32_t(entities), dim);
  // Serving snapshots are frozen after load, so bounds prepared here
  // stay fresh for the batcher's lifetime (snapshot.cc does the same
  // under --prune via prepare_bounds).
  model->PrepareForPrunedScoring(ScorePrecision::kDouble);
  SnapshotRegistry registry;
  {
    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->model = std::move(model);
    registry.Publish(std::move(snapshot));
  }

  BatcherOptions options;
  options.default_deadline_ms = kServeMaxDeadlineMs;
  options.num_shards = shards;
  options.prune = true;
  MicroBatcher batcher(&registry, options);
  batcher.Start();

  ServeWaiter waiter;
  ServeRequest request;
  request.side = QuerySide::kTail;
  request.k = k;
  Rng rng(29);
  for (int64_t q = 0; q < 16; ++q) {  // warm the scratch high-water mark
    request.entity = EntityId(rng.NextBounded(uint64_t(entities)));
    request.relation = RelationId(rng.NextBounded(8));
    batcher.Submit(request, &ServeWaiter::OnReply, &waiter);
    KGE_CHECK(waiter.Await() == ServeStatusCode::kOk);
  }

  const BatcherStatsView before = batcher.stats();
#if KGE_COUNT_ALLOCS
  const uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
#endif
  std::vector<double> latencies;
  latencies.reserve(size_t(row.queries));
  Stopwatch total;
  for (int64_t q = 0; q < row.queries; ++q) {
    request.entity = EntityId(rng.NextBounded(uint64_t(entities)));
    request.relation = RelationId(rng.NextBounded(8));
    Stopwatch sw;
    batcher.Submit(request, &ServeWaiter::OnReply, &waiter);
    KGE_CHECK(waiter.Await() == ServeStatusCode::kOk);
    latencies.push_back(sw.ElapsedSeconds() * 1e3);
  }
  const double seconds = total.ElapsedSeconds();
#if KGE_COUNT_ALLOCS
  row.allocs_per_query =
      double(g_alloc_count.load(std::memory_order_relaxed) - allocs_before) /
      double(row.queries);
#endif
  const BatcherStatsView after = batcher.stats();
  batcher.Stop();

  const uint64_t tiles_total = after.tiles_total - before.tiles_total;
  const uint64_t tiles_skipped = after.tiles_skipped - before.tiles_skipped;
  row.tiles_skipped_frac =
      tiles_total > 0 ? double(tiles_skipped) / double(tiles_total) : 0.0;
  row.p50_ms = PercentileMs(&latencies, 0.50);
  row.p99_ms = PercentileMs(&latencies, 0.99);
  row.qps = seconds > 0.0 ? double(row.queries) / seconds : 0.0;
  row.effective_gb_per_s = double(row.queries) * double(entities) *
                           double(dim) * sizeof(float) *
                           (1.0 - row.tiles_skipped_frac) / seconds / 1e9;
  return row;
}

ServeScaleReport BenchServingScale(const PerfConfig& config) {
  ServeScaleReport report;
  report.dim = config.dim_budget;
  for (const int64_t entities : ScaleTierEntities(config)) {
    report.rows.push_back(
        BenchServeScaleTier(config, entities, report.topk, report.shards));
  }
  return report;
}

// ---- JSON ------------------------------------------------------------------

std::string JsonNumber(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

void AppendMeta(std::ostringstream& out, const PerfConfig& config) {
  out << "  \"meta\": {\n";
  out << "    \"isa\": \"" << simd::IsaName() << "\",\n";
  out << "    \"accumulator_lanes\": " << simd::kAccumulatorLanes << ",\n";
  out << "    \"dot_batch_tile_rows\": " << simd::kDotBatchTileRows << ",\n";
  out << "    \"compiler\": \"" << __VERSION__ << "\",\n";
  out << "    \"build\": \""
#ifdef NDEBUG
      << "release"
#else
      << "debug"
#endif
      << "\",\n";
  out << "    \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "    \"quick\": " << (config.quick ? "true" : "false") << "\n";
  out << "  },\n";
}

std::string BuildJson(const PerfConfig& config,
                      const std::vector<KernelRow>& kernels,
                      const RankingResult& ranking,
                      const EvalThroughput& eval) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  AppendMeta(out, config);
  out << "  \"kernels\": [\n";
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& k = kernels[i];
    out << "    {\"name\": \"" << k.name << "\", \"n\": " << k.n
        << ", \"ns_per_call\": " << JsonNumber(k.ns_per_call)
        << ", \"gflops\": " << JsonNumber(k.gflops)
        << ", \"speedup_vs_ref\": " << JsonNumber(k.speedup_vs_ref) << "}"
        << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"ranking\": {\n";
  out << "    \"model\": \"ComplEx\",\n";
  out << "    \"entities\": " << ranking.entities << ",\n";
  out << "    \"dim_per_vector\": " << ranking.dim << ",\n";
  out << "    \"queries\": " << ranking.queries << ",\n";
  out << "    \"ns_per_triple\": " << JsonNumber(ranking.ns_per_triple)
      << ",\n";
  out << "    \"triples_per_sec\": " << JsonNumber(ranking.triples_per_sec)
      << ",\n";
  out << "    \"candidates_per_sec\": "
      << JsonNumber(ranking.candidates_per_sec) << ",\n";
  out << "    \"speedup_vs_scalar_ref\": "
      << JsonNumber(ranking.speedup_vs_scalar_ref) << ",\n";
  out << "    \"allocations_per_ranked_triple\": ";
  if (ranking.allocs_per_triple < 0.0) {
    out << "null";
  } else {
    out << JsonNumber(ranking.allocs_per_triple);
  }
  out << "\n  },\n";
  out << "  \"eval\": {\n";
  out << "    \"entities\": " << eval.entities << ",\n";
  out << "    \"test_triples\": " << eval.triples << ",\n";
  out << "    \"triples_per_sec\": " << JsonNumber(eval.triples_per_sec)
      << ",\n";
  out << "    \"filtered_mrr\": " << JsonNumber(eval.filtered_mrr) << ",\n";
  out << "    \"filtered_hits10\": " << JsonNumber(eval.filtered_hits10)
      << "\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

std::string BuildTrainingJson(const PerfConfig& config,
                              const std::vector<TrainingRow>& rows) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  AppendMeta(out, config);
  out << "  \"training\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const TrainingRow& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"regime\": \""
        << r.regime << "\", \"threads\": " << r.threads
        << ", \"pipeline_depth\": " << r.pipeline_depth
        << ", \"train_triples\": " << r.train_triples
        << ", \"epoch_seconds\": " << JsonNumber(r.epoch_seconds)
        << ", \"triples_per_sec\": " << JsonNumber(r.triples_per_sec)
        << ", \"examples_per_sec\": " << JsonNumber(r.examples_per_sec)
        << ", \"allocs_per_triple\": ";
    if (r.allocs_per_triple < 0.0) {
      out << "null";
    } else {
      out << JsonNumber(r.allocs_per_triple);
    }
    out << ", \"speedup_vs_1t\": " << JsonNumber(r.speedup_vs_1t)
        << ", \"stage_occupancy\": {\"sample\": " << JsonNumber(r.occ_sample)
        << ", \"score\": " << JsonNumber(r.occ_score)
        << ", \"merge\": " << JsonNumber(r.occ_merge)
        << ", \"apply\": " << JsonNumber(r.occ_apply) << "}}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string BuildEvalJson(const PerfConfig& config,
                          const EvalBatchReport& report,
                          const PrecisionReport& precision,
                          const ScaleReport& scaling) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  AppendMeta(out, config);
  out << "  \"eval_batching\": {\n";
  out << "    \"model\": \"ComplEx\",\n";
  out << "    \"entities\": " << report.entities << ",\n";
  out << "    \"dim_per_vector\": " << report.dim << ",\n";
  out << "    \"queries\": " << report.queries << ",\n";
  out << "    \"rows\": [\n";
  for (size_t i = 0; i < report.rows.size(); ++i) {
    const EvalBatchRow& r = report.rows[i];
    out << "      {\"batch\": " << r.batch
        << ", \"ns_per_triple\": " << JsonNumber(r.ns_per_triple)
        << ", \"gb_per_s\": " << JsonNumber(r.gb_per_s)
        << ", \"allocs_per_triple\": ";
    if (r.allocs_per_triple < 0.0) {
      out << "null";
    } else {
      out << JsonNumber(r.allocs_per_triple);
    }
    out << ", \"speedup_vs_b1\": " << JsonNumber(r.speedup_vs_b1) << "}"
        << (i + 1 < report.rows.size() ? "," : "") << "\n";
  }
  out << "    ],\n";
  out << "    \"equality\": {\n";
  out << "      \"mrr_per_query\": " << JsonNumber(report.mrr_per_query)
      << ",\n";
  out << "      \"mrr_batched\": " << JsonNumber(report.mrr_batched) << ",\n";
  out << "      \"bit_identical\": "
      << (report.bit_identical ? "true" : "false") << "\n";
  out << "    }\n";
  out << "  },\n";
  out << "  \"precision\": {\n";
  out << "    \"model\": \"ComplEx\",\n";
  out << "    \"entities\": " << precision.entities << ",\n";
  out << "    \"dim_per_vector\": " << precision.dim << ",\n";
  out << "    \"queries\": " << precision.queries << ",\n";
  out << "    \"batch\": " << precision.batch << ",\n";
  out << "    \"tiers\": [\n";
  for (size_t i = 0; i < precision.tiers.size(); ++i) {
    const PrecisionTierRow& r = precision.tiers[i];
    out << "      {\"tier\": \"" << ScorePrecisionName(r.precision)
        << "\", \"ns_per_triple\": " << JsonNumber(r.ns_per_triple)
        << ", \"gb_per_s\": " << JsonNumber(r.gb_per_s)
        << ", \"allocs_per_triple\": ";
    if (r.allocs_per_triple < 0.0) {
      out << "null";
    } else {
      out << JsonNumber(r.allocs_per_triple);
    }
    out << ", \"speedup_vs_double\": " << JsonNumber(r.speedup_vs_double)
        << "}" << (i + 1 < precision.tiers.size() ? "," : "") << "\n";
  }
  out << "    ],\n";
  out << "    \"drift\": {\n";
  out << "      \"entities\": " << precision.drift_entities << ",\n";
  out << "      \"ranked_queries\": " << precision.drift_triples << ",\n";
  out << "      \"train_epochs\": " << precision.drift_epochs << ",\n";
  out << "      \"tiers\": [\n";
  for (size_t i = 0; i < precision.drift.size(); ++i) {
    const PrecisionDriftRow& r = precision.drift[i];
    out << "        {\"tier\": \"" << ScorePrecisionName(r.precision)
        << "\", \"mrr\": " << JsonNumber(r.mrr)
        << ", \"hits1\": " << JsonNumber(r.hits1)
        << ", \"hits3\": " << JsonNumber(r.hits3)
        << ", \"hits10\": " << JsonNumber(r.hits10)
        << ", \"delta_mrr\": " << JsonNumber(r.delta_mrr)
        << ", \"delta_hits1\": " << JsonNumber(r.delta_hits1)
        << ", \"delta_hits3\": " << JsonNumber(r.delta_hits3)
        << ", \"delta_hits10\": " << JsonNumber(r.delta_hits10) << "}"
        << (i + 1 < precision.drift.size() ? "," : "") << "\n";
  }
  out << "      ]\n";
  out << "    }\n";
  out << "  },\n";
  out << "  \"eval_scaling\": {\n";
  out << "    \"model\": \"DistMult\",\n";
  out << "    \"dim\": " << scaling.dim << ",\n";
  out << "    \"topk\": " << scaling.k << ",\n";
  out << "    \"shards\": " << scaling.shards << ",\n";
  out << "    \"tiers\": [\n";
  for (size_t i = 0; i < scaling.tiers.size(); ++i) {
    const ScaleTierRow& t = scaling.tiers[i];
    out << "      {\"entities\": " << t.entities
        << ", \"queries\": " << t.queries << ",\n";
    out << "       \"rank\": {\"exhaustive_ns_per_query\": "
        << JsonNumber(t.rank.exhaustive_ns_per_query)
        << ", \"pruned_ns_per_query\": "
        << JsonNumber(t.rank.pruned_ns_per_query)
        << ", \"speedup_pruned_vs_exhaustive\": "
        << JsonNumber(t.rank.speedup_pruned_vs_exhaustive)
        << ", \"tiles_skipped_frac\": "
        << JsonNumber(t.rank.tiles_skipped_frac)
        << ", \"exhaustive_gb_per_s\": "
        << JsonNumber(t.rank.exhaustive_gb_per_s)
        << ", \"pruned_effective_gb_per_s\": "
        << JsonNumber(t.rank.pruned_effective_gb_per_s)
        << ", \"pruned_allocs_per_query\": ";
    if (t.rank.pruned_allocs_per_query < 0.0) {
      out << "null";
    } else {
      out << JsonNumber(t.rank.pruned_allocs_per_query);
    }
    out << ", \"bit_identical\": "
        << (t.rank.bit_identical ? "true" : "false") << "},\n";
    out << "       \"topk\": {\"exhaustive_ns_per_query\": "
        << JsonNumber(t.topk.exhaustive_ns_per_query)
        << ", \"pruned_ns_per_query\": "
        << JsonNumber(t.topk.pruned_ns_per_query)
        << ", \"sharded_pruned_ns_per_query\": "
        << JsonNumber(t.topk.sharded_pruned_ns_per_query)
        << ", \"speedup_pruned_vs_exhaustive\": "
        << JsonNumber(t.topk.speedup_pruned_vs_exhaustive)
        << ", \"tiles_skipped_frac\": "
        << JsonNumber(t.topk.tiles_skipped_frac)
        << ", \"pruned_allocs_per_query\": ";
    if (t.topk.pruned_allocs_per_query < 0.0) {
      out << "null";
    } else {
      out << JsonNumber(t.topk.pruned_allocs_per_query);
    }
    out << ", \"bit_identical\": "
        << (t.topk.bit_identical ? "true" : "false") << "}}"
        << (i + 1 < scaling.tiers.size() ? "," : "") << "\n";
  }
  out << "    ]\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

std::string BuildServingJson(const PerfConfig& config,
                             const ServingReport& report,
                             const ServeScaleReport& scaling) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  AppendMeta(out, config);
  out << "  \"serving\": {\n";
  out << "    \"model\": \"DistMult\",\n";
  out << "    \"entities\": " << report.entities << ",\n";
  out << "    \"dim_budget\": " << report.dim << ",\n";
  out << "    \"topk\": " << report.topk << ",\n";
  out << "    \"direct\": {\n";
  out << "      \"queries\": " << report.direct_queries << ",\n";
  out << "      \"ns_per_query\": " << JsonNumber(report.direct_ns_per_query)
      << ",\n";
  out << "      \"allocs_per_query\": ";
  if (report.direct_allocs_per_query < 0.0) {
    out << "null";
  } else {
    out << JsonNumber(report.direct_allocs_per_query);
  }
  out << "\n    },\n";
  out << "    \"clients\": [\n";
  for (size_t i = 0; i < report.client_rows.size(); ++i) {
    const ServeClientRow& r = report.client_rows[i];
    out << "      {\"clients\": " << r.clients
        << ", \"queries\": " << r.queries
        << ", \"p50_ms\": " << JsonNumber(r.p50_ms)
        << ", \"p99_ms\": " << JsonNumber(r.p99_ms)
        << ", \"qps\": " << JsonNumber(r.qps) << "}"
        << (i + 1 < report.client_rows.size() ? "," : "") << "\n";
  }
  out << "    ],\n";
  out << "    \"overload\": {\n";
  out << "      \"clients\": " << report.overload_clients << ",\n";
  out << "      \"max_queue\": " << report.overload_max_queue << ",\n";
  out << "      \"deadline_ms\": " << report.overload_deadline_ms << ",\n";
  out << "      \"queries\": " << report.overload_queries << ",\n";
  out << "      \"ok\": " << report.overload_ok << ",\n";
  out << "      \"shed\": " << report.overload_shed << ",\n";
  out << "      \"shed_rate\": " << JsonNumber(report.shed_rate) << ",\n";
  out << "      \"admitted_p99_ms\": "
      << JsonNumber(report.admitted_p99_ms) << "\n";
  out << "    },\n";
  out << "    \"scaling\": {\n";
  out << "      \"model\": \"DistMult\",\n";
  out << "      \"dim\": " << scaling.dim << ",\n";
  out << "      \"topk\": " << scaling.topk << ",\n";
  out << "      \"shards\": " << scaling.shards << ",\n";
  out << "      \"prune\": " << (scaling.prune ? "true" : "false") << ",\n";
  out << "      \"tiers\": [\n";
  for (size_t i = 0; i < scaling.rows.size(); ++i) {
    const ServeScaleRow& r = scaling.rows[i];
    out << "        {\"entities\": " << r.entities
        << ", \"queries\": " << r.queries
        << ", \"p50_ms\": " << JsonNumber(r.p50_ms)
        << ", \"p99_ms\": " << JsonNumber(r.p99_ms)
        << ", \"qps\": " << JsonNumber(r.qps)
        << ", \"tiles_skipped_frac\": "
        << JsonNumber(r.tiles_skipped_frac)
        << ", \"effective_gb_per_s\": "
        << JsonNumber(r.effective_gb_per_s) << ", \"allocs_per_query\": ";
    if (r.allocs_per_query < 0.0) {
      out << "null";
    } else {
      out << JsonNumber(r.allocs_per_query);
    }
    out << "}" << (i + 1 < scaling.rows.size() ? "," : "") << "\n";
  }
  out << "      ]\n";
  out << "    }\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

int Run(int argc, char** argv) {
  PerfConfig config;
  FlagParser parser(
      "SIMD kernel + ranking perf report; writes BENCH_kernels.json");
  parser.AddInt("entities", &config.entities,
                "entity-table rows for full-vocab ranking");
  parser.AddInt("dim_budget", &config.dim_budget,
                "total floats per entity (ComplEx uses 2 vectors)");
  parser.AddInt("queries", &config.queries, "ScoreAllTails calls to time");
  parser.AddInt("kernel_n", &config.kernel_n,
                "vector length for kernel microbenches");
  parser.AddInt("kernel_iters", &config.kernel_iters,
                "iterations per kernel microbench");
  parser.AddInt("eval_entities", &config.eval_entities,
                "WN18-like KG size for end-to-end eval");
  parser.AddInt("eval_triples", &config.eval_triples,
                "test triples for end-to-end eval");
  parser.AddInt("train_entities", &config.train_entities,
                "WN18-like KG size for the training bench");
  parser.AddInt("train_epochs", &config.train_epochs,
                "timed training epochs (one warm-up epoch on top)");
  parser.AddInt("train_negatives", &config.train_negatives,
                "negatives per positive in the training bench");
  parser.AddInt("drift_epochs", &config.drift_epochs,
                "training epochs before the precision-drift measurement");
  parser.AddInt("serve_entities", &config.serve_entities,
                "vocabulary size for the serving bench");
  parser.AddInt("serve_queries", &config.serve_queries,
                "direct (no-socket) serving queries to time");
  parser.AddInt("serve_client_queries", &config.serve_client_queries,
                "queries per loopback client per phase");
  parser.AddInt("scale_queries", &config.scale_queries,
                "ranked queries per --scale tier (eval_scaling section)");
  parser.AddInt("scale_serve_queries", &config.scale_serve_queries,
                "serving queries per --scale tier (serving scaling section)");
  parser.AddString("out", &config.out, "output JSON path");
  parser.AddString("train_out", &config.train_out,
                   "training-section output JSON path");
  parser.AddString("eval_out", &config.eval_out,
                   "eval-batching output JSON path");
  parser.AddString("serve_out", &config.serve_out,
                   "serving-section output JSON path");
  parser.AddBool("quick", &config.quick, "tiny CI smoke preset");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  KGE_LOG(Info) << "perf_report: isa=" << simd::IsaName()
               << " entities=" << config.entities
               << " dim_budget=" << config.dim_budget;

  KGE_LOG(Info) << "benchmarking kernels (n=" << config.kernel_n << ")...";
  const std::vector<KernelRow> kernels = BenchKernels(config);
  for (const KernelRow& k : kernels) {
    KGE_LOG(Info) << "  " << k.name << ": " << k.gflops << " GFLOP/s, "
                 << k.speedup_vs_ref << "x vs ref";
  }

  KGE_LOG(Info) << "benchmarking full-vocab ranking...";
  const RankingResult ranking = BenchRanking(config);
  KGE_LOG(Info) << "  " << ranking.ns_per_triple << " ns/triple ("
               << ranking.speedup_vs_scalar_ref << "x vs scalar ref, "
               << (ranking.allocs_per_triple < 0.0
                       ? std::string("allocs not measured")
                       : std::to_string(ranking.allocs_per_triple) +
                             " allocs/triple")
               << ")";

  KGE_LOG(Info) << "benchmarking end-to-end filtered evaluation...";
  const EvalThroughput eval = BenchEndToEnd(config);
  KGE_LOG(Info) << "  " << eval.triples_per_sec << " triples/sec, MRR="
               << eval.filtered_mrr;

  KGE_LOG(Info) << "benchmarking batched full-vocab ranking...";
  const EvalBatchReport eval_batching = BenchEvalBatching(config);
  for (const EvalBatchRow& row : eval_batching.rows) {
    KGE_LOG(Info) << "  B=" << row.batch << ": " << row.ns_per_triple
                  << " ns/triple, " << row.gb_per_s << " GB/s ("
                  << row.speedup_vs_b1 << "x vs B=1, "
                  << (row.allocs_per_triple < 0.0
                          ? std::string("allocs not measured")
                          : std::to_string(row.allocs_per_triple) +
                                " allocs/triple")
                  << ")";
  }
  KGE_LOG(Info) << "  metric equality (batched vs per-query): "
                << (eval_batching.bit_identical ? "bit-identical"
                                                : "MISMATCH");

  KGE_LOG(Info) << "benchmarking precision tiers...";
  const PrecisionReport precision = BenchPrecisionTiers(config);
  for (const PrecisionTierRow& row : precision.tiers) {
    KGE_LOG(Info) << "  " << ScorePrecisionName(row.precision) << ": "
                  << row.ns_per_triple << " ns/triple, " << row.gb_per_s
                  << " GB/s (" << row.speedup_vs_double << "x vs double, "
                  << (row.allocs_per_triple < 0.0
                          ? std::string("allocs not measured")
                          : std::to_string(row.allocs_per_triple) +
                                " allocs/triple")
                  << ")";
  }
  for (const PrecisionDriftRow& row : precision.drift) {
    KGE_LOG(Info) << "  drift " << ScorePrecisionName(row.precision)
                  << ": MRR=" << row.mrr << " (delta "
                  << row.delta_mrr << "), Hits@10=" << row.hits10
                  << " (delta " << row.delta_hits10 << ")";
  }

  KGE_LOG(Info) << "benchmarking scale tiers (sharded + pruned ranking)...";
  const ScaleReport scaling = BenchScaleTiers(config);
  for (const ScaleTierRow& tier : scaling.tiers) {
    KGE_LOG(Info) << "  E=" << tier.entities << " rank: "
                  << tier.rank.exhaustive_ns_per_query << " -> "
                  << tier.rank.pruned_ns_per_query << " ns/query ("
                  << tier.rank.speedup_pruned_vs_exhaustive
                  << "x, tiles skipped "
                  << tier.rank.tiles_skipped_frac * 100.0 << "%, "
                  << (tier.rank.bit_identical ? "bit-identical"
                                              : "MISMATCH")
                  << ")";
    KGE_LOG(Info) << "  E=" << tier.entities << " topk: "
                  << tier.topk.exhaustive_ns_per_query << " -> "
                  << tier.topk.pruned_ns_per_query << " ns/query ("
                  << tier.topk.speedup_pruned_vs_exhaustive
                  << "x, sharded "
                  << tier.topk.sharded_pruned_ns_per_query << " ns, "
                  << (tier.topk.bit_identical ? "bit-identical"
                                              : "MISMATCH")
                  << ")";
  }

  KGE_LOG(Info) << "benchmarking training throughput...";
  const std::vector<TrainingRow> training = BenchTraining(config);
  for (const TrainingRow& row : training) {
    KGE_LOG(Info) << "  " << row.model << " " << row.regime << " "
                  << row.threads << "t: " << row.triples_per_sec
                  << " triples/s ("
                  << (row.allocs_per_triple < 0.0
                          ? std::string("allocs not measured")
                          : std::to_string(row.allocs_per_triple) +
                                " allocs/triple")
                  << ", " << row.speedup_vs_1t << "x vs 1t)";
  }

  KGE_LOG(Info) << "benchmarking serving (kge_serve hot path)...";
  const ServingReport serving = BenchServing(config);
  KGE_LOG(Info) << "  direct: " << serving.direct_ns_per_query
                << " ns/query ("
                << (serving.direct_allocs_per_query < 0.0
                        ? std::string("allocs not measured")
                        : std::to_string(serving.direct_allocs_per_query) +
                              " allocs/query")
                << ")";
  for (const ServeClientRow& row : serving.client_rows) {
    KGE_LOG(Info) << "  " << row.clients << " client(s): p50="
                  << row.p50_ms << " ms, p99=" << row.p99_ms << " ms, "
                  << row.qps << " qps";
  }
  KGE_LOG(Info) << "  overload (" << serving.overload_clients
                << " clients, queue=" << serving.overload_max_queue
                << "): shed_rate=" << serving.shed_rate
                << ", admitted p99=" << serving.admitted_p99_ms << " ms";

  KGE_LOG(Info) << "benchmarking serving at scale (shards + prune)...";
  const ServeScaleReport serve_scaling = BenchServingScale(config);
  for (const ServeScaleRow& row : serve_scaling.rows) {
    KGE_LOG(Info) << "  E=" << row.entities << ": p50=" << row.p50_ms
                  << " ms, p99=" << row.p99_ms << " ms, " << row.qps
                  << " qps, tiles skipped "
                  << row.tiles_skipped_frac * 100.0 << "%";
  }

  const std::string json = BuildJson(config, kernels, ranking, eval);
  std::ofstream file(config.out);
  if (!file) {
    KGE_LOG(Error) << "cannot write " << config.out;
    return 1;
  }
  file << json;
  KGE_LOG(Info) << "wrote " << config.out;

  const std::string training_json = BuildTrainingJson(config, training);
  std::ofstream training_file(config.train_out);
  if (!training_file) {
    KGE_LOG(Error) << "cannot write " << config.train_out;
    return 1;
  }
  training_file << training_json;
  KGE_LOG(Info) << "wrote " << config.train_out;

  const std::string eval_json =
      BuildEvalJson(config, eval_batching, precision, scaling);
  std::ofstream eval_file(config.eval_out);
  if (!eval_file) {
    KGE_LOG(Error) << "cannot write " << config.eval_out;
    return 1;
  }
  eval_file << eval_json;
  KGE_LOG(Info) << "wrote " << config.eval_out;

  const std::string serving_json =
      BuildServingJson(config, serving, serve_scaling);
  std::ofstream serving_file(config.serve_out);
  if (!serving_file) {
    KGE_LOG(Error) << "cannot write " << config.serve_out;
    return 1;
  }
  serving_file << serving_json;
  KGE_LOG(Info) << "wrote " << config.serve_out;
  return 0;
}

}  // namespace
}  // namespace kge

int main(int argc, char** argv) { return kge::Run(argc, argv); }
