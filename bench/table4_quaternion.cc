// Reproduces paper Table 4: "Results for the quaternion-based
// four-embedding interaction model on WN18" — test metrics plus the
// "on train" row showing its overfitting tendency. ComplEx and CPh are
// retrained at the same parameter budget for the in-run comparison the
// paper's §6.3 discussion makes.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  FlagParser parser("table4_quaternion: paper Table 4 — quaternion model");
  config.RegisterFlags(&parser);
  bool with_baselines = true;
  parser.AddBool("with-baselines", &with_baselines,
                 "also retrain ComplEx and CPh for comparison");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  const int32_t num_entities = workload.dataset.num_entities();
  const int32_t num_relations = workload.dataset.num_relations();
  const uint64_t seed = uint64_t(config.seed);

  std::vector<EvalRow> rows;
  {
    auto model = MakeQuaternionModel(num_entities, num_relations,
                                     config.DimFor(4), seed);
    rows.push_back(TrainAndEvaluate(model.get(), workload, config,
                                    /*eval_on_train=*/true));
  }
  if (with_baselines) {
    auto complex =
        MakeComplEx(num_entities, num_relations, config.DimFor(2), seed);
    rows.push_back(TrainAndEvaluate(complex.get(), workload, config, false));
    auto cph = MakeCph(num_entities, num_relations, config.DimFor(2), seed);
    rows.push_back(TrainAndEvaluate(cph.get(), workload, config, false));
  }

  const std::vector<PaperRef> paper = {
      {"Quaternion", 0.941, 0.931, 0.950, 0.956},
      {"Quaternion on train", 0.997, 0.995, 0.999, 1.000},
      {"ComplEx", 0.937, 0.928, 0.946, 0.951},
      {"CPh", 0.937, 0.929, 0.944, 0.949},
  };
  PrintComparisonTable(
      "Table 4: quaternion-based four-embedding model (synthetic WN18-like "
      "workload)",
      rows, paper);
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
