// Ablation: quaternion product order. §3.4 notes that quaternion
// multiplication is noncommutative, so "there are multiple ways to
// multiply three quaternion numbers in the trilinear product"; the paper
// chooses Re(h·t̄·r). This bench trains the distinct orders and also
// demonstrates the algebraic fact that Re(r·h·t̄) coincides with the
// paper's choice (Re(xy) = Re(yx) in H), so only two genuinely different
// score functions exist among the three orders.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 120;
  FlagParser parser("ablation_quaternion_order: Hamilton product orders");
  config.RegisterFlags(&parser);
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  // Algebraic check first.
  const WeightTable paper_order =
      DeriveQuaternionWeightTable(QuaternionProductOrder::kHConjTR);
  const WeightTable cyclic =
      DeriveQuaternionWeightTable(QuaternionProductOrder::kRHConjT);
  bool identical = true;
  for (int32_t m = 0; m < paper_order.size(); ++m) {
    identical &= paper_order.Flat()[size_t(m)] == cyclic.Flat()[size_t(m)];
  }
  std::printf("Re(r*h*conj(t)) %s Re(h*conj(t)*r) as a weight table "
              "(cyclic real-part identity)\n\n",
              identical ? "==" : "!=");

  Workload workload = BuildWorkload(config);
  std::vector<EvalRow> rows;
  for (QuaternionProductOrder order : {QuaternionProductOrder::kHConjTR,
                                       QuaternionProductOrder::kHRConjT}) {
    auto model = MakeQuaternionModel(workload.dataset.num_entities(),
                                     workload.dataset.num_relations(),
                                     config.DimFor(4),
                                     uint64_t(config.seed), order);
    EvalRow row = TrainAndEvaluate(model.get(), workload, config, false);
    row.label = QuaternionProductOrderToString(order);
    rows.push_back(std::move(row));
  }
  PrintComparisonTable("Ablation: quaternion product order", rows, {});
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
