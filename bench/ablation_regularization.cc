// Ablation: L2 regularization strength for CP. §6.1.1 reports that CP's
// failure is generalization, not capacity, and that "standard
// regularization techniques such as L2 regularization did not appear to
// help" — while CPh (a structural change) fixes it. This bench sweeps λ
// for CP and shows no value approaches CPh.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 120;
  FlagParser parser("ablation_regularization: L2 sweep for CP vs CPh");
  config.RegisterFlags(&parser);
  std::string sweep = "0,1e-5,1e-4,1e-3,1e-2";
  parser.AddString("sweep", &sweep, "comma-separated L2 lambda values");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  Workload workload = BuildWorkload(config);
  const int32_t num_entities = workload.dataset.num_entities();
  const int32_t num_relations = workload.dataset.num_relations();
  std::vector<EvalRow> rows;

  for (const std::string& token : SplitString(sweep, ',')) {
    const Result<double> lambda = ParseDouble(token);
    KGE_CHECK_OK(lambda.status());
    BenchConfig run_config = config;
    run_config.l2_lambda = *lambda;
    auto model = MakeCp(num_entities, num_relations, config.DimFor(2),
                        uint64_t(config.seed));
    EvalRow row =
        TrainAndEvaluate(model.get(), workload, run_config, /*train=*/true);
    row.label = StrFormat("CP, lambda=%s", token.c_str());
    rows.push_back(std::move(row));
  }
  // The structural fix for reference.
  {
    auto model = MakeCph(num_entities, num_relations, config.DimFor(2),
                         uint64_t(config.seed));
    EvalRow row = TrainAndEvaluate(model.get(), workload, config, false);
    row.label = "CPh (structural fix)";
    rows.push_back(std::move(row));
  }
  PrintComparisonTable(
      "Ablation: L2 regularization does not rescue CP (paper §6.1.1)", rows,
      {});
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
