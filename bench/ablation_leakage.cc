// Ablation: inverse leakage. WN18's headline numbers (and the paper's
// Table 2) are dominated by test triples whose inverse appears in train;
// WN18RR was later constructed by dropping the inverse-paired relations
// to remove that shortcut, collapsing everyone's metrics. This bench
// reproduces the phenomenon on the synthetic workload: the same models
// on the same graph family, with and without the inverse directions.
//
// Expected shape (mirrors the published WN18 -> WN18RR drops):
// ComplEx/CPh fall from ~0.9 MRR to well under 0.6, and the gap between
// ComplEx and DistMult narrows, because inverse exploitation — the thing
// the antisymmetric ω terms buy — is no longer the dominant signal.
#include "bench_common.h"

namespace kge::bench {
namespace {

int Run(int argc, char** argv) {
  BenchConfig config;
  config.max_epochs = 150;
  FlagParser parser("ablation_leakage: WN18-like vs WN18RR-like");
  config.RegisterFlags(&parser);
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);
  config.Finalize();

  std::vector<EvalRow> rows;
  for (bool remove_leakage : {false, true}) {
    WordNetLikeOptions generator;
    generator.num_entities = int32_t(config.entities);
    generator.seed = uint64_t(config.seed);
    generator.remove_inverse_leakage = remove_leakage;
    Workload workload;
    workload.dataset = GenerateWordNetLike(generator);
    KGE_CHECK_OK(workload.dataset.Validate());
    KGE_LOG(Info) << (remove_leakage ? "WN18RR-like: " : "WN18-like:   ")
                  << workload.dataset.StatsString();
    workload.filter.Build(workload.dataset.train, workload.dataset.valid,
                          workload.dataset.test);
    workload.evaluator = std::make_unique<Evaluator>(
        &workload.filter, workload.dataset.num_relations());

    for (const char* name : {"distmult", "complex", "cph"}) {
      Result<std::unique_ptr<KgeModel>> model = MakeModelByName(
          name, workload.dataset.num_entities(),
          workload.dataset.num_relations(), int32_t(config.dim_budget),
          uint64_t(config.seed));
      KGE_CHECK_OK(model.status());
      EvalRow row = TrainAndEvaluate(model->get(), workload, config, false);
      row.label = StrFormat("%s on %s", (*model)->name().c_str(),
                            remove_leakage ? "WN18RR-like" : "WN18-like");
      rows.push_back(std::move(row));
    }
  }
  PrintComparisonTable(
      "Ablation: inverse leakage (WN18-like vs WN18RR-like synthetic data)",
      rows, {});
  return 0;
}

}  // namespace
}  // namespace kge::bench

int main(int argc, char** argv) { return kge::bench::Run(argc, argv); }
